// Minimal self-registering test harness (no external framework in the image).
//
// Each test binary defines cases with REALM_TEST(name) { ... } and provides
// main() via REALM_TEST_MAIN(). Run with no arguments to execute every case,
// or with a case name to run just that one — CMake registers each case as its
// own ctest entry so failures are individually visible.
#pragma once

#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

namespace realm::test {

struct Case {
  const char* name;
  std::function<void()> fn;
};

inline std::vector<Case>& registry() {
  static std::vector<Case> cases;
  return cases;
}

struct Registrar {
  Registrar(const char* name, std::function<void()> fn) {
    registry().push_back({name, std::move(fn)});
  }
};

struct Failure {
  std::string message;
};

inline int run(int argc, char** argv) {
  int failed = 0;
  int ran = 0;
  for (const auto& c : registry()) {
    if (argc > 1 && std::strcmp(argv[1], c.name) != 0) continue;
    ++ran;
    try {
      c.fn();
      std::printf("[ PASS ] %s\n", c.name);
    } catch (const Failure& f) {
      ++failed;
      std::printf("[ FAIL ] %s: %s\n", c.name, f.message.c_str());
    } catch (const std::exception& e) {
      ++failed;
      std::printf("[ FAIL ] %s: unexpected exception: %s\n", c.name, e.what());
    }
  }
  if (ran == 0) {
    std::printf("no test case matches '%s'\n", argc > 1 ? argv[1] : "");
    return 2;
  }
  return failed == 0 ? 0 : 1;
}

}  // namespace realm::test

#define REALM_TEST(name)                                                      \
  static void realm_test_##name();                                            \
  static const ::realm::test::Registrar realm_registrar_##name{#name,         \
                                                               realm_test_##name}; \
  static void realm_test_##name()

#define REALM_TEST_MAIN()                                                     \
  int main(int argc, char** argv) { return ::realm::test::run(argc, argv); }

#define REALM_CHECK(cond)                                                     \
  do {                                                                        \
    if (!(cond)) {                                                            \
      throw ::realm::test::Failure{std::string(__FILE__ ":") +                \
                                   std::to_string(__LINE__) + ": " #cond};    \
    }                                                                         \
  } while (0)

#define REALM_CHECK_EQ(a, b)                                                  \
  do {                                                                        \
    const auto va = (a);                                                      \
    const auto vb = (b);                                                      \
    if (!(va == vb)) {                                                        \
      throw ::realm::test::Failure{std::string(__FILE__ ":") +                \
                                   std::to_string(__LINE__) + ": " #a         \
                                   " == " #b " (got " + std::to_string(va) +  \
                                   " vs " + std::to_string(vb) + ")"};        \
    }                                                                         \
  } while (0)

#define REALM_CHECK_THROWS(expr, exception_type)                              \
  do {                                                                        \
    bool realm_thrown = false;                                                \
    try {                                                                     \
      (void)(expr);                                                           \
    } catch (const exception_type&) {                                         \
      realm_thrown = true;                                                    \
    }                                                                         \
    if (!realm_thrown) {                                                      \
      throw ::realm::test::Failure{std::string(__FILE__ ":") +                \
                                   std::to_string(__LINE__) + ": " #expr      \
                                   " did not throw " #exception_type};        \
    }                                                                         \
  } while (0)
