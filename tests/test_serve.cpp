#include "serve/engine.h"
#include "serve/tile_grid.h"

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "detect/detect.h"
#include "fault/fault.h"
#include "realm_test.h"
#include "tensor/quant.h"
#include "tensor/tensor.h"
#include "util/rng.h"

using namespace realm::serve;
using namespace realm::detect;
using namespace realm::fault;
using namespace realm::tensor;
using realm::util::Rng;

namespace {

MatI8 random_i8(std::size_t rows, std::size_t cols, Rng& rng) {
  MatI8 m(rows, cols);
  for (auto& x : m.flat()) x = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
  return m;
}

}  // namespace

REALM_TEST(batch_verdict_merge_rules) {
  BatchVerdict bv;
  bv.reset();

  DetectionVerdict clean;  // defaults to kClean
  DetectionVerdict corrected;
  corrected.verdict = Verdict::kCorrected;
  corrected.msd_abs = 100;
  corrected.max_dev_pow2 = 7;
  corrected.fault_cols = {1, 3};
  corrected.fault_rows = {0, 2};
  corrected.injection = {4, 2};
  DetectionVerdict detected;
  detected.verdict = Verdict::kDetected;
  detected.msd_abs = 50;
  detected.fault_cols = {0};
  detected.fault_rows = {2, 5};
  detected.injection = {1, 1};

  bv.merge_tile(clean, 0);
  REALM_CHECK(bv.verdict == Verdict::kClean);
  bv.merge_tile(corrected, 16);
  REALM_CHECK(bv.verdict == Verdict::kCorrected);  // corrected outranks clean
  bv.merge_tile(detected, 32);
  REALM_CHECK(bv.verdict == Verdict::kDetected);  // detected outranks corrected
  bv.merge_tile(corrected, 48);
  REALM_CHECK(bv.verdict == Verdict::kDetected);  // worst sticks
  bv.finalize();

  REALM_CHECK_EQ(bv.tiles, std::size_t{4});
  REALM_CHECK_EQ(bv.tiles_clean, std::size_t{1});
  REALM_CHECK_EQ(bv.tiles_corrected, std::size_t{2});
  REALM_CHECK_EQ(bv.tiles_detected, std::size_t{1});
  REALM_CHECK_EQ(bv.msd_abs_max, std::uint64_t{100});
  REALM_CHECK_EQ(bv.max_dev_pow2, 7);
  // Columns carry each tile's origin; rows are the dedup'd union.
  const std::vector<std::size_t> want_cols{17, 19, 32, 49, 51};
  REALM_CHECK(bv.fault_cols == want_cols);
  const std::vector<std::size_t> want_rows{0, 2, 5};
  REALM_CHECK(bv.fault_rows == want_rows);
  REALM_CHECK_EQ(bv.injection.flipped_bits, std::uint64_t{9});
  REALM_CHECK_EQ(bv.injection.corrupted_values, std::uint64_t{5});
  REALM_CHECK(bv.faulty());

  bv.reset();
  REALM_CHECK(!bv.faulty());
  REALM_CHECK_EQ(bv.tiles, std::size_t{0});
  REALM_CHECK(bv.fault_cols.empty() && bv.fault_rows.empty());
}

REALM_TEST(all_clean_grid_bit_identical_to_unsharded) {
  // Sharding is column-separable: the assembled multi-tile output must match
  // an unsharded ProtectedGemm on the same operands bit for bit, and every
  // tile must screen clean.
  Rng rng(101);
  const std::size_t k = 48, n = 100, m = 9;  // 100/32 -> tiles of 32,32,32,4
  const MatI8 w8 = random_i8(k, n, rng);
  const QuantParams qw{0.02f}, qa{0.05f};
  const MatI8 a8 = random_i8(m, k, rng);

  ProtectedGemm whole;
  whole.set_weights_quantized(w8, qw);
  const NullInjector none;
  Rng rng_whole(7);
  const ProtectedGemmResult ref = whole.run_quantized(a8, qa, none, rng_whole);

  TileGridConfig cfg;
  cfg.tile_cols = 32;
  const TileGrid grid(w8, qw, cfg);
  REALM_CHECK_EQ(grid.tile_count(), std::size_t{4});
  REALM_CHECK_EQ(grid.tile_width(3), std::size_t{4});
  REALM_CHECK_EQ(grid.tile_origin(3), std::size_t{96});
  REALM_CHECK(grid.verify_weight_integrity());

  std::vector<ProtectedGemmResult> scratch;
  MatF out;
  BatchVerdict bv;
  grid.run_into(a8, qa, none, Rng(7), scratch, out, bv);

  REALM_CHECK(bv.verdict == Verdict::kClean);
  REALM_CHECK_EQ(bv.tiles_clean, std::size_t{4});
  REALM_CHECK_EQ(bv.msd_abs_max, std::uint64_t{0});
  REALM_CHECK(out == ref.output);  // bit-identical floats, not approximate
  // The per-tile accumulators are exactly the column slices of the whole.
  for (std::size_t t = 0; t < grid.tile_count(); ++t) {
    for (std::size_t r = 0; r < m; ++r) {
      for (std::size_t c = 0; c < grid.tile_width(t); ++c) {
        REALM_CHECK_EQ(scratch[t].acc(r, c), ref.acc(r, grid.tile_origin(t) + c));
      }
    }
  }
}

REALM_TEST(single_tile_fault_localizes_to_globally_offset_columns) {
  Rng rng(102);
  const std::size_t k = 32, n = 64, m = 8;
  const MatI8 w8 = random_i8(k, n, rng);
  const QuantParams qw{0.02f}, qa{0.05f};
  const MatI8 a8 = random_i8(m, k, rng);

  TileGridConfig cfg;
  cfg.tile_cols = 16;  // 4 tiles
  const TileGrid grid(w8, qw, cfg);

  const NullInjector none;
  const MagFreqInjector mag(1 << 12, 2);
  const std::size_t hit = 2;  // attack only tile 2 (global columns [32, 48))
  std::vector<const FaultInjector*> per_tile(grid.tile_count(), &none);
  per_tile[hit] = &mag;

  std::vector<ProtectedGemmResult> scratch;
  MatF out;
  BatchVerdict bv;
  grid.run_into(a8, qa, per_tile, Rng(11), scratch, out, bv);

  // The fault heals by recompute, but its localization must point into the
  // attacked tile's GLOBAL column range.
  REALM_CHECK(bv.verdict == Verdict::kCorrected);
  REALM_CHECK_EQ(bv.tiles_corrected, std::size_t{1});
  REALM_CHECK_EQ(bv.tiles_clean, grid.tile_count() - 1);
  REALM_CHECK(!bv.fault_cols.empty());
  for (const std::size_t c : bv.fault_cols) {
    REALM_CHECK(c >= grid.tile_origin(hit));
    REALM_CHECK(c < grid.tile_origin(hit) + grid.tile_width(hit));
  }
  REALM_CHECK_EQ(bv.injection.corrupted_values, std::uint64_t{2});

  // Corrected output equals a golden unsharded run bit for bit.
  ProtectedGemm whole;
  whole.set_weights_quantized(w8, qw);
  Rng rng_ref(99);
  const ProtectedGemmResult ref = whole.run_quantized(a8, qa, none, rng_ref);
  REALM_CHECK(out == ref.output);
}

REALM_TEST(multi_tile_faults_aggregate_worst_verdict) {
  Rng rng(103);
  const std::size_t k = 24, n = 48, m = 6;
  const MatI8 w8 = random_i8(k, n, rng);
  const QuantParams qw{0.02f}, qa{0.05f};
  const MatI8 a8 = random_i8(m, k, rng);

  TileGridConfig cfg;
  cfg.tile_cols = 16;  // 3 tiles
  cfg.detect.recompute_on_detect = false;  // keep faults visible as kDetected
  const TileGrid grid(w8, qw, cfg);

  const NullInjector none;
  const MagFreqInjector mag(1 << 10, 1);
  std::vector<const FaultInjector*> per_tile{&mag, &none, &mag};

  std::vector<ProtectedGemmResult> scratch;
  MatF out;
  BatchVerdict bv;
  grid.run_into(a8, qa, per_tile, Rng(12), scratch, out, bv);

  REALM_CHECK(bv.verdict == Verdict::kDetected);
  REALM_CHECK_EQ(bv.tiles_detected, std::size_t{2});
  REALM_CHECK_EQ(bv.tiles_clean, std::size_t{1});
  REALM_CHECK_EQ(bv.msd_abs_max, std::uint64_t{1} << 10);
  // Both attacked tiles contribute globally-offset columns; the clean middle
  // tile contributes none.
  bool saw_tile0 = false, saw_tile2 = false;
  for (const std::size_t c : bv.fault_cols) {
    REALM_CHECK(c < 16 || c >= 32);  // never in the clean tile's range
    saw_tile0 = saw_tile0 || c < 16;
    saw_tile2 = saw_tile2 || c >= 32;
  }
  REALM_CHECK(saw_tile0 && saw_tile2);
}

REALM_TEST(engine_deterministic_at_1_2_8_workers) {
  // The whole point of per-request forked fault streams: verdicts and outputs
  // are a pure function of (seed, requests) — identical at any worker count
  // and any queue interleaving.
  Rng rng(104);
  const std::size_t k = 32, n = 96, m = 8, nreq = 12;
  const MatI8 w8 = random_i8(k, n, rng);
  const QuantParams qw{0.02f}, qa{0.05f};
  TileGridConfig gcfg;
  gcfg.tile_cols = 32;
  const TileGrid grid(w8, qw, gcfg);

  std::vector<MatI8> acts;
  acts.reserve(nreq);
  for (std::size_t i = 0; i < nreq; ++i) acts.push_back(random_i8(m, k, rng));
  const RandomBitFlipInjector flips(0.002, 20, 30);
  const NullInjector none;
  std::vector<Request> reqs(nreq);
  for (std::size_t i = 0; i < nreq; ++i) {
    reqs[i].a8 = &acts[i];
    reqs[i].qa = qa;
    reqs[i].injector = (i % 3 == 0) ? static_cast<const FaultInjector*>(&flips) : &none;
  }

  std::vector<std::vector<Response>> runs;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    ServeConfig scfg;
    scfg.workers = workers;
    scfg.queue_capacity = 3;  // force backpressure on the wider runs
    scfg.seed = 0xfeed;
    ServeEngine engine(grid, scfg);
    runs.push_back(engine.serve(reqs));
    const ServeStats& st = engine.stats();
    REALM_CHECK_EQ(st.requests, std::uint64_t{nreq});
    REALM_CHECK_EQ(st.tiles_screened, std::uint64_t{nreq * grid.tile_count()});
    REALM_CHECK_EQ(st.latency_ms.count(), std::size_t{nreq});
    REALM_CHECK(st.p99_ms >= st.p50_ms);
  }
  for (std::size_t w = 1; w < runs.size(); ++w) {
    for (std::size_t i = 0; i < nreq; ++i) {
      const Response &a = runs[0][i], &b = runs[w][i];
      REALM_CHECK(a.output == b.output);
      REALM_CHECK(a.verdict.verdict == b.verdict.verdict);
      REALM_CHECK(a.verdict.fault_cols == b.verdict.fault_cols);
      REALM_CHECK(a.verdict.fault_rows == b.verdict.fault_rows);
      REALM_CHECK_EQ(a.verdict.msd_abs_max, b.verdict.msd_abs_max);
      REALM_CHECK_EQ(a.verdict.injection.flipped_bits, b.verdict.injection.flipped_bits);
    }
  }
}

REALM_TEST(engine_recycles_buffers_and_accumulates_stats) {
  Rng rng(105);
  const std::size_t k = 16, n = 32, m = 4;
  const TileGrid grid(random_i8(k, n, rng), QuantParams{0.02f}, TileGridConfig{16, {}});
  const MatI8 a8 = random_i8(m, k, rng);
  const MagFreqInjector mag(1 << 8, 1);
  std::vector<Request> reqs(4);
  for (auto& r : reqs) {
    r.a8 = &a8;
    r.qa = QuantParams{0.05f};
    r.injector = &mag;
  }
  ServeConfig scfg;
  scfg.workers = 2;
  ServeEngine engine(grid, scfg);
  std::vector<Response> responses;
  engine.serve(reqs, responses);
  const float* out0 = responses[0].output.data();
  engine.serve(reqs, responses);  // second batch reuses the response buffers
  REALM_CHECK(responses[0].output.data() == out0);
  REALM_CHECK_EQ(engine.stats().requests, std::uint64_t{8});
  // Every request hits exactly one faulty tile (mag injects per tile, both
  // tiles attacked, each corrected).
  REALM_CHECK_EQ(engine.stats().tiles_corrected, std::uint64_t{8 * grid.tile_count()});
}

REALM_TEST(misuse_is_rejected) {
  Rng rng(106);
  const MatI8 w8 = random_i8(8, 8, rng);
  REALM_CHECK_THROWS(TileGrid(w8, QuantParams{0.1f}, TileGridConfig{0, {}}),
                     std::invalid_argument);
  REALM_CHECK_THROWS(TileGrid(MatI8{}, QuantParams{0.1f}), std::invalid_argument);

  const TileGrid grid(w8, QuantParams{0.1f}, TileGridConfig{4, {}});
  const MatI8 a8 = random_i8(2, 8, rng);
  const NullInjector none;
  std::vector<ProtectedGemmResult> scratch;
  MatF out;
  BatchVerdict bv;
  const std::vector<const FaultInjector*> short_list{&none};  // 1 != tile_count()
  REALM_CHECK_THROWS(grid.run_into(a8, QuantParams{0.1f}, short_list, Rng(1), scratch, out, bv),
                     std::invalid_argument);

  ServeConfig bad;
  bad.queue_capacity = 0;
  REALM_CHECK_THROWS(ServeEngine(grid, bad), std::invalid_argument);

  ServeEngine engine(grid, ServeConfig{});
  std::vector<Request> reqs(1);  // null activation
  REALM_CHECK_THROWS(engine.serve(reqs), std::invalid_argument);

  // An exception thrown from INSIDE a worker (dim mismatch surfaces in
  // run_quantized_into, past the up-front validation) must propagate out of
  // the multi-worker queue path cleanly — producer joined, no terminate.
  ServeConfig two;
  two.workers = 2;
  two.queue_capacity = 1;
  ServeEngine multi(grid, two);
  const MatI8 bad_dims = random_i8(2, 4, rng);  // cols != k
  std::vector<Request> mixed(3);
  for (auto& r : mixed) {
    r.a8 = &a8;
    r.qa = QuantParams{0.1f};
  }
  mixed[1].a8 = &bad_dims;
  std::vector<Response> rsp;
  REALM_CHECK_THROWS(multi.serve(mixed, rsp), std::invalid_argument);
}

REALM_TEST_MAIN()
