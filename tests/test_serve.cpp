#include "serve/engine.h"
#include "serve/tile_grid.h"

#include <algorithm>
#include <condition_variable>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

#include "detect/detect.h"
#include "fault/fault.h"
#include "realm_test.h"
#include "serve/ticket.h"
#include "tensor/quant.h"
#include "tensor/tensor.h"
#include "util/clock.h"
#include "util/rng.h"

using namespace realm::serve;
using namespace realm::detect;
using namespace realm::fault;
using namespace realm::tensor;
using realm::util::Rng;

namespace {

MatI8 random_i8(std::size_t rows, std::size_t cols, Rng& rng) {
  MatI8 m(rows, cols);
  for (auto& x : m.flat()) x = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
  return m;
}

/// Injector that corrupts nothing but parks the worker until released —
/// the deterministic control knob for "a worker is busy right now" in the
/// deadline, priority, and lifecycle tests. Use on single-tile grids so one
/// request means exactly one inject() call.
class GateInjector final : public FaultInjector {
 public:
  InjectionReport inject(std::span<std::int32_t> /*data*/, realm::util::Rng& /*rng*/,
                         std::vector<FlipRecord>* /*record*/) const override {
    std::unique_lock<std::mutex> lock(mu_);
    ++arrived_;
    cv_.notify_all();
    cv_.wait(lock, [&] { return open_; });
    return {};
  }

  /// Block until `n` inject() calls have arrived (30s safety timeout).
  [[nodiscard]] bool wait_arrived(int n) const {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, std::chrono::seconds(30), [&] { return arrived_ >= n; });
  }

  void open() const {
    const std::lock_guard<std::mutex> lock(mu_);
    open_ = true;
    cv_.notify_all();
  }

 private:
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  mutable int arrived_ = 0;
  mutable bool open_ = false;
};

/// Opens the gate on scope exit so a failing REALM_CHECK can never strand the
/// engine destructor behind a parked worker. Declare AFTER the engine.
struct GateOpener {
  const GateInjector& gate;
  ~GateOpener() { gate.open(); }
};

/// Corrupts nothing; appends its tag to a shared log on every inject() call.
/// On a single-tile grid the log is exactly the order workers claimed work.
class RecordingInjector final : public FaultInjector {
 public:
  RecordingInjector(int tag, std::vector<int>* log, std::mutex* mu)
      : tag_(tag), log_(log), mu_(mu) {}

  InjectionReport inject(std::span<std::int32_t> /*data*/, realm::util::Rng& /*rng*/,
                         std::vector<FlipRecord>* /*record*/) const override {
    const std::lock_guard<std::mutex> lock(*mu_);
    log_->push_back(tag_);
    return {};
  }

 private:
  int tag_;
  std::vector<int>* log_;
  std::mutex* mu_;
};

/// Golden reference for one request: the exact fault-stream contract the
/// engine documents — seed forked by stream, then by tile inside the grid.
MatF grid_reference(const TileGrid& grid, const MatI8& a8, QuantParams qa, std::uint64_t seed,
                    std::uint64_t stream) {
  std::vector<ProtectedGemmResult> scratch;
  MatF out;
  BatchVerdict bv;
  const NullInjector none;
  grid.run_into(a8, qa, none, Rng(seed).fork(stream), scratch, out, bv);
  return out;
}

}  // namespace

REALM_TEST(batch_verdict_merge_rules) {
  BatchVerdict bv;
  bv.reset();

  DetectionVerdict clean;  // defaults to kClean
  DetectionVerdict patched;
  patched.verdict = Verdict::kPatched;
  patched.msd_abs = 100;
  patched.max_dev_pow2 = 7;
  patched.fault_cols = {1, 3};
  patched.fault_rows = {0, 2};
  patched.injection = {4, 2};
  DetectionVerdict recomputed;
  recomputed.verdict = Verdict::kRecomputed;
  recomputed.msd_abs = 80;
  recomputed.fault_cols = {2};
  recomputed.fault_rows = {0};
  recomputed.injection = {2, 1};
  DetectionVerdict detected;
  detected.verdict = Verdict::kDetected;
  detected.msd_abs = 50;
  detected.fault_cols = {0};
  detected.fault_rows = {2, 5};
  detected.injection = {1, 1};

  bv.merge_tile(clean, 0);
  REALM_CHECK(bv.verdict == Verdict::kClean);
  bv.merge_tile(patched, 16);
  REALM_CHECK(bv.verdict == Verdict::kPatched);  // patched outranks clean
  bv.merge_tile(recomputed, 32);
  REALM_CHECK(bv.verdict == Verdict::kRecomputed);  // replay (latency cliff) outranks patch
  bv.merge_tile(detected, 48);
  REALM_CHECK(bv.verdict == Verdict::kDetected);  // uncorrected outranks both heals
  bv.merge_tile(patched, 64);
  REALM_CHECK(bv.verdict == Verdict::kDetected);  // worst sticks
  bv.finalize();

  REALM_CHECK_EQ(bv.tiles, std::size_t{5});
  REALM_CHECK_EQ(bv.tiles_clean, std::size_t{1});
  REALM_CHECK_EQ(bv.tiles_patched, std::size_t{2});
  REALM_CHECK_EQ(bv.tiles_recomputed, std::size_t{1});
  REALM_CHECK_EQ(bv.tiles_corrected(), std::size_t{3});
  REALM_CHECK_EQ(bv.tiles_detected, std::size_t{1});
  REALM_CHECK_EQ(bv.msd_abs_max, std::uint64_t{100});
  REALM_CHECK_EQ(bv.max_dev_pow2, 7);
  // Columns carry each tile's origin; rows are the dedup'd union.
  const std::vector<std::size_t> want_cols{17, 19, 34, 48, 65, 67};
  REALM_CHECK(bv.fault_cols == want_cols);
  const std::vector<std::size_t> want_rows{0, 2, 5};
  REALM_CHECK(bv.fault_rows == want_rows);
  REALM_CHECK_EQ(bv.injection.flipped_bits, std::uint64_t{11});
  REALM_CHECK_EQ(bv.injection.corrupted_values, std::uint64_t{6});
  REALM_CHECK(bv.faulty());

  bv.reset();
  REALM_CHECK(!bv.faulty());
  REALM_CHECK_EQ(bv.tiles, std::size_t{0});
  REALM_CHECK(bv.fault_cols.empty() && bv.fault_rows.empty());
}

REALM_TEST(all_clean_grid_bit_identical_to_unsharded) {
  // Sharding is column-separable: the assembled multi-tile output must match
  // an unsharded ProtectedGemm on the same operands bit for bit, and every
  // tile must screen clean.
  Rng rng(101);
  const std::size_t k = 48, n = 100, m = 9;  // 100/32 -> tiles of 32,32,32,4
  const MatI8 w8 = random_i8(k, n, rng);
  const QuantParams qw{0.02f}, qa{0.05f};
  const MatI8 a8 = random_i8(m, k, rng);

  ProtectedGemm whole;
  whole.set_weights_quantized(w8, qw);
  const NullInjector none;
  Rng rng_whole(7);
  const ProtectedGemmResult ref = whole.run_quantized(a8, qa, none, rng_whole);

  TileGridConfig cfg;
  cfg.tile_cols = 32;
  const TileGrid grid(w8, qw, cfg);
  REALM_CHECK_EQ(grid.tile_count(), std::size_t{4});
  REALM_CHECK_EQ(grid.tile_width(3), std::size_t{4});
  REALM_CHECK_EQ(grid.tile_origin(3), std::size_t{96});
  REALM_CHECK(grid.verify_weight_integrity());
  REALM_CHECK_EQ(grid.swap_epoch(), std::uint64_t{0});

  std::vector<ProtectedGemmResult> scratch;
  MatF out;
  BatchVerdict bv;
  grid.run_into(a8, qa, none, Rng(7), scratch, out, bv);

  REALM_CHECK(bv.verdict == Verdict::kClean);
  REALM_CHECK_EQ(bv.tiles_clean, std::size_t{4});
  REALM_CHECK_EQ(bv.msd_abs_max, std::uint64_t{0});
  REALM_CHECK(out == ref.output);  // bit-identical floats, not approximate
  // The per-tile accumulators are exactly the column slices of the whole.
  for (std::size_t t = 0; t < grid.tile_count(); ++t) {
    for (std::size_t r = 0; r < m; ++r) {
      for (std::size_t c = 0; c < grid.tile_width(t); ++c) {
        REALM_CHECK_EQ(scratch[t].acc(r, c), ref.acc(r, grid.tile_origin(t) + c));
      }
    }
  }
}

REALM_TEST(single_tile_fault_localizes_to_globally_offset_columns) {
  Rng rng(102);
  const std::size_t k = 32, n = 64, m = 8;
  const MatI8 w8 = random_i8(k, n, rng);
  const QuantParams qw{0.02f}, qa{0.05f};
  const MatI8 a8 = random_i8(m, k, rng);

  TileGridConfig cfg;
  cfg.tile_cols = 16;  // 4 tiles
  const TileGrid grid(w8, qw, cfg);

  const NullInjector none;
  const MagFreqInjector mag(1 << 12, 2);
  const std::size_t hit = 2;  // attack only tile 2 (global columns [32, 48))
  std::vector<const FaultInjector*> per_tile(grid.tile_count(), &none);
  per_tile[hit] = &mag;

  std::vector<ProtectedGemmResult> scratch;
  MatF out;
  BatchVerdict bv;
  grid.run_into(a8, qa, per_tile, Rng(11), scratch, out, bv);

  // The fault heals (in-place patch, or replay when the solve aliases), but
  // its localization must point into the attacked tile's GLOBAL column range.
  REALM_CHECK(realm::detect::corrected(bv.verdict));
  REALM_CHECK_EQ(bv.tiles_corrected(), std::size_t{1});
  REALM_CHECK_EQ(bv.tiles_clean, grid.tile_count() - 1);
  REALM_CHECK(!bv.fault_cols.empty());
  for (const std::size_t c : bv.fault_cols) {
    REALM_CHECK(c >= grid.tile_origin(hit));
    REALM_CHECK(c < grid.tile_origin(hit) + grid.tile_width(hit));
  }
  REALM_CHECK_EQ(bv.injection.corrupted_values, std::uint64_t{2});

  // Corrected output equals a golden unsharded run bit for bit.
  ProtectedGemm whole;
  whole.set_weights_quantized(w8, qw);
  Rng rng_ref(99);
  const ProtectedGemmResult ref = whole.run_quantized(a8, qa, none, rng_ref);
  REALM_CHECK(out == ref.output);
}

REALM_TEST(multi_tile_faults_aggregate_worst_verdict) {
  Rng rng(103);
  const std::size_t k = 24, n = 48, m = 6;
  const MatI8 w8 = random_i8(k, n, rng);
  const QuantParams qw{0.02f}, qa{0.05f};
  const MatI8 a8 = random_i8(m, k, rng);

  TileGridConfig cfg;
  cfg.tile_cols = 16;  // 3 tiles
  cfg.detect.patch_on_detect = false;  // keep faults visible as kDetected
  cfg.detect.recompute_on_detect = false;
  const TileGrid grid(w8, qw, cfg);

  const NullInjector none;
  const MagFreqInjector mag(1 << 10, 1);
  std::vector<const FaultInjector*> per_tile{&mag, &none, &mag};

  std::vector<ProtectedGemmResult> scratch;
  MatF out;
  BatchVerdict bv;
  grid.run_into(a8, qa, per_tile, Rng(12), scratch, out, bv);

  REALM_CHECK(bv.verdict == Verdict::kDetected);
  REALM_CHECK_EQ(bv.tiles_detected, std::size_t{2});
  REALM_CHECK_EQ(bv.tiles_clean, std::size_t{1});
  REALM_CHECK_EQ(bv.msd_abs_max, std::uint64_t{1} << 10);
  // Both attacked tiles contribute globally-offset columns; the clean middle
  // tile contributes none.
  bool saw_tile0 = false, saw_tile2 = false;
  for (const std::size_t c : bv.fault_cols) {
    REALM_CHECK(c < 16 || c >= 32);  // never in the clean tile's range
    saw_tile0 = saw_tile0 || c < 16;
    saw_tile2 = saw_tile2 || c >= 32;
  }
  REALM_CHECK(saw_tile0 && saw_tile2);
}

REALM_TEST(engine_deterministic_at_1_2_8_workers) {
  // The whole point of per-request forked fault streams: verdicts and outputs
  // are a pure function of (seed, request, stream) — identical at any worker
  // count and any queue interleaving. This exercises the synchronous shim
  // (stream pinned to the batch index) across worker counts.
  Rng rng(104);
  const std::size_t k = 32, n = 96, m = 8, nreq = 12;
  const MatI8 w8 = random_i8(k, n, rng);
  const QuantParams qw{0.02f}, qa{0.05f};
  TileGridConfig gcfg;
  gcfg.tile_cols = 32;
  const TileGrid grid(w8, qw, gcfg);

  std::vector<MatI8> acts;
  acts.reserve(nreq);
  for (std::size_t i = 0; i < nreq; ++i) acts.push_back(random_i8(m, k, rng));
  const RandomBitFlipInjector flips(0.002, 20, 30);
  const NullInjector none;
  std::vector<Request> reqs(nreq);
  for (std::size_t i = 0; i < nreq; ++i) {
    reqs[i].a8 = &acts[i];
    reqs[i].qa = qa;
    reqs[i].injector = (i % 3 == 0) ? static_cast<const FaultInjector*>(&flips) : &none;
  }

  std::vector<std::vector<Response>> runs;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    ServeConfig scfg;
    scfg.workers = workers;
    scfg.queue_capacity = 3;  // force admission backpressure on the wider runs
    scfg.seed = 0xfeed;
    ServeEngine engine(grid, scfg);
    runs.push_back(engine.serve(reqs));
    const ServeStats st = engine.stats();
    REALM_CHECK_EQ(st.submitted, std::uint64_t{nreq});
    REALM_CHECK_EQ(st.completed, std::uint64_t{nreq});
    REALM_CHECK_EQ(st.expired, std::uint64_t{0});
    REALM_CHECK_EQ(st.tiles_screened, std::uint64_t{nreq * grid.tile_count()});
    REALM_CHECK_EQ(st.latency_ms.count(), std::size_t{nreq});
    REALM_CHECK_EQ(st.window_count, std::size_t{nreq});
    REALM_CHECK(st.window_p99_ms >= st.window_p50_ms);
  }
  for (std::size_t w = 1; w < runs.size(); ++w) {
    for (std::size_t i = 0; i < nreq; ++i) {
      const Response &a = runs[0][i], &b = runs[w][i];
      REALM_CHECK(a.output == b.output);
      REALM_CHECK(a.verdict.verdict == b.verdict.verdict);
      REALM_CHECK(a.verdict.fault_cols == b.verdict.fault_cols);
      REALM_CHECK(a.verdict.fault_rows == b.verdict.fault_rows);
      REALM_CHECK_EQ(a.verdict.msd_abs_max, b.verdict.msd_abs_max);
      REALM_CHECK_EQ(a.verdict.injection.flipped_bits, b.verdict.injection.flipped_bits);
    }
  }
}

REALM_TEST(async_submit_matches_shim_under_randomized_interleavings) {
  // Pinned streams make outputs independent of HOW requests reach the
  // engine: submit in seeded-random order, with random priorities and
  // tenants, at 1/2/8 workers — every run must match the synchronous shim
  // bit for bit, request for request.
  Rng rng(107);
  const std::size_t k = 32, n = 96, m = 8, nreq = 16;
  const MatI8 w8 = random_i8(k, n, rng);
  const QuantParams qw{0.02f}, qa{0.05f};
  TileGridConfig gcfg;
  gcfg.tile_cols = 32;
  const TileGrid grid(w8, qw, gcfg);

  std::vector<MatI8> acts;
  acts.reserve(nreq);
  for (std::size_t i = 0; i < nreq; ++i) acts.push_back(random_i8(m, k, rng));
  const RandomBitFlipInjector flips(0.002, 20, 30);
  std::vector<Request> reqs(nreq);
  for (std::size_t i = 0; i < nreq; ++i) {
    reqs[i].a8 = &acts[i];
    reqs[i].qa = qa;
    reqs[i].injector = (i % 4 == 1) ? &flips : nullptr;
  }

  ServeConfig ref_cfg;
  ref_cfg.seed = 0xcafe;
  ServeEngine ref_engine(grid, ref_cfg);
  const std::vector<Response> ref = ref_engine.serve(reqs);

  Rng shuffle_rng(0x5eed);
  const Priority lanes[] = {Priority::kInteractive, Priority::kNormal, Priority::kBatch};
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    // Seeded Fisher–Yates: a different submit interleaving per worker count,
    // reproducible across runs.
    std::vector<std::size_t> order(nreq);
    for (std::size_t i = 0; i < nreq; ++i) order[i] = i;
    for (std::size_t i = nreq - 1; i > 0; --i) {
      const auto j = static_cast<std::size_t>(
          shuffle_rng.uniform_int(0, static_cast<std::int64_t>(i)));
      std::swap(order[i], order[j]);
    }

    ServeConfig scfg;
    scfg.workers = workers;
    scfg.queue_capacity = 4;
    scfg.seed = 0xcafe;
    ServeEngine engine(grid, scfg);
    std::vector<Ticket> tickets(nreq);
    for (const std::size_t i : order) {
      SubmitOptions opt;
      opt.stream = i;  // pinned: the shim's stream for batch index i
      opt.priority = lanes[i % 3];
      opt.tenant = (i % 2 == 0) ? "even" : "odd";
      tickets[i] = engine.submit(reqs[i], opt);
    }
    for (std::size_t i = 0; i < nreq; ++i) {
      const Response rsp = engine.wait(tickets[i]);
      REALM_CHECK(!rsp.expired);
      REALM_CHECK(rsp.output == ref[i].output);
      REALM_CHECK(rsp.verdict.verdict == ref[i].verdict.verdict);
      REALM_CHECK(rsp.verdict.fault_cols == ref[i].verdict.fault_cols);
      REALM_CHECK(rsp.verdict.fault_rows == ref[i].verdict.fault_rows);
      REALM_CHECK_EQ(rsp.verdict.injection.flipped_bits, ref[i].verdict.injection.flipped_bits);
    }
    REALM_CHECK_EQ(engine.tenant_stats("even").completed, std::uint64_t{nreq / 2});
    REALM_CHECK_EQ(engine.tenant_stats("odd").completed, std::uint64_t{nreq / 2});
  }
}

REALM_TEST(deadline_expiry_edge_cases) {
  // ManualClock makes expiry a pure function of the script: a deadline in
  // the past expires at claim time, deadline == now does NOT (expiry is
  // strictly now > deadline), and a future deadline expires only if the
  // clock actually passes it while the request is still queued. Expired
  // requests never compute and never disturb other requests' fault streams.
  Rng rng(108);
  const std::size_t k = 16, n = 24, m = 4;
  const QuantParams qw{0.02f}, qa{0.05f};
  const MatI8 w8 = random_i8(k, n, rng);
  TileGridConfig gcfg;
  gcfg.tile_cols = n;  // single tile: one request == one inject() call
  const TileGrid grid(w8, qw, gcfg);
  const MatI8 a8 = random_i8(m, k, rng);

  realm::util::ManualClock clock;
  const GateInjector gate;
  ServeConfig scfg;
  scfg.workers = 1;
  scfg.queue_capacity = 8;
  scfg.seed = 0xd1e;
  scfg.clock = &clock;
  ServeEngine engine(grid, scfg);
  const GateOpener opener{gate};

  const auto t0 = clock.now();
  Request gated = Request::borrow(a8, qa, &gate);
  SubmitOptions gopt;
  gopt.stream = 100;
  const Ticket tg = engine.submit(gated, gopt);
  REALM_CHECK(gate.wait_arrived(1));  // worker is parked inside the gate

  // Queued while the worker is busy; claimed only after the gate opens.
  SubmitOptions past;   // deadline strictly in the past: must expire
  past.deadline = t0 - std::chrono::nanoseconds(1);
  past.stream = 101;
  SubmitOptions at_now;  // deadline == now: must NOT expire (strict >)
  at_now.deadline = t0;
  at_now.stream = 102;
  SubmitOptions none;   // no deadline
  none.stream = 103;
  const Ticket tpast = engine.submit(Request::borrow(a8, qa), past);
  const Ticket tnow = engine.submit(Request::borrow(a8, qa), at_now);
  const Ticket tnone = engine.submit(Request::borrow(a8, qa), none);
  REALM_CHECK(engine.poll(tpast) == TicketState::kQueued);

  gate.open();
  const Response rg = engine.wait(tg);
  REALM_CHECK(!rg.expired);

  const Response rpast = engine.wait(tpast);
  REALM_CHECK(rpast.expired);
  REALM_CHECK_EQ(rpast.output.rows(), std::size_t{0});  // never computed
  const Response rnow = engine.wait(tnow);
  REALM_CHECK(!rnow.expired);
  const Response rnone = engine.wait(tnone);
  REALM_CHECK(!rnone.expired);
  // Non-expired outputs are exactly their stream's golden runs — the expired
  // neighbour shifted nothing.
  REALM_CHECK(rnow.output == grid_reference(grid, a8, qa, scfg.seed, 102));
  REALM_CHECK(rnone.output == grid_reference(grid, a8, qa, scfg.seed, 103));

  // A future deadline expires iff the clock passes it while queued.
  const GateInjector gate2;
  const GateOpener opener2{gate2};
  SubmitOptions gopt2;
  gopt2.stream = 200;
  const Ticket tg2 = engine.submit(Request::borrow(a8, qa, &gate2), gopt2);
  REALM_CHECK(gate2.wait_arrived(1));
  SubmitOptions future;
  future.deadline = clock.now() + std::chrono::seconds(5);
  future.stream = 201;
  const Ticket tfuture = engine.submit(Request::borrow(a8, qa), future);
  clock.advance(std::chrono::seconds(10));  // sail past the deadline in-queue
  gate2.open();
  const Response rg2 = engine.wait(tg2);
  REALM_CHECK(!rg2.expired);
  const Response rfuture = engine.wait(tfuture);
  REALM_CHECK(rfuture.expired);

  const ServeStats st = engine.stats();
  REALM_CHECK_EQ(st.expired, std::uint64_t{2});
  REALM_CHECK_EQ(st.completed, std::uint64_t{4});
  REALM_CHECK_EQ(st.failed, std::uint64_t{0});
  const TenantStats ts = engine.tenant_stats(kDefaultTenant);
  REALM_CHECK_EQ(ts.expired, std::uint64_t{2});
  REALM_CHECK_EQ(ts.completed, std::uint64_t{4});
}

REALM_TEST(hot_swap_under_load_never_mixes_tiles) {
  // Swap every tile to new weights while traffic is in flight. Zero requests
  // may drop or mis-verdict, and every response's per-tile column slice must
  // bit-equal EITHER the all-old or the all-new reference for that tile —
  // a blend would mean a request observed a half-swapped tile.
  Rng rng(109);
  const std::size_t k = 32, n = 64, m = 8, nreq = 32;
  const QuantParams qw{0.02f}, qa{0.05f};
  const MatI8 w_old = random_i8(k, n, rng);
  const MatI8 w_new = random_i8(k, n, rng);
  TileGridConfig gcfg;
  gcfg.tile_cols = 16;  // 4 tiles
  const TileGrid grid_old(w_old, qw, gcfg);
  const TileGrid grid_new(w_new, qw, gcfg);

  std::vector<MatI8> acts;
  acts.reserve(nreq);
  for (std::size_t i = 0; i < nreq; ++i) acts.push_back(random_i8(m, k, rng));

  const std::uint64_t seed = 0x50ab;
  std::vector<MatF> ref_old, ref_new;
  ref_old.reserve(nreq);
  ref_new.reserve(nreq);
  for (std::size_t i = 0; i < nreq; ++i) {
    ref_old.push_back(grid_reference(grid_old, acts[i], qa, seed, i));
    ref_new.push_back(grid_reference(grid_new, acts[i], qa, seed, i));
  }

  TileGrid grid(w_old, qw, gcfg);  // the live, hot-swapped grid
  ServeConfig scfg;
  scfg.workers = 4;
  scfg.queue_capacity = 8;
  scfg.seed = seed;
  ServeEngine engine(grid, scfg);

  std::vector<Ticket> tickets;
  tickets.reserve(nreq);
  for (std::size_t i = 0; i < nreq; ++i) {
    if (i == nreq / 2) {
      // Roll every tile mid-stream, against live traffic.
      REALM_CHECK_EQ(grid.swap_weights(w_new, qw), grid.tile_count());
    }
    SubmitOptions opt;
    opt.stream = i;
    tickets.push_back(engine.submit(Request::borrow(acts[i], qa), opt));
  }

  for (std::size_t i = 0; i < nreq; ++i) {
    const Response rsp = engine.wait(tickets[i]);
    REALM_CHECK(!rsp.expired);
    REALM_CHECK(rsp.verdict.verdict == Verdict::kClean);  // no mis-verdicts
    for (std::size_t t = 0; t < grid.tile_count(); ++t) {
      const std::size_t origin = grid.tile_origin(t);
      const std::size_t width = grid.tile_width(t);
      bool matches_old = true, matches_new = true;
      for (std::size_t r = 0; r < m; ++r) {
        for (std::size_t c = 0; c < width; ++c) {
          matches_old = matches_old && rsp.output(r, origin + c) == ref_old[i](r, origin + c);
          matches_new = matches_new && rsp.output(r, origin + c) == ref_new[i](r, origin + c);
        }
      }
      REALM_CHECK(matches_old || matches_new);  // whole-tile old or whole-tile new
    }
  }
  const ServeStats st = engine.stats();
  REALM_CHECK_EQ(st.completed, std::uint64_t{nreq});
  REALM_CHECK_EQ(st.expired, std::uint64_t{0});
  REALM_CHECK_EQ(st.failed, std::uint64_t{0});
  REALM_CHECK_EQ(grid.swap_epoch(), static_cast<std::uint64_t>(grid.tile_count()));
  REALM_CHECK(grid.verify_weight_integrity());
}

REALM_TEST(swap_tile_misuse_and_output_switch) {
  Rng rng(110);
  const std::size_t k = 16, n = 32, m = 4;
  const QuantParams qw{0.02f}, qa{0.05f};
  const MatI8 w_old = random_i8(k, n, rng);
  const MatI8 w_new = random_i8(k, n, rng);
  TileGridConfig gcfg;
  gcfg.tile_cols = 16;  // 2 tiles
  TileGrid grid(w_old, qw, gcfg);

  // Geometry is immutable: wrong index and wrong shape are loud errors.
  REALM_CHECK_THROWS(grid.swap_tile(2, random_i8(k, 16, rng), qw), std::invalid_argument);
  REALM_CHECK_THROWS(grid.swap_tile(0, random_i8(k, 8, rng), qw), std::invalid_argument);
  REALM_CHECK_THROWS(grid.swap_tile(0, random_i8(k / 2, 16, rng), qw), std::invalid_argument);
  REALM_CHECK_THROWS(grid.swap_weights(random_i8(k, n / 2, rng), qw), std::invalid_argument);
  REALM_CHECK_EQ(grid.swap_epoch(), std::uint64_t{0});

  // A full rolling swap re-points every tile: subsequent traffic computes
  // against the new weights bit-for-bit, and the scrub stays green.
  REALM_CHECK_EQ(grid.swap_weights(w_new, qw), std::size_t{2});
  REALM_CHECK_EQ(grid.swap_epoch(), std::uint64_t{2});
  REALM_CHECK(grid.verify_weight_integrity());

  const MatI8 a8 = random_i8(m, k, rng);
  const TileGrid grid_new(w_new, qw, gcfg);
  ServeConfig scfg;
  scfg.seed = 0xab1e;
  ServeEngine engine(grid, scfg);
  SubmitOptions opt;
  opt.stream = 0;
  const Response rsp = engine.wait(engine.submit(Request::borrow(a8, qa), opt));
  REALM_CHECK(rsp.verdict.verdict == Verdict::kClean);
  REALM_CHECK(rsp.output == grid_reference(grid_new, a8, qa, scfg.seed, 0));
}

REALM_TEST(mixed_shapes_in_flight_share_workers) {
  // Interleaved request heights through the same engine: per-worker scratch
  // is keyed by row count, so every shape must come back exactly equal to
  // its stream's golden run — no cross-shape buffer contamination.
  Rng rng(111);
  const std::size_t k = 24, n = 48;
  const QuantParams qw{0.02f}, qa{0.05f};
  const TileGrid grid(random_i8(k, n, rng), qw, TileGridConfig{16, {}});

  const std::size_t heights[] = {3, 8, 17};
  std::vector<MatI8> acts;
  const std::size_t nreq = 12;
  acts.reserve(nreq);
  for (std::size_t i = 0; i < nreq; ++i) {
    acts.push_back(random_i8(heights[i % 3], k, rng));
  }

  ServeConfig scfg;
  scfg.workers = 2;
  scfg.queue_capacity = 4;
  scfg.seed = 0x3a9e;
  ServeEngine engine(grid, scfg);
  std::vector<Ticket> tickets;
  tickets.reserve(nreq);
  for (std::size_t i = 0; i < nreq; ++i) {
    SubmitOptions opt;
    opt.stream = i;
    tickets.push_back(engine.submit(Request::borrow(acts[i], qa), opt));
  }
  for (std::size_t i = 0; i < nreq; ++i) {
    const Response rsp = engine.wait(tickets[i]);
    REALM_CHECK_EQ(rsp.output.rows(), heights[i % 3]);
    REALM_CHECK_EQ(rsp.output.cols(), n);
    REALM_CHECK(rsp.output == grid_reference(grid, acts[i], qa, scfg.seed, i));
  }
}

REALM_TEST(priority_lanes_and_admission_rejection) {
  // One worker parked in a gate, three queued requests at capacity: the
  // interactive submission must run before the earlier batch ones (strict
  // priority, FIFO within a lane), and a fourth submission must be shed by
  // try_submit with a rejected tally — never silently queued past the bound.
  Rng rng(112);
  const std::size_t k = 16, n = 24, m = 4;
  const QuantParams qw{0.02f}, qa{0.05f};
  TileGridConfig gcfg;
  gcfg.tile_cols = n;  // single tile: the injector log IS the claim order
  const TileGrid grid(random_i8(k, n, rng), qw, gcfg);
  const MatI8 a8 = random_i8(m, k, rng);

  std::mutex log_mu;
  std::vector<int> log;
  const RecordingInjector rec1(1, &log, &log_mu);
  const RecordingInjector rec2(2, &log, &log_mu);
  const RecordingInjector rec3(3, &log, &log_mu);
  const GateInjector gate;

  ServeConfig scfg;
  scfg.workers = 1;
  scfg.queue_capacity = 3;
  ServeEngine engine(grid, scfg);
  const GateOpener opener{gate};

  const Ticket tg = engine.submit(Request::borrow(a8, qa, &gate));
  REALM_CHECK(gate.wait_arrived(1));

  SubmitOptions batch;
  batch.priority = Priority::kBatch;
  batch.tenant = "free";
  const Ticket t1 = engine.submit(Request::borrow(a8, qa, &rec1), batch);
  const Ticket t2 = engine.submit(Request::borrow(a8, qa, &rec2), batch);
  SubmitOptions inter;
  inter.priority = Priority::kInteractive;
  inter.tenant = "pro";
  const Ticket t3 = engine.submit(Request::borrow(a8, qa, &rec3), inter);

  // Budget exhausted (3 queued, worker busy): shed, don't park.
  REALM_CHECK(!engine.try_submit(Request::borrow(a8, qa), batch).has_value());
  REALM_CHECK_EQ(engine.stats().rejected, std::uint64_t{1});
  REALM_CHECK_EQ(engine.tenant_stats("free").rejected, std::uint64_t{1});
  REALM_CHECK(engine.poll(t3) == TicketState::kQueued);

  gate.open();
  engine.drain();
  REALM_CHECK(engine.poll(t1) == TicketState::kDone);
  const std::vector<int> want{3, 1, 2};  // interactive first, then batch FIFO
  REALM_CHECK(log == want);

  (void)engine.wait(tg);
  (void)engine.wait(t1);
  (void)engine.wait(t2);
  (void)engine.wait(t3);
  REALM_CHECK_EQ(engine.tenant_stats("pro").completed, std::uint64_t{1});
  REALM_CHECK_EQ(engine.tenant_stats("free").completed, std::uint64_t{2});
  const std::vector<std::string> names = engine.tenants();
  REALM_CHECK_EQ(names.size(), std::size_t{3});  // default, free, pro (sorted)
  REALM_CHECK(names[0] == kDefaultTenant && names[1] == "free" && names[2] == "pro");
  REALM_CHECK_THROWS((void)engine.tenant_stats("nobody"), std::invalid_argument);
}

REALM_TEST(owned_requests_and_ticket_lifecycle) {
  // The async lifetime fix: Request::own() carries the activation, so the
  // caller's buffer can die before a worker ever touches the request. The
  // ticket itself is single-use — wait() consumes it.
  Rng rng(113);
  const std::size_t k = 16, n = 24, m = 4;
  const QuantParams qw{0.02f}, qa{0.05f};
  TileGridConfig gcfg;
  gcfg.tile_cols = n;  // single tile for the gate
  const TileGrid grid(random_i8(k, n, rng), qw, gcfg);
  const MatI8 a8 = random_i8(m, k, rng);

  const GateInjector gate;
  ServeConfig scfg;
  scfg.workers = 1;
  scfg.queue_capacity = 4;
  scfg.seed = 0x0eed;
  ServeEngine engine(grid, scfg);
  const GateOpener opener{gate};

  const Ticket tg = engine.submit(Request::borrow(a8, qa, &gate));
  REALM_CHECK(gate.wait_arrived(1));

  MatF ref;
  Ticket towned;
  {
    // The source buffer lives only in this scope; the worker is parked, so
    // it CANNOT run before the scope ends — the owned copy must carry it.
    MatI8 ephemeral = random_i8(m, k, rng);
    ref = grid_reference(grid, ephemeral, qa, scfg.seed, 7);
    SubmitOptions opt;
    opt.stream = 7;
    towned = engine.submit(Request::own(std::move(ephemeral), qa), opt);
    REALM_CHECK(engine.poll(towned) == TicketState::kQueued);
  }
  gate.open();
  (void)engine.wait(tg);
  const Response rsp = engine.wait(towned);
  REALM_CHECK(!rsp.expired);
  REALM_CHECK(rsp.output == ref);

  // wait() consumed the ticket: a second wait (or poll) is a loud error.
  REALM_CHECK_THROWS((void)engine.wait(towned), std::invalid_argument);
  REALM_CHECK_THROWS((void)engine.poll(towned), std::invalid_argument);
  REALM_CHECK_THROWS((void)engine.poll(Ticket{}), std::invalid_argument);
  REALM_CHECK_THROWS((void)engine.wait(Ticket{987654}), std::invalid_argument);
}

REALM_TEST(stats_window_slides_and_reset_clears) {
  Rng rng(114);
  const std::size_t k = 16, n = 16, m = 4;
  const TileGrid grid(random_i8(k, n, rng), QuantParams{0.02f}, TileGridConfig{16, {}});
  const MatI8 a8 = random_i8(m, k, rng);
  const MagFreqInjector mag(1 << 8, 1);

  ServeConfig scfg;
  scfg.workers = 2;
  scfg.stats_window = 4;  // tiny window so it demonstrably slides
  ServeEngine engine(grid, scfg);
  std::vector<Request> reqs(3, Request::borrow(a8, QuantParams{0.05f}, &mag));
  std::vector<Response> responses;
  engine.serve(reqs, responses);
  ServeStats st = engine.stats();
  REALM_CHECK_EQ(st.completed, std::uint64_t{3});
  REALM_CHECK_EQ(st.window_count, std::size_t{3});  // under capacity: all held
  engine.serve(reqs, responses);
  st = engine.stats();
  REALM_CHECK_EQ(st.completed, std::uint64_t{6});
  REALM_CHECK_EQ(st.window_count, std::size_t{4});  // capped at the window span
  REALM_CHECK(st.window_p99_ms >= st.window_p50_ms);
  REALM_CHECK_EQ(st.latency_ms.count(), std::size_t{6});  // cumulative keeps all
  // Every request corrects its single faulty tile (by either healing mode).
  REALM_CHECK_EQ(st.tiles_corrected(), std::uint64_t{6 * grid.tile_count()});

  engine.reset_stats();
  st = engine.stats();
  REALM_CHECK_EQ(st.completed, std::uint64_t{0});
  REALM_CHECK_EQ(st.window_count, std::size_t{0});
  REALM_CHECK_EQ(st.latency_ms.count(), std::size_t{0});
}

REALM_TEST(misuse_is_rejected) {
  Rng rng(106);
  const MatI8 w8 = random_i8(8, 8, rng);
  REALM_CHECK_THROWS(TileGrid(w8, QuantParams{0.1f}, TileGridConfig{0, {}}),
                     std::invalid_argument);
  REALM_CHECK_THROWS(TileGrid(MatI8{}, QuantParams{0.1f}), std::invalid_argument);

  const TileGrid grid(w8, QuantParams{0.1f}, TileGridConfig{4, {}});
  const MatI8 a8 = random_i8(2, 8, rng);
  const NullInjector none;
  std::vector<ProtectedGemmResult> scratch;
  MatF out;
  BatchVerdict bv;
  const std::vector<const FaultInjector*> short_list{&none};  // 1 != tile_count()
  REALM_CHECK_THROWS(grid.run_into(a8, QuantParams{0.1f}, short_list, Rng(1), scratch, out, bv),
                     std::invalid_argument);

  ServeConfig bad;
  bad.queue_capacity = 0;
  REALM_CHECK_THROWS(ServeEngine(grid, bad), std::invalid_argument);
  ServeConfig bad_window;
  bad_window.stats_window = 0;
  REALM_CHECK_THROWS(ServeEngine(grid, bad_window), std::invalid_argument);

  ServeEngine engine(grid, ServeConfig{});
  std::vector<Request> reqs(1);  // null activation
  REALM_CHECK_THROWS(engine.serve(reqs), std::invalid_argument);
  // The async front door rejects the same misuse at submit time — the
  // lifetime-footgun death-test: a request with no activation never reaches
  // a worker.
  REALM_CHECK_THROWS((void)engine.submit(Request{}), std::invalid_argument);
  REALM_CHECK_THROWS((void)engine.try_submit(Request{}), std::invalid_argument);

  // An exception thrown from INSIDE a worker (dim mismatch surfaces in
  // run_quantized_into, past the up-front validation) must surface from
  // wait() — and therefore from the shim — as the original type.
  ServeConfig two;
  two.workers = 2;
  two.queue_capacity = 1;
  ServeEngine multi(grid, two);
  const MatI8 bad_dims = random_i8(2, 4, rng);  // cols != k
  std::vector<Request> mixed(3);
  for (auto& r : mixed) {
    r.a8 = &a8;
    r.qa = QuantParams{0.1f};
  }
  mixed[1].a8 = &bad_dims;
  std::vector<Response> rsp;
  REALM_CHECK_THROWS(multi.serve(mixed, rsp), std::invalid_argument);
  REALM_CHECK_EQ(multi.stats().failed, std::uint64_t{1});
  // The failed ticket was consumed by the shim; the engine carries no
  // orphaned slots and keeps serving.
  const Ticket ok = multi.submit(Request::borrow(a8, QuantParams{0.1f}));
  REALM_CHECK(!multi.wait(ok).expired);
}

REALM_TEST_MAIN()
