#include "detect/detect.h"

#include <algorithm>
#include <cstdint>
#include <stdexcept>

#include "realm_test.h"
#include "tensor/checksum.h"
#include "tensor/gemm.h"
#include "tensor/gemm_kernels.h"
#include "tensor/quant.h"
#include "tensor/tensor.h"
#include "util/rng.h"
#include "util/threadpool.h"

using namespace realm::detect;
using namespace realm::tensor;
using namespace realm::fault;
using realm::util::Rng;

namespace {

MatF random_f32(std::size_t rows, std::size_t cols, Rng& rng) {
  MatF m(rows, cols);
  for (auto& x : m.flat()) x = static_cast<float>(rng.normal());
  return m;
}

ProtectedGemm make_pg(std::size_t k, std::size_t n, Rng& rng, DetectionConfig cfg = {}) {
  ProtectedGemm pg(cfg);
  pg.set_weights(random_f32(k, n, rng));
  return pg;
}

}  // namespace

REALM_TEST(golden_runs_are_clean) {
  // Checksums are exact integer identities: across many fault-free runs the
  // detector must report zero deviation — zero false positives.
  Rng rng(31);
  ProtectedGemm pg = make_pg(48, 24, rng);
  const NullInjector none;
  for (int trial = 0; trial < 50; ++trial) {
    const ProtectedGemmResult r = pg.run(random_f32(8, 48, rng), none, rng);
    REALM_CHECK(r.report.verdict == Verdict::kClean);
    REALM_CHECK_EQ(r.report.msd_abs, std::uint64_t{0});
    REALM_CHECK(r.report.fault_cols.empty());
    REALM_CHECK(r.report.fault_rows.empty());
  }
  REALM_CHECK_EQ(calibrate_msd_threshold(pg, 8, 20, rng), std::uint64_t{0});
}

REALM_TEST(magfreq_sweep_detects_everything) {
  // The acceptance sweep: every (mag, freq) cell must be flagged with MSD
  // above threshold, and the correction path must restore a clean tile.
  Rng rng(32);
  ProtectedGemm pg = make_pg(64, 32, rng);
  const std::int64_t mags[] = {1, 16, 1 << 10, 1 << 20, -(1 << 15)};
  const std::uint64_t freqs[] = {1, 3, 17};
  int cells = 0;
  for (const auto mag : mags) {
    for (const auto freq : freqs) {
      const MagFreqInjector inj(mag, freq);
      const ProtectedGemmResult r = pg.run(random_f32(16, 64, rng), inj, rng);
      // MagFreq errors all share one sign, so MSD == |freq * mag| exactly.
      REALM_CHECK(r.report.msd_abs > pg.config().msd_threshold);
      REALM_CHECK_EQ(r.report.msd_abs,
                     freq * static_cast<std::uint64_t>(mag < 0 ? -mag : mag));
      REALM_CHECK(corrected(r.report.verdict));
      ++cells;
    }
  }
  REALM_CHECK_EQ(cells, 15);
}

REALM_TEST(localization_intersects_rows_and_columns) {
  Rng rng(33);
  DetectionConfig cfg;
  cfg.patch_on_detect = false;  // keep the corrupted accumulator visible
  cfg.recompute_on_detect = false;
  ProtectedGemm pg = make_pg(32, 16, rng, cfg);

  // Inject a single known error by comparing against the fault-free run.
  const MatF a = random_f32(8, 32, rng);
  const QuantParams qa = calibrate(a.flat());
  const MatI8 a8 = quantize(a, qa);
  const MagFreqInjector inj(1 << 12, 1);
  const ProtectedGemmResult faulty = pg.run_quantized(a8, qa, inj, rng);
  const MatI32 clean = gemm_i8(a8, pg.weights());

  REALM_CHECK(faulty.report.verdict == Verdict::kDetected);
  REALM_CHECK_EQ(faulty.report.fault_cols.size(), std::size_t{1});
  REALM_CHECK_EQ(faulty.report.fault_rows.size(), std::size_t{1});
  const std::size_t row = faulty.report.fault_rows[0];
  const std::size_t col = faulty.report.fault_cols[0];
  // The row x column intersection pinpoints the corrupted element.
  REALM_CHECK_EQ(faulty.acc(row, col) - clean(row, col), 1 << 12);
  REALM_CHECK_EQ(faulty.report.max_dev_pow2, 12);
}

REALM_TEST(correction_recomputes_exact_output) {
  Rng rng(34);
  ProtectedGemm pg = make_pg(40, 20, rng);
  const MatF a = random_f32(6, 40, rng);
  const QuantParams qa = calibrate(a.flat());
  const MatI8 a8 = quantize(a, qa);

  const NullInjector none;
  const ProtectedGemmResult golden = pg.run_quantized(a8, qa, none, rng);
  const MagFreqInjector inj(12345, 5);
  const ProtectedGemmResult corrected = pg.run_quantized(a8, qa, inj, rng);

  REALM_CHECK(realm::detect::corrected(corrected.report.verdict));
  REALM_CHECK(corrected.acc == golden.acc);      // bit-exact healed tile
  REALM_CHECK(corrected.output == golden.output);
  REALM_CHECK_EQ(corrected.report.injection.corrupted_values, std::uint64_t{5});
}

REALM_TEST(calibration_accepts_activation_spec) {
  // Callers describe their activation regime; checksums stay exact integer
  // identities, so every fault-free distribution calibrates to 0 — but a
  // degenerate spec must be rejected loudly, not silently sampled.
  Rng rng(44);
  ProtectedGemm pg = make_pg(24, 12, rng);
  REALM_CHECK_EQ(calibrate_msd_threshold(pg, 4, 5, rng, ActivationSpec::normal(0.0, 3.0)),
                 std::uint64_t{0});
  REALM_CHECK_EQ(calibrate_msd_threshold(pg, 4, 5, rng, ActivationSpec::uniform(-8.0, 8.0)),
                 std::uint64_t{0});
  REALM_CHECK_THROWS(calibrate_msd_threshold(pg, 4, 5, rng, ActivationSpec::normal(0.0, 0.0)),
                     std::invalid_argument);
  REALM_CHECK_THROWS(calibrate_msd_threshold(pg, 4, 5, rng, ActivationSpec::uniform(1.0, 1.0)),
                     std::invalid_argument);
}

REALM_TEST(msd_only_mode_and_thresholding) {
  Rng rng(35);
  DetectionConfig cfg;
  cfg.mode = CheckMode::kMsdOnly;
  cfg.msd_threshold = 1000;
  cfg.patch_on_detect = false;
  cfg.recompute_on_detect = false;
  ProtectedGemm pg = make_pg(32, 16, rng, cfg);
  const MatF a = random_f32(4, 32, rng);
  const QuantParams qa = calibrate(a.flat());
  const MatI8 a8 = quantize(a, qa);

  // Below threshold: slips past the one-sided MSD check.
  const ProtectedGemmResult below =
      pg.run_quantized(a8, qa, MagFreqInjector(500, 1), rng);
  REALM_CHECK(below.report.verdict == Verdict::kClean);
  REALM_CHECK_EQ(below.report.msd_abs, std::uint64_t{500});
  REALM_CHECK(below.report.fault_cols.empty());  // no localization in MSD-only

  // Above threshold: detected even without per-column checks.
  const ProtectedGemmResult above =
      pg.run_quantized(a8, qa, MagFreqInjector(2000, 1), rng);
  REALM_CHECK(above.report.verdict == Verdict::kDetected);
}

REALM_TEST(narrow_msd_datapath_still_detects_sign) {
  // A 16-bit MSD bus saturates on a huge deviation instead of wrapping to a
  // small alias; detection survives the reduced-width hardware model.
  Rng rng(36);
  DetectionConfig cfg;
  cfg.mode = CheckMode::kMsdOnly;
  cfg.msd_datapath_bits = 16;
  cfg.patch_on_detect = false;
  cfg.recompute_on_detect = false;
  ProtectedGemm pg = make_pg(32, 16, rng, cfg);
  const MatF a = random_f32(4, 32, rng);
  const QuantParams qa = calibrate(a.flat());
  const ProtectedGemmResult r =
      pg.run_quantized(quantize(a, qa), qa, MagFreqInjector(1 << 24, 3), rng);
  REALM_CHECK(r.report.verdict == Verdict::kDetected);
  REALM_CHECK_EQ(r.report.msd_signed, std::int64_t{32767});  // saturated, not aliased
}

namespace {

/// Opposite-sign errors in one column: zero per-column deviation, zero MSD —
/// invisible to every column-side statistic, caught only by the row checks.
class CancellingPairInjector final : public FaultInjector {
 public:
  explicit CancellingPairInjector(std::size_t stride) : stride_(stride) {}
  InjectionReport inject(std::span<std::int32_t> data, realm::util::Rng&,
                         std::vector<realm::fault::FlipRecord>* record) const override {
    if (record != nullptr) record->clear();
    data[0] += 1 << 20;        // element (0, 0)
    data[stride_] -= 1 << 20;  // element (1, 0)
    return {.flipped_bits = 2, .corrupted_values = 2};
  }

 private:
  std::size_t stride_;
};

}  // namespace

REALM_TEST(column_cancelling_fault_caught_by_rows) {
  Rng rng(39);
  ProtectedGemm pg = make_pg(32, 16, rng);
  const MatF a = random_f32(4, 32, rng);
  const QuantParams qa = calibrate(a.flat());
  const CancellingPairInjector inj(pg.weights().cols());
  const ProtectedGemmResult r = pg.run_quantized(quantize(a, qa), qa, inj, rng);
  REALM_CHECK_EQ(r.report.msd_abs, std::uint64_t{0});  // column side is blind
  REALM_CHECK(r.report.fault_cols.empty());
  REALM_CHECK_EQ(r.report.fault_rows.size(), std::size_t{2});
  REALM_CHECK(corrected(r.report.verdict));  // rows flag + heal (patch or replay)
}

REALM_TEST(screen_accumulator_matches_pipeline_verdict) {
  // The exposed screen is the SAME code path the pipeline runs internally:
  // re-screening a run's accumulator with the recomputed predicted checksum
  // must reproduce the pipeline's verdict field for field (sans injection) —
  // the contract the realm::sa reference comparison stands on.
  Rng rng(42);
  DetectionConfig cfg;
  cfg.patch_on_detect = false;  // keep the faulted accumulator visible
  cfg.recompute_on_detect = false;
  ProtectedGemm pg = make_pg(32, 24, rng, cfg);
  const MatF a = random_f32(8, 32, rng);
  const QuantParams qa = calibrate(a.flat());
  const MatI8 a8 = quantize(a, qa);

  for (const std::int64_t mag : {std::int64_t{0}, std::int64_t{1} << 18}) {
    const NullInjector none;
    const MagFreqInjector inj(1 << 18, 2);
    const FaultInjector& active = mag == 0 ? static_cast<const FaultInjector&>(none) : inj;
    const ProtectedGemmResult r = pg.run_quantized(a8, qa, active, rng);

    const std::vector<std::int64_t> predicted = predict_col_checksum(a8, pg.weights());
    const DetectionVerdict v =
        screen_accumulator(pg.config(), predicted, a8, pg.weight_row_basis(), r.acc);
    REALM_CHECK(v.verdict == r.report.verdict);
    REALM_CHECK_EQ(v.msd_signed, r.report.msd_signed);
    REALM_CHECK_EQ(v.msd_abs, r.report.msd_abs);
    REALM_CHECK_EQ(v.l1, r.report.l1);
    REALM_CHECK_EQ(v.max_dev_pow2, r.report.max_dev_pow2);
    REALM_CHECK(v.fault_cols == r.report.fault_cols);
    REALM_CHECK(v.fault_rows == r.report.fault_rows);
  }

  // A corrected pipeline run re-screens clean: the standalone screen on its
  // (recomputed) accumulator must agree.
  DetectionConfig fix;
  ProtectedGemm pg_fix(fix);
  pg_fix.set_weights_quantized(pg.weights(), pg.weight_params());
  const ProtectedGemmResult corrected =
      pg_fix.run_quantized(a8, qa, MagFreqInjector(1 << 18, 2), rng);
  REALM_CHECK(realm::detect::corrected(corrected.report.verdict));
  const std::vector<std::int64_t> predicted = predict_col_checksum(a8, pg_fix.weights());
  REALM_CHECK(screen_accumulator(pg_fix.config(), predicted, a8, pg_fix.weight_row_basis(),
                                 corrected.acc)
                  .verdict == Verdict::kClean);
}

REALM_TEST(detect_roc_over_random_bitflips) {
  // High-bit random flips (the paper's timing-error regime) must all be
  // caught by the two-sided check; report-level sanity on the sweep.
  Rng rng(37);
  ProtectedGemm pg = make_pg(64, 32, rng);
  const RandomBitFlipInjector inj(1e-4, 24, 31);
  int injected_runs = 0, detected_runs = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const ProtectedGemmResult r = pg.run(random_f32(16, 64, rng), inj, rng);
    if (r.report.injection.flipped_bits == 0) {
      REALM_CHECK(r.report.verdict == Verdict::kClean);
      continue;
    }
    ++injected_runs;
    if (r.report.faulty()) ++detected_runs;
  }
  REALM_CHECK(injected_runs > 0);
  REALM_CHECK_EQ(detected_runs, injected_runs);  // 100% detection, column-exact
}

namespace {

/// Flips exactly one high bit of one fixed element — the minimal fault the
/// end-to-end pipeline must detect, localize, and correct.
class OneBitFlipAt final : public FaultInjector {
 public:
  OneBitFlipAt(std::size_t index, int bit) : index_(index), bit_(bit) {}
  InjectionReport inject(std::span<std::int32_t> data, realm::util::Rng&,
                         std::vector<realm::fault::FlipRecord>* record) const override {
    if (record != nullptr) record->clear();
    data[index_] ^= std::int32_t{1} << bit_;
    return {.flipped_bits = 1, .corrupted_values = 1};
  }

 private:
  std::size_t index_;
  int bit_;
};

/// Restores the serial default even when a REALM_CHECK throws mid-case, so a
/// failure can't leak an 8-thread pool into the remaining cases.
struct SerialGuard {
  ~SerialGuard() { realm::util::set_global_threads(1); }
};

}  // namespace

REALM_TEST(fast_path_detects_and_corrects_with_threads_on_and_off) {
  // End-to-end on the dispatched kernel: detection screens whatever tier
  // actually serves production GEMMs (the fastest supported one unless
  // REALM_KERNEL overrides), and the verdict, localization, and corrected
  // bits must be identical at every thread count.
  Rng rng(40);
  SerialGuard guard;
  ProtectedGemm pg = make_pg(96, 64, rng);
  const MatF a = random_f32(32, 96, rng);
  const QuantParams qa = calibrate(a.flat());
  const MatI8 a8 = quantize(a, qa);
  const std::size_t faulty_index = 7 * 64 + 21;  // element (7, 21)
  const OneBitFlipAt inj(faulty_index, 28);
  const NullInjector none;

  realm::util::set_global_threads(1);
  const ProtectedGemmResult golden = pg.run_quantized(a8, qa, none, rng);
  const ProtectedGemmResult serial = pg.run_quantized(a8, qa, inj, rng);
  REALM_CHECK(serial.report.verdict == Verdict::kPatched);  // lone flip: patched in place
  REALM_CHECK(serial.acc == golden.acc);

  // Localization from a detect-only config, serial vs threaded.
  DetectionConfig no_fix;
  no_fix.patch_on_detect = false;
  no_fix.recompute_on_detect = false;
  ProtectedGemm pg_loc(no_fix);
  pg_loc.set_weights_quantized(pg.weights(), pg.weight_params());

  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    realm::util::set_global_threads(threads);
    const ProtectedGemmResult fixed = pg.run_quantized(a8, qa, inj, rng);
    REALM_CHECK(fixed.report.verdict == Verdict::kPatched);
    REALM_CHECK(fixed.acc == golden.acc);       // corrected bits identical
    REALM_CHECK(fixed.output == golden.output);
    const ProtectedGemmResult located = pg_loc.run_quantized(a8, qa, inj, rng);
    REALM_CHECK(located.report.verdict == Verdict::kDetected);
    REALM_CHECK_EQ(located.report.fault_rows.size(), std::size_t{1});
    REALM_CHECK_EQ(located.report.fault_cols.size(), std::size_t{1});
    REALM_CHECK_EQ(located.report.fault_rows[0], std::size_t{7});
    REALM_CHECK_EQ(located.report.fault_cols[0], std::size_t{21});
  }
}

REALM_TEST(misuse_is_rejected) {
  ProtectedGemm pg;
  Rng rng(38);
  const NullInjector none;
  REALM_CHECK_THROWS(pg.run(MatF(2, 2, 1.0f), none, rng), std::logic_error);
  pg.set_weights(MatF(4, 4, 1.0f));
  REALM_CHECK_THROWS(pg.run(MatF(2, 5, 1.0f), none, rng), std::invalid_argument);
  DetectionConfig bad;
  bad.msd_datapath_bits = 0;
  REALM_CHECK_THROWS(ProtectedGemm{bad}, std::invalid_argument);
}

REALM_TEST_MAIN()
