// Fixture: accumulates a column deviation into an int64 with a raw +=. At
// adversarial fault magnitudes the sum wraps, and a wrapped MSD is exactly
// what the screen exists to catch — realm-lint must flag this as sat-math.
#include <cstddef>
#include <cstdint>
#include <vector>

namespace realm::detect {

std::int64_t column_msd(const std::vector<std::int64_t>& observed,
                        const std::vector<std::int64_t>& predicted) {
  std::int64_t msd = 0;
  for (std::size_t j = 0; j < observed.size(); ++j) {
    msd += observed[j] - predicted[j];  // BAD: can wrap; must use sat_add/sat_sub
  }
  return msd;
}

}  // namespace realm::detect
