// Fixture: applies an in-place algebraic patch to the accumulator and
// returns without re-screening it. A wrong solve (aliased deviations that
// happen to divide cleanly) would be silently accepted as healed output —
// realm-lint must flag this as rescreen.
#include <cstddef>
#include <cstdint>
#include <vector>

namespace realm::detect {

struct Acc {
  std::int32_t& operator()(std::size_t r, std::size_t c);
};

bool patch_without_recheck(Acc& acc, std::size_t row, std::size_t col, std::int32_t delta) {
  acc(row, col) -= delta;  // BAD: patched accumulator never re-screened
  return true;
}

}  // namespace realm::detect
