// Fixture: the blessed corrector idioms that must stay clean under the
// rescreen rule — a patch followed by a screen_accumulator(...) re-check in
// the same function, and a deliberately unchecked mutation carrying an
// allow() pragma with a rationale.
#include <cstddef>
#include <cstdint>
#include <vector>

namespace realm::detect {

struct Acc {
  std::int32_t& operator()(std::size_t r, std::size_t c);
};

bool screen_accumulator(const Acc& acc);

bool patch_then_recheck(Acc& acc, std::size_t row, std::size_t col, std::int32_t delta) {
  acc(row, col) -= delta;
  return screen_accumulator(acc);  // certified-or-recompute: re-screen the patch
}

void scrub_for_test(Acc& acc) {
  // realm-lint: allow(rescreen): test-only scrub; caller re-screens the tile
  acc(0, 0) = 0;
}

}  // namespace realm::detect
