// Fixture: uses std::vector without including <vector>, so the header only
// compiles when an earlier include happens to drag it in — realm-lint must
// flag this as header-tu (headers stay self-contained).
#pragma once

#include <cstdint>

namespace realm::util {

inline std::vector<std::int64_t> zeros(std::size_t n) { return std::vector<std::int64_t>(n, 0); }

}  // namespace realm::util
