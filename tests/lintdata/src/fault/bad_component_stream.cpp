// Fixture: derives a component's fault stream by additive seed arithmetic
// inside a component_stream construction site. The stream now depends on the
// numeric spacing of component/op tags, so two components can collide (or
// shift when a new component is added) instead of staying independent forks
// of one seed — realm-lint must flag this as rng-fork. The correct pattern is
// util::Rng(seed).fork(component_tag).fork(op).
#include <cstdint>

#include "util/rng.h"

namespace realm::fault {

util::Rng component_stream(std::uint64_t seed, std::uint64_t component, std::uint64_t op) {
  util::Rng rng(seed + component * 1024 + op);  // BAD: additive seed coupling
  return rng;
}

}  // namespace realm::fault
