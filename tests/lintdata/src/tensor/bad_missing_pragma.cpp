// Fixture: an AVX-512 region without REALM_BEGIN/END_AVX512_SECTION. On GCC
// this regresses the PR105593 -Wmaybe-uninitialized suppression (and under
// -Werror, the build) — realm-lint must flag this as avx512-pragma.
#include <cstddef>
#include <cstdint>

namespace realm::tensor {

__attribute__((target("avx512f"))) void scale_avx512(std::int32_t* v, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) v[i] *= 2;  // BAD: no section macros
}

}  // namespace realm::tensor
