// Fixture: constructs an Rng from a raw per-worker seed inside a worker_loop
// body. The fault stream now depends on which worker claimed the request (and
// therefore on the worker count and queue timing), so verdicts stop being a
// pure function of (seed, request, stream) — realm-lint must flag this as
// rng-fork. The correct pattern is util::Rng(seed).fork(stream) with the
// stream tag carried on the ticket.
#include <cstdint>

#include "util/rng.h"

namespace realm::serve {

std::uint64_t next_ticket(std::uint64_t w);

void worker_loop(std::uint64_t worker_id, std::uint64_t seed) {
  while (const std::uint64_t id = next_ticket(worker_id)) {
    util::Rng rng(seed + worker_id);  // BAD: stream coupled to the claiming worker
    (void)rng.uniform_u64(id);
  }
}

}  // namespace realm::serve
