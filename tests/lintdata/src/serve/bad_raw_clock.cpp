// Fixture: reads std::chrono::steady_clock directly instead of going through
// util::Clock / util::now_ns(). The read is invisible to ManualClock
// injection, so deadlines and trace timestamps silently go nondeterministic
// under test — realm-lint must flag this as clock-source.
#include <chrono>
#include <cstdint>

namespace realm::serve {

std::int64_t deadline_ns(std::int64_t budget_ns) {
  const auto now = std::chrono::steady_clock::now();  // BAD: raw clock read
  return std::chrono::duration_cast<std::chrono::nanoseconds>(now.time_since_epoch()).count() +
         budget_ns;
}

}  // namespace realm::serve
