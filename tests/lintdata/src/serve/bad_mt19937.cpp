// Fixture: draws randomness from std::mt19937 instead of util::Rng. The
// stream is unreplayable from the experiment seed and invisible to the
// fork-tag discipline — realm-lint must flag this as rng-source.
#include <cstdint>
#include <random>

namespace realm::serve {

std::uint32_t jitter() {
  std::mt19937 gen(42);  // BAD: all randomness must flow through util::Rng
  return gen();
}

}  // namespace realm::serve
