// Fixture: the blessed spellings of every invariant realm-lint enforces.
// Must produce zero findings — guards against the linter growing false
// positives on the idioms the real tree uses.
#include <cstddef>
#include <cstdint>

#include "util/bitmath.h"
#include "util/compiler.h"
#include "util/rng.h"
#include "util/threadpool.h"

namespace realm::sa {

std::int64_t forked_saturating_sweep(std::size_t n, const util::Rng& base) {
  std::int64_t msd = 0;
  util::global_pool().parallel_for(n, 1, [&](std::size_t c0, std::size_t c1) {
    for (std::size_t c = c0; c < c1; ++c) {
      util::Rng rng = base.fork(c);  // OK: per-cell stream, chunking-independent
      const auto d = static_cast<std::int64_t>(rng.uniform_u64(1024));
      msd = util::sat_add_i64(msd, d);  // OK: saturating accumulation
    }
  });
  return util::clamp_to_bits(msd, 32);
}

REALM_BEGIN_AVX512_SECTION

__attribute__((target("avx512f"))) void scale_avx512(std::int32_t* v, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) v[i] *= 2;  // OK: wrapped in section macros
}

REALM_END_AVX512_SECTION

}  // namespace realm::sa
