// Fixture: constructs an Rng from a raw per-chunk seed inside a parallel_for
// body. The stream now depends on how the range was chunked, so results vary
// with the thread count — realm-lint must flag this as rng-fork.
#include "util/rng.h"
#include "util/threadpool.h"

namespace realm::sa {

void sweep_cells(std::size_t n, std::uint64_t seed) {
  util::global_pool().parallel_for(n, 1, [&](std::size_t c0, std::size_t c1) {
    util::Rng rng(seed + c0);  // BAD: seed coupled to chunk boundary
    for (std::size_t c = c0; c < c1; ++c) {
      (void)rng.uniform_u64(c + 1);
    }
  });
}

}  // namespace realm::sa
