// Observability layer: log₂ histogram edges, metrics registry exposition and
// reset semantics, span tracer determinism under ManualClock at several
// worker counts, ring eviction, and the compile-time removal contract.
#include "obs/metrics.h"
#include "obs/trace.h"

#include <algorithm>
#include <compare>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "fault/fault.h"
#include "realm_test.h"
#include "serve/engine.h"
#include "serve/tile_grid.h"
#include "tensor/quant.h"
#include "tensor/tensor.h"
#include "util/clock.h"
#include "util/rng.h"

using namespace realm::obs;
using realm::util::ManualClock;
using realm::util::Rng;

namespace {

realm::tensor::MatI8 random_i8(std::size_t rows, std::size_t cols, Rng& rng) {
  realm::tensor::MatI8 m(rows, cols);
  for (auto& x : m.flat()) x = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
  return m;
}

}  // namespace

// ---------------------------------------------------------------------------
// LogHistogram

REALM_TEST(histogram_bucket_edges) {
  // Bucket 0 is the value 0; bucket i (i >= 1) is [2^(i-1), 2^i - 1].
  REALM_CHECK_EQ(LogHistogram::bucket_index(0), 0);
  REALM_CHECK_EQ(LogHistogram::bucket_index(1), 1);
  REALM_CHECK_EQ(LogHistogram::bucket_index(2), 2);
  REALM_CHECK_EQ(LogHistogram::bucket_index(3), 2);
  REALM_CHECK_EQ(LogHistogram::bucket_index(4), 3);
  REALM_CHECK_EQ(LogHistogram::bucket_index((std::uint64_t{1} << 20) - 1), 20);
  REALM_CHECK_EQ(LogHistogram::bucket_index(std::uint64_t{1} << 20), 21);
  REALM_CHECK_EQ(LogHistogram::bucket_index(std::uint64_t{INT64_MAX}), 63);
  REALM_CHECK_EQ(LogHistogram::bucket_index(UINT64_MAX), 64);

  REALM_CHECK_EQ(LogHistogram::bucket_upper(0), std::uint64_t{0});
  REALM_CHECK_EQ(LogHistogram::bucket_upper(1), std::uint64_t{1});
  REALM_CHECK_EQ(LogHistogram::bucket_upper(2), std::uint64_t{3});
  REALM_CHECK_EQ(LogHistogram::bucket_upper(63), std::uint64_t{INT64_MAX});
  REALM_CHECK_EQ(LogHistogram::bucket_upper(64), UINT64_MAX);

  // Every bucket's bounds agree with bucket_index on both edges.
  for (int i = 1; i < LogHistogram::kBuckets; ++i) {
    const std::uint64_t lo = std::uint64_t{1} << (i - 1);
    REALM_CHECK_EQ(LogHistogram::bucket_index(lo), i);
    REALM_CHECK_EQ(LogHistogram::bucket_index(LogHistogram::bucket_upper(i)), i);
  }

  LogHistogram h;
  h.observe(0);
  h.observe(1);
  h.observe(UINT64_MAX);
  REALM_CHECK_EQ(h.bucket(0), std::uint64_t{1});
  REALM_CHECK_EQ(h.bucket(1), std::uint64_t{1});
  REALM_CHECK_EQ(h.bucket(64), std::uint64_t{1});
  REALM_CHECK_EQ(h.count(), std::uint64_t{3});
}

REALM_TEST(histogram_and_counter_concurrent_increments_exact) {
  // Relaxed atomics forgo ordering, not atomicity: 8 threads' increments must
  // all land. Runs under the TSan CI leg, which also vets the data-race-free
  // claim of the hot-path contract.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  Counter c;
  LogHistogram h;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c.inc();
        h.observe(static_cast<std::uint64_t>(t));
      }
    });
  }
  for (auto& th : threads) th.join();
  REALM_CHECK_EQ(c.value(), std::uint64_t{kThreads * kPerThread});
  REALM_CHECK_EQ(h.count(), std::uint64_t{kThreads * kPerThread});
  std::uint64_t buckets = 0;
  for (int i = 0; i < LogHistogram::kBuckets; ++i) buckets += h.bucket(i);
  REALM_CHECK_EQ(buckets, std::uint64_t{kThreads * kPerThread});
}

// ---------------------------------------------------------------------------
// MetricsRegistry

REALM_TEST(prometheus_exposition_golden) {
  MetricsRegistry reg;
  Counter& ok = reg.counter("test_requests_total", "Requests by state.", "state=\"ok\"");
  Counter& bad = reg.counter("test_requests_total", "Requests by state.", "state=\"bad\"");
  Gauge& depth = reg.gauge("test_depth", "Queue depth.");
  LogHistogram& lat = reg.histogram("test_latency_us", "Latency.");
  ok.inc(3);
  bad.inc();
  depth.set(5);
  lat.observe(0);
  lat.observe(1);
  lat.observe(5);

  // Byte-exact: families sorted by name, series by label body, cumulative
  // buckets with trailing empties elided before +Inf.
  const std::string want =
      "# HELP test_depth Queue depth.\n"
      "# TYPE test_depth gauge\n"
      "test_depth 5\n"
      "# HELP test_latency_us Latency.\n"
      "# TYPE test_latency_us histogram\n"
      "test_latency_us_bucket{le=\"0\"} 1\n"
      "test_latency_us_bucket{le=\"1\"} 2\n"
      "test_latency_us_bucket{le=\"3\"} 2\n"
      "test_latency_us_bucket{le=\"7\"} 3\n"
      "test_latency_us_bucket{le=\"+Inf\"} 3\n"
      "test_latency_us_sum 6\n"
      "test_latency_us_count 3\n"
      "# HELP test_requests_total Requests by state.\n"
      "# TYPE test_requests_total counter\n"
      "test_requests_total{state=\"bad\"} 1\n"
      "test_requests_total{state=\"ok\"} 3\n";
  REALM_CHECK(reg.expose() == want);

  // An idle histogram exposes as just +Inf/sum/count — no 65-line spray.
  MetricsRegistry idle;
  idle.histogram("idle_us", "Idle.");
  const std::string want_idle =
      "# HELP idle_us Idle.\n"
      "# TYPE idle_us histogram\n"
      "idle_us_bucket{le=\"+Inf\"} 0\n"
      "idle_us_sum 0\n"
      "idle_us_count 0\n";
  REALM_CHECK(idle.expose() == want_idle);
}

REALM_TEST(registry_get_or_create_and_type_clash) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x_total", "X.");
  Counter& b = reg.counter("x_total", "ignored on re-registration");
  REALM_CHECK(&a == &b);
  // Same name, different label body: a distinct series.
  Counter& c = reg.counter("x_total", "X.", "k=\"v\"");
  REALM_CHECK(&a != &c);
  // Same name as a different metric type is a wiring bug, not a new series.
  REALM_CHECK_THROWS(reg.gauge("x_total", "X."), std::logic_error);
  REALM_CHECK_THROWS(reg.histogram("x_total", "X."), std::logic_error);
}

REALM_TEST(registry_reset_zeroes_and_never_tears_against_expose) {
  MetricsRegistry reg;
  Counter& a = reg.counter("pair_a_total", "A.");
  Counter& b = reg.counter("pair_b_total", "B.");
  LogHistogram& h = reg.histogram("pair_us", "H.");
  a.inc(7);
  b.inc(7);
  h.observe(100);

  // expose() and reset() serialize on the registry mutex: a scraper must see
  // the two counters equal (both pre-reset 7s or both post-reset 0s), never a
  // mixture. The scraper hammers while the main thread resets mid-stream.
  const auto value_of = [](const std::string& text, const std::string& series) {
    const auto pos = text.find("\n" + series + " ");
    REALM_CHECK(pos != std::string::npos);
    return std::stoull(text.substr(pos + series.size() + 2));
  };
  std::thread scraper([&] {
    for (int i = 0; i < 200; ++i) {
      const std::string text = reg.expose();
      REALM_CHECK_EQ(value_of(text, "pair_a_total"), value_of(text, "pair_b_total"));
    }
  });
  reg.reset();
  scraper.join();

  REALM_CHECK_EQ(a.value(), std::uint64_t{0});
  REALM_CHECK_EQ(b.value(), std::uint64_t{0});
  REALM_CHECK_EQ(h.count(), std::uint64_t{0});
  REALM_CHECK_EQ(h.sum(), std::uint64_t{0});
  REALM_CHECK_EQ(h.bucket(LogHistogram::bucket_index(100)), std::uint64_t{0});
}

// ---------------------------------------------------------------------------
// Tracer core

REALM_TEST(ring_buffer_wrap_evicts_oldest) {
  ManualClock clock;
  TracerConfig cfg;
  cfg.lanes = 1;
  cfg.capacity = 4;
  cfg.clock = &clock;
  Tracer tracer(cfg);
  for (std::uint64_t i = 0; i < 6; ++i) {
    Event e;
    e.span_id = i;
    e.kind = SpanKind::kGemm;
    tracer.record(1, e);
  }
  REALM_CHECK_EQ(tracer.recorded(1), std::uint64_t{6});
  const std::vector<Event> held = tracer.snapshot(1);
  REALM_CHECK_EQ(held.size(), std::size_t{4});
  // Oldest two (span ids 0, 1) wrapped out; survivors are oldest-first.
  for (std::size_t i = 0; i < held.size(); ++i) {
    REALM_CHECK_EQ(held[i].span_id, std::uint64_t{i + 2});
  }
}

REALM_TEST(runtime_toggle_stops_recording) {
  ManualClock clock;
  TracerConfig cfg;
  cfg.lanes = 1;
  cfg.clock = &clock;
  Tracer tracer(cfg);
  tracer.set_enabled(false);
  Event e;
  e.kind = SpanKind::kHotSwap;
  tracer.record(1, e);
  tracer.record_control(e);
  REALM_CHECK_EQ(tracer.recorded(0), std::uint64_t{0});
  REALM_CHECK_EQ(tracer.recorded(1), std::uint64_t{0});
  tracer.set_enabled(true);
  tracer.record(1, e);
  tracer.record_control(e);
  REALM_CHECK_EQ(tracer.recorded(0), std::uint64_t{1});
  REALM_CHECK_EQ(tracer.recorded(1), std::uint64_t{1});
}

REALM_TEST(span_ids_are_pure_functions_of_stream_tile_kind) {
  // Stable at any worker count: no lane, thread, or time component.
  constexpr std::uint64_t id = span_id(7, 3, SpanKind::kScreen);
  static_assert(id == ((std::uint64_t{8} << 24) | (std::uint64_t{4} << 8) |
                       static_cast<std::uint64_t>(SpanKind::kScreen)));
  // Request-level spans (tile = -1) zero the middle field.
  static_assert((span_id(7, -1, SpanKind::kRequest) >> 8 & 0xffff) == 0);
  static_assert(!is_instant(SpanKind::kDequantize));
  static_assert(is_instant(SpanKind::kInjectedFlips));
}

REALM_TEST(chrome_export_format) {
  ManualClock clock;
  clock.advance(realm::util::Duration(1499));  // now = tick 1500
  TracerConfig cfg;
  cfg.lanes = 1;
  cfg.clock = &clock;
  Tracer tracer(cfg);
  Event span;
  span.span_id = span_id(0, 2, SpanKind::kGemm);
  span.parent = span_id(0, 2, SpanKind::kTile);
  span.t_start_ns = 1500;
  span.t_end_ns = 4500;
  span.tile = 2;
  span.kind = SpanKind::kGemm;
  span.verdict = 0;  // detect::Verdict::kClean
  tracer.record(1, span);
  Event instant;
  instant.span_id = span_id(0, 0, SpanKind::kHotSwap);
  instant.t_start_ns = instant.t_end_ns = 1500;
  instant.tile = 0;
  instant.kind = SpanKind::kHotSwap;
  tracer.record_control(instant);

  const std::string json = tracer.export_chrome_json();
  REALM_CHECK(json.find("\"displayTimeUnit\":\"ns\"") != std::string::npos);
  // Track names for the control lane and the one worker lane.
  REALM_CHECK(json.find("\"name\":\"thread_name\",\"ph\":\"M\"") != std::string::npos);
  REALM_CHECK(json.find("\"name\":\"control\"") != std::string::npos);
  REALM_CHECK(json.find("\"name\":\"worker-1\"") != std::string::npos);
  // The duration span: complete event, µs timestamps (1500 ns = 1.5 µs,
  // 3000 ns = 3 µs), verdict carried symbolically in args.
  REALM_CHECK(json.find("\"name\":\"gemm\",\"cat\":\"realm\",\"ph\":\"X\",\"ts\":1.500,"
                        "\"dur\":3.000") != std::string::npos);
  REALM_CHECK(json.find("\"verdict\":\"clean\"") != std::string::npos);
  // The instant: point phase with thread scope on the control track.
  REALM_CHECK(json.find("\"name\":\"hot_swap\",\"cat\":\"realm\",\"ph\":\"i\",\"s\":\"t\"") !=
              std::string::npos);
}

REALM_TEST(compile_time_removal_contract) {
  // REALM_TRACE=OFF must compile the scoped helpers down to empty types (no
  // members, nothing for the optimizer to keep); ON keeps real state.
  if constexpr (kTraceCompiledIn) {
    REALM_CHECK(sizeof(ScopedSpan) > 1);
    REALM_CHECK(sizeof(ScopedRequestTrace) > 1);
  } else {
    REALM_CHECK_EQ(sizeof(ScopedSpan), std::size_t{1});
    REALM_CHECK_EQ(sizeof(ScopedRequestTrace), std::size_t{1});
  }
}

// ---------------------------------------------------------------------------
// Engine + grid integration

namespace {

/// One traced serving run: fixed weights/traffic, pinned streams, ManualClock
/// timestamps. Returns every recorded event, identity-sorted — at any worker
/// count the multiset must be identical (only the lane an event landed on may
/// differ, and lanes are excluded from the key).
struct EventKey {
  std::uint64_t span_id;
  std::uint64_t parent;
  int kind;
  std::int32_t tile;
  int tenant;
  int verdict;
  auto operator<=>(const EventKey&) const = default;
};

std::vector<EventKey> traced_run(std::size_t workers, std::vector<Event>* worker_lane_events,
                                 MetricsRegistry* metrics = nullptr) {
  Rng rng(0x0b5);
  ManualClock clock;
  TracerConfig tcfg;
  tcfg.lanes = workers;
  tcfg.clock = &clock;
  Tracer tracer(tcfg);

  realm::serve::TileGridConfig gcfg;
  gcfg.tile_cols = 32;
  gcfg.tracer = &tracer;
  gcfg.metrics = metrics;
  const realm::serve::TileGrid grid(random_i8(32, 64, rng), realm::tensor::QuantParams{0.02f},
                                    gcfg);

  realm::serve::ServeConfig scfg;
  scfg.workers = workers;
  scfg.seed = 0xba7c4;
  scfg.clock = &clock;
  scfg.tracer = &tracer;
  scfg.metrics = metrics;

  const realm::tensor::MatI8 a8 = random_i8(4, 32, rng);
  const realm::fault::MagFreqInjector mag(1 << 20, 1);
  std::vector<realm::serve::Ticket> tickets;
  {
    realm::serve::ServeEngine engine(grid, scfg);
    for (std::size_t i = 0; i < 8; ++i) {
      const bool injected = (i % 4 == 3);
      realm::serve::SubmitOptions opt;
      opt.tenant = (i % 2 == 0) ? "even" : "odd";
      opt.stream = i;  // pinned: span ids independent of submission timing
      tickets.push_back(engine.submit(
          realm::serve::Request::borrow(a8, realm::tensor::QuantParams{0.05f},
                                        injected ? &mag : nullptr),
          opt));
    }
    for (auto& t : tickets) {
      const realm::serve::Response rsp = engine.wait(t);
      REALM_CHECK(!rsp.expired);
    }
    // Engine destruction joins the workers — full quiescence for snapshots.
  }

  std::vector<EventKey> keys;
  for (std::size_t lane = 0; lane <= tracer.lanes(); ++lane) {
    for (const Event& e : tracer.snapshot(lane)) {
      keys.push_back({e.span_id, e.parent, static_cast<int>(e.kind), e.tile, e.tenant,
                      e.verdict});
      if (worker_lane_events != nullptr && lane >= 1) worker_lane_events->push_back(e);
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace

REALM_TEST(manualclock_spans_deterministic_across_worker_counts) {
  const std::vector<EventKey> at1 = traced_run(1, nullptr);
  const std::vector<EventKey> at2 = traced_run(2, nullptr);
  const std::vector<EventKey> at8 = traced_run(8, nullptr);
  if constexpr (kTraceCompiledIn) {
    REALM_CHECK(!at1.empty());
    REALM_CHECK(at1 == at2);
    REALM_CHECK(at1 == at8);
  } else {
    // Compiled out: the wired tracer must stay completely silent.
    REALM_CHECK(at1.empty() && at2.empty() && at8.empty());
  }
}

REALM_TEST(span_nesting_parents_and_verdicts) {
  if constexpr (!kTraceCompiledIn) return;
  std::vector<Event> events;
  traced_run(1, &events);
  REALM_CHECK(!events.empty());

  // Stage spans are recorded from inside the detect pipeline with no tile
  // of their own (tile = -1); nesting is expressed through parent ids, so a
  // span is identified by its (span_id, parent) pair.
  const auto has = [&](std::uint64_t id, std::uint64_t parent) {
    for (const Event& e : events) {
      if (e.span_id == id && e.parent == parent) return true;
    }
    return false;
  };
  const auto find = [&](std::uint64_t id, std::uint64_t parent) -> const Event& {
    for (const Event& e : events) {
      if (e.span_id == id && e.parent == parent) return e;
    }
    throw realm::test::Failure{"span not found"};
  };

  // Stream 3 is injected traffic: queued and tile spans hang off the request
  // span; stage spans hang off their tile; the patch span appears and the
  // tile records the patched verdict (detect::Verdict::kPatched == 2).
  const std::uint64_t req = span_id(3, -1, SpanKind::kRequest);
  REALM_CHECK(has(req, 0));
  REALM_CHECK(has(span_id(3, -1, SpanKind::kQueued), req));
  for (std::int32_t tile = 0; tile < 2; ++tile) {
    const std::uint64_t tile_span = span_id(3, tile, SpanKind::kTile);
    REALM_CHECK(has(tile_span, req));
    REALM_CHECK(has(span_id(3, -1, SpanKind::kGemm), tile_span));
    REALM_CHECK(has(span_id(3, -1, SpanKind::kScreen), tile_span));
    REALM_CHECK(has(span_id(3, -1, SpanKind::kPatch), tile_span));
    REALM_CHECK(has(span_id(3, -1, SpanKind::kDequantize), tile_span));
    REALM_CHECK_EQ(static_cast<int>(find(tile_span, req).verdict), 2);
  }
  // Stream 0 is clean: no patch span anywhere under it, clean tile verdicts.
  const std::uint64_t clean_req = span_id(0, -1, SpanKind::kRequest);
  REALM_CHECK_EQ(static_cast<int>(find(span_id(0, 0, SpanKind::kTile), clean_req).verdict), 0);
  for (const Event& e : events) {
    REALM_CHECK(e.span_id != span_id(0, -1, SpanKind::kPatch));
  }
  // Spans close inner-first on a lane: a stage span is recorded before the
  // tile that contains it, the tile before its request.
  const std::uint64_t tile1 = span_id(3, 1, SpanKind::kTile);
  std::vector<int> order;
  for (const Event& e : events) {
    if (e.span_id == span_id(3, -1, SpanKind::kGemm) && e.parent == tile1) order.push_back(1);
    if (e.span_id == tile1) order.push_back(2);
    if (e.span_id == req) order.push_back(3);
  }
  REALM_CHECK(std::is_sorted(order.begin(), order.end()));
  REALM_CHECK_EQ(order.size(), std::size_t{3});
}

REALM_TEST(engine_metrics_and_reset_contract) {
  MetricsRegistry reg;
  traced_run(2, nullptr, &reg);
  // The run completed 8 requests over a 2-tile grid; counters survive engine
  // destruction (the registry owns them).
  const std::string text = reg.expose();
  REALM_CHECK(text.find("realm_serve_requests_total{state=\"completed\"} 8") !=
              std::string::npos);
  REALM_CHECK(text.find("realm_serve_tiles_total{outcome=\"screened\"} 16") !=
              std::string::npos);
  REALM_CHECK(text.find("realm_serve_tiles_total{outcome=\"patched\"} 4") != std::string::npos);
  REALM_CHECK(text.find("realm_serve_request_latency_us_count 8") != std::string::npos);
  REALM_CHECK(text.find("realm_serve_queue_depth 0") != std::string::npos);
}

REALM_TEST(engine_reset_stats_resets_tenant_windows_and_registry) {
  Rng rng(0x0b6);
  MetricsRegistry reg;
  realm::serve::TileGridConfig gcfg;
  gcfg.tile_cols = 32;
  gcfg.metrics = &reg;
  const realm::serve::TileGrid grid(random_i8(32, 32, rng), realm::tensor::QuantParams{0.02f},
                                    gcfg);
  realm::serve::ServeConfig scfg;
  scfg.workers = 2;
  scfg.metrics = &reg;
  realm::serve::ServeEngine engine(grid, scfg);
  const realm::tensor::MatI8 a8 = random_i8(4, 32, rng);
  realm::serve::SubmitOptions opt;
  opt.tenant = "t";
  for (int i = 0; i < 4; ++i) {
    engine.wait(engine.submit(realm::serve::Request::borrow(a8, realm::tensor::QuantParams{0.05f}),
                              opt));
  }
  REALM_CHECK_EQ(engine.stats().completed, std::uint64_t{4});
  REALM_CHECK_EQ(engine.tenant_stats("t").window_count, std::size_t{4});

  engine.reset_stats();

  // All three surfaces zeroed: engine-wide counters + window, the tenant's
  // sliding window (cumulative per-tenant history survives by contract), and
  // the registry.
  REALM_CHECK_EQ(engine.stats().completed, std::uint64_t{0});
  REALM_CHECK_EQ(engine.stats().window_count, std::size_t{0});
  const realm::serve::TenantStats ts = engine.tenant_stats("t");
  REALM_CHECK_EQ(ts.window_count, std::size_t{0});
  REALM_CHECK_EQ(ts.completed, std::uint64_t{4});  // cumulative history stays
  const std::string text = reg.expose();
  REALM_CHECK(text.find("realm_serve_requests_total{state=\"completed\"} 0") !=
              std::string::npos);
  REALM_CHECK(text.find("realm_serve_request_latency_us_count 0") != std::string::npos);
}

REALM_TEST(engine_rejects_undersized_tracer) {
  Rng rng(0x0b7);
  ManualClock clock;
  TracerConfig tcfg;
  tcfg.lanes = 1;
  tcfg.clock = &clock;
  Tracer tracer(tcfg);
  const realm::serve::TileGrid grid(random_i8(32, 32, rng), realm::tensor::QuantParams{0.02f});
  realm::serve::ServeConfig scfg;
  scfg.workers = 2;  // needs 2 worker lanes, tracer has 1
  scfg.tracer = &tracer;
  REALM_CHECK_THROWS(realm::serve::ServeEngine(grid, scfg), std::invalid_argument);
}

REALM_TEST(grid_swap_and_scrub_instants_on_control_lane) {
  Rng rng(0x0b8);
  ManualClock clock;
  TracerConfig tcfg;
  tcfg.lanes = 1;
  tcfg.clock = &clock;
  Tracer tracer(tcfg);
  MetricsRegistry reg;
  realm::serve::TileGridConfig gcfg;
  gcfg.tile_cols = 32;
  gcfg.tracer = &tracer;
  gcfg.metrics = &reg;
  realm::serve::TileGrid grid(random_i8(32, 64, rng), realm::tensor::QuantParams{0.02f}, gcfg);

  const std::size_t swapped =
      grid.swap_weights(random_i8(32, 64, rng), realm::tensor::QuantParams{0.02f});
  REALM_CHECK_EQ(swapped, grid.tile_count());

  const std::string text = reg.expose();
  REALM_CHECK(text.find("realm_grid_swaps_total 2") != std::string::npos);
  REALM_CHECK(text.find("realm_grid_swap_epoch 2") != std::string::npos);

  std::size_t hot_swaps = 0;
  for (const Event& e : tracer.snapshot(0)) {
    if (e.kind == SpanKind::kHotSwap) ++hot_swaps;
  }
  if constexpr (kTraceCompiledIn) {
    REALM_CHECK_EQ(hot_swaps, grid.tile_count());
  } else {
    REALM_CHECK_EQ(hot_swaps, std::size_t{0});
  }
}

REALM_TEST_MAIN()
