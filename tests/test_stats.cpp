#include "util/stats.h"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "realm_test.h"

using namespace realm::util;

REALM_TEST(quantile_contract_edges) {
  // Single sample: every q returns it (including the clamped out-of-range qs).
  const std::vector<double> one{42.0};
  REALM_CHECK_EQ(quantile(one, 0.0), 42.0);
  REALM_CHECK_EQ(quantile(one, 0.5), 42.0);
  REALM_CHECK_EQ(quantile(one, 1.0), 42.0);
  REALM_CHECK_EQ(quantile(one, -3.0), 42.0);
  REALM_CHECK_EQ(quantile(one, 7.0), 42.0);

  // q == 0 / q == 1 are exactly min / max; duplicates tie-break harmlessly.
  const std::vector<double> xs{5.0, 1.0, 5.0, 3.0, 5.0, 2.0};
  REALM_CHECK_EQ(quantile(xs, 0.0), 1.0);
  REALM_CHECK_EQ(quantile(xs, 1.0), 5.0);
  REALM_CHECK_EQ(quantile(xs, 0.5), 5.0);  // nearest rank round(0.5 * 5) = index 3
  REALM_CHECK_EQ(quantile(xs, 0.4), 3.0);  // round(0.4 * 5) = index 2
  const std::vector<double> dup(9, 2.5);
  REALM_CHECK_EQ(quantile(dup, 0.25), 2.5);
  REALM_CHECK_EQ(quantile(dup, 0.99), 2.5);

  // Degenerate inputs throw instead of poisoning percentile tables.
  REALM_CHECK_THROWS(quantile(std::vector<double>{}, 0.5), std::invalid_argument);
  REALM_CHECK_THROWS(quantile(one, std::numeric_limits<double>::quiet_NaN()),
                     std::invalid_argument);
}

REALM_TEST(running_stat_edge_cases) {
  // Empty: all accessors are 0.0, never NaN or an infinity sentinel.
  RunningStat empty;
  REALM_CHECK_EQ(empty.count(), std::size_t{0});
  REALM_CHECK_EQ(empty.mean(), 0.0);
  REALM_CHECK_EQ(empty.variance(), 0.0);
  REALM_CHECK_EQ(empty.stddev(), 0.0);
  REALM_CHECK_EQ(empty.min(), 0.0);
  REALM_CHECK_EQ(empty.max(), 0.0);

  // Single sample: variance 0 (not NaN from n-1 == 0), min == max == mean.
  RunningStat one;
  one.add(-7.5);
  REALM_CHECK_EQ(one.count(), std::size_t{1});
  REALM_CHECK_EQ(one.mean(), -7.5);
  REALM_CHECK_EQ(one.variance(), 0.0);
  REALM_CHECK_EQ(one.min(), -7.5);
  REALM_CHECK_EQ(one.max(), -7.5);

  // Duplicates: exactly zero variance (the Welford delta is 0 each step).
  RunningStat dup;
  for (int i = 0; i < 1000; ++i) dup.add(3.25);
  REALM_CHECK_EQ(dup.mean(), 3.25);
  REALM_CHECK_EQ(dup.variance(), 0.0);
}

REALM_TEST(running_stat_merge_identities) {
  RunningStat a;
  for (const double x : {1.0, 2.0, 3.0, 10.0}) a.add(x);

  // Merging an empty side is the identity in either direction.
  RunningStat empty;
  RunningStat a_copy = a;
  a_copy.merge(empty);
  REALM_CHECK_EQ(a_copy.count(), a.count());
  REALM_CHECK_EQ(a_copy.mean(), a.mean());
  REALM_CHECK_EQ(a_copy.variance(), a.variance());
  RunningStat from_empty;
  from_empty.merge(a);
  REALM_CHECK_EQ(from_empty.count(), a.count());
  REALM_CHECK_EQ(from_empty.mean(), a.mean());
  REALM_CHECK_EQ(from_empty.max(), 10.0);

  // Merged halves match the single-pass stream (Chan's parallel update).
  RunningStat lo, hi, all;
  const std::vector<double> xs{0.5, -2.0, 4.0, 4.0, 9.5, -1.25, 3.0, 8.0};
  for (std::size_t i = 0; i < xs.size(); ++i) {
    (i < xs.size() / 2 ? lo : hi).add(xs[i]);
    all.add(xs[i]);
  }
  lo.merge(hi);
  REALM_CHECK_EQ(lo.count(), all.count());
  REALM_CHECK(std::abs(lo.mean() - all.mean()) < 1e-12);
  REALM_CHECK(std::abs(lo.variance() - all.variance()) < 1e-12);
  REALM_CHECK_EQ(lo.min(), all.min());
  REALM_CHECK_EQ(lo.max(), all.max());
}

REALM_TEST(sliding_window_quantiles_track_recent_samples) {
  // Under capacity: quantiles over everything added so far.
  SlidingWindow w(4);
  REALM_CHECK_EQ(w.capacity(), std::size_t{4});
  REALM_CHECK_EQ(w.count(), std::size_t{0});
  w.add(10.0);
  w.add(20.0);
  REALM_CHECK_EQ(w.count(), std::size_t{2});
  REALM_CHECK_EQ(w.quantile(0.0), 10.0);
  REALM_CHECK_EQ(w.quantile(1.0), 20.0);

  // Past capacity the oldest samples fall out: after pushing 30..60 into the
  // 4-slot window, the 10/20 era is gone and the quantiles see only 30..60.
  for (const double x : {30.0, 40.0, 50.0, 60.0}) w.add(x);
  REALM_CHECK_EQ(w.count(), std::size_t{4});
  REALM_CHECK_EQ(w.total(), std::size_t{6});  // lifetime adds keep counting
  REALM_CHECK_EQ(w.quantile(0.0), 30.0);      // 10 and 20 evicted
  REALM_CHECK_EQ(w.quantile(1.0), 60.0);

  // A fresh spike dominates p-high immediately — the window is why serving
  // dashboards see regressions instead of history-diluted averages.
  w.add(500.0);
  REALM_CHECK_EQ(w.quantile(1.0), 500.0);
  REALM_CHECK_EQ(w.quantile(0.0), 40.0);  // 30 just slid out

  // Degenerate uses fail loudly.
  REALM_CHECK_THROWS(SlidingWindow(0), std::invalid_argument);
  const SlidingWindow empty(3);
  REALM_CHECK_THROWS(empty.quantile(0.5), std::invalid_argument);
}

REALM_TEST_MAIN()
