#include "sa/roc.h"

#include <sstream>
#include <stdexcept>
#include <string>

#include "realm_test.h"
#include "util/threadpool.h"

using namespace realm;
using realm::sa::SweepConfig;
using realm::sa::SweepResult;

namespace {

/// Tiny grid that still spans the interesting physics: a low bit every width
/// catches, the 2^16 aliasing bit, the high-bit regime, and a BER-0 column
/// (ground-truth clean — any flag there is a false positive).
SweepConfig tiny_config() {
  SweepConfig cfg;
  cfg.shapes = {{8, 32, 48}};
  cfg.widths = {16, 32, 64};
  cfg.overflow = sa::Overflow::kWrap;
  cfg.bers = {0.0, 0.02};
  cfg.bit_positions = {4, 16, 30};
  cfg.trials = 5;
  cfg.seed = 0xabc1;
  return cfg;
}

/// Restores the serial default even when a REALM_CHECK throws mid-case.
struct SerialGuard {
  ~SerialGuard() { util::set_global_threads(1); }
};

}  // namespace

REALM_TEST(sweep_deterministic_across_thread_counts) {
  // Per-cell forked RNG streams: the sweep is a pure function of its config,
  // bit-identical however the cells shard over the pool.
  SerialGuard guard;
  const SweepConfig cfg = tiny_config();
  util::set_global_threads(1);
  const SweepResult serial = sa::run_sweep(cfg);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    util::set_global_threads(threads);
    const SweepResult threaded = sa::run_sweep(cfg);
    REALM_CHECK_EQ(threaded.cells.size(), serial.cells.size());
    for (std::size_t c = 0; c < serial.cells.size(); ++c) {
      REALM_CHECK(threaded.cells[c] == serial.cells[c]);
    }
  }
}

REALM_TEST(coverage_monotone_in_width_with_consistent_counts) {
  const SweepResult r = sa::run_sweep(tiny_config());
  REALM_CHECK_EQ(r.cells.size(), std::size_t{6});  // 1 shape x 3 bits x 2 BERs

  for (const sa::CellResult& cell : r.cells) {
    // Tally identities: every faulty trial is either detected or missed, and
    // false positives can only come from clean trials.
    REALM_CHECK_EQ(cell.reference.detected + cell.reference.missed, cell.faulty_trials);
    REALM_CHECK(cell.reference.false_pos <= cell.trials - cell.faulty_trials);
    for (const sa::WidthTally& t : cell.widths) {
      REALM_CHECK_EQ(t.detected + t.missed, cell.faulty_trials);
      REALM_CHECK(t.false_pos <= cell.trials - cell.faulty_trials);
    }
    // Wrap detections nest: per cell, width 16 <= 32 <= 64 == reference.
    REALM_CHECK(cell.widths[0].detected <= cell.widths[1].detected);
    REALM_CHECK(cell.widths[1].detected <= cell.widths[2].detected);
    REALM_CHECK(cell.widths[2] == cell.reference);  // wrap-64 ≡ the int64 screen
    // Exact checksums: zero false positives at every width, reference too.
    REALM_CHECK_EQ(cell.reference.false_pos, std::size_t{0});
    for (const sa::WidthTally& t : cell.widths) REALM_CHECK_EQ(t.false_pos, std::size_t{0});
    // The BER-0 column is ground-truth clean everywhere.
    if (cell.ber == 0.0) REALM_CHECK_EQ(cell.faulty_trials, std::size_t{0});
  }

  const sa::CoverageSummary sum = sa::summarize(r);
  REALM_CHECK_EQ(sum.trials, std::size_t{30});
  REALM_CHECK(sum.faulty > 0);
  REALM_CHECK(sum.widths[0].detected <= sum.widths[1].detected);
  REALM_CHECK(sum.widths[1].detected <= sum.widths[2].detected);
  REALM_CHECK_EQ(sum.widths[2].detected, sum.reference.detected);
  REALM_CHECK_EQ(sum.reference.detected, sum.faulty);  // int64 catches everything here

  // Single flips of bit >= 16 alias to 0 mod 2^16: the width-16 datapath must
  // show real coverage loss on the bit-16 and bit-30 rows while width 32
  // stays perfect — the monotone curve is strict, not vacuous.
  REALM_CHECK(sum.widths[0].missed > 0);
  REALM_CHECK_EQ(sum.widths[1].missed, std::size_t{0});
}

REALM_TEST(csv_and_json_emission) {
  const SweepResult r = sa::run_sweep(tiny_config());

  std::ostringstream csv;
  sa::write_csv(csv, r);
  const std::string csv_text = csv.str();
  std::size_t lines = 0;
  for (const char ch : csv_text) lines += ch == '\n' ? 1 : 0;
  // Header + one row per cell per datapath (reference + 3 widths).
  REALM_CHECK_EQ(lines, 1 + r.cells.size() * 4);
  REALM_CHECK(csv_text.starts_with("shape,m,k,n,bit,ber,width,model,"));
  REALM_CHECK(csv_text.find(",reference,") != std::string::npos);
  REALM_CHECK(csv_text.find(",wrap,") != std::string::npos);

  std::ostringstream json;
  sa::write_json(json, r);
  const std::string json_text = json.str();
  REALM_CHECK(json_text.find("\"schema_version\": 1") != std::string::npos);
  REALM_CHECK(json_text.find("\"overflow\": \"wrap\"") != std::string::npos);
  REALM_CHECK(json_text.find("\"widths\": [16, 32, 64]") != std::string::npos);
  REALM_CHECK(json_text.find("\"detection_rate\"") != std::string::npos);

  // The critical-region table has one row per bit position and one column
  // per BER, for swept widths and the reference alike.
  const util::TablePrinter table = sa::critical_region_table(r, 0, 16);
  REALM_CHECK_EQ(table.row_count(), r.cfg.bit_positions.size());
  const util::TablePrinter ref_table = sa::critical_region_table(r, 0, -1);
  REALM_CHECK_EQ(ref_table.row_count(), r.cfg.bit_positions.size());
  REALM_CHECK_THROWS(sa::critical_region_table(r, 7, 16), std::invalid_argument);
  REALM_CHECK_THROWS(sa::critical_region_table(r, 0, 17), std::invalid_argument);
}

REALM_TEST(degenerate_configs_are_rejected) {
  SweepConfig cfg = tiny_config();
  cfg.trials = 0;
  REALM_CHECK_THROWS(sa::run_sweep(cfg), std::invalid_argument);
  cfg = tiny_config();
  cfg.widths.clear();
  REALM_CHECK_THROWS(sa::run_sweep(cfg), std::invalid_argument);
  cfg = tiny_config();
  cfg.bers = {1.5};
  REALM_CHECK_THROWS(sa::run_sweep(cfg), std::invalid_argument);
  cfg = tiny_config();
  cfg.bit_positions = {32};
  REALM_CHECK_THROWS(sa::run_sweep(cfg), std::invalid_argument);
  cfg = tiny_config();
  cfg.shapes = {{8, 0, 8}};
  REALM_CHECK_THROWS(sa::run_sweep(cfg), std::invalid_argument);
  cfg = tiny_config();
  cfg.widths = {0};
  REALM_CHECK_THROWS(sa::run_sweep(cfg), std::invalid_argument);
}

REALM_TEST_MAIN()
