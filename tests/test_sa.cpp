#include "sa/datapath.h"

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "fault/fault.h"
#include "realm_test.h"
#include "tensor/tensor.h"
#include "util/rng.h"

using namespace realm;
using realm::sa::DatapathConfig;
using realm::sa::Overflow;
using realm::sa::Reg;
using realm::sa::SaProtectedGemm;
using realm::util::Rng;

namespace {

tensor::MatI8 random_i8(std::size_t rows, std::size_t cols, Rng& rng, int lo = -127,
                        int hi = 127) {
  tensor::MatI8 m(rows, cols);
  for (auto& x : m.flat()) x = static_cast<std::int8_t>(rng.uniform_int(lo, hi));
  return m;
}

SaProtectedGemm make_model(std::vector<DatapathConfig> datapaths, std::size_t k, std::size_t n,
                           Rng& rng) {
  SaProtectedGemm model(std::move(datapaths));
  model.set_weights_quantized(random_i8(k, n, rng), tensor::QuantParams{0.02f});
  return model;
}

}  // namespace

REALM_TEST(wrap_and_saturate_register_semantics) {
  // Wrap: carries drop; two half-range adds alias back to zero.
  Reg wrap(16, Overflow::kWrap);
  wrap.add(0x8000);
  REALM_CHECK_EQ(wrap.value(), std::int64_t{-32768});
  wrap.add(0x8000);
  REALM_CHECK_EQ(wrap.value(), std::int64_t{0});

  // Saturate: every add clamps at the rails, and the rails are sticky only
  // until an opposite-sign add pulls the register back off them.
  Reg sat(16, Overflow::kSaturate);
  sat.add(40000);
  REALM_CHECK_EQ(sat.value(), std::int64_t{32767});
  sat.add(-100000);
  REALM_CHECK_EQ(sat.value(), std::int64_t{-32768});
  sat.add(5);
  REALM_CHECK_EQ(sat.value(), std::int64_t{-32763});

  // A 64-bit wrap register is plain two's-complement int64.
  Reg full(64, Overflow::kWrap);
  full.add(INT64_MAX);
  full.add(1);
  REALM_CHECK_EQ(full.value(), INT64_MIN);

  REALM_CHECK_THROWS(Reg(0, Overflow::kWrap), std::invalid_argument);
  REALM_CHECK_THROWS(Reg(65, Overflow::kWrap), std::invalid_argument);
}

REALM_TEST(width64_screen_matches_int64_reference) {
  // At 64 bits neither wrap nor saturate can truncate anything an int32
  // accumulator tensor produces, so both reduced-width screens must agree
  // with the int64 reference verdict run for run — including the MSD value.
  Rng rng(0x5a01);
  const SaProtectedGemm model = make_model({{64, Overflow::kWrap, 0, true},
                                            {64, Overflow::kSaturate, 0, true}},
                                           48, 64, rng);
  const fault::RandomBitFlipInjector inj(2e-4, 0, 31);
  std::size_t faulty_runs = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const tensor::MatI8 a8 = random_i8(8, 48, rng);
    const sa::SaRunResult r = model.run(a8, inj, rng);
    faulty_runs += r.truth_faulty ? 1 : 0;
    for (const sa::ScreenResult& s : r.by_width) {
      REALM_CHECK_EQ(s.flagged, r.reference.faulty());
      REALM_CHECK_EQ(s.msd, r.reference.msd_signed);
    }
    REALM_CHECK_EQ(r.flips.empty(), r.reference.injection.flipped_bits == 0);
  }
  REALM_CHECK(faulty_runs > 0);  // the sweep exercised real faults
}

REALM_TEST(aliasing_fault_missed_at_width16_caught_at_64) {
  // THE reduced-width failure mode, pinned: a single +2^16 upset is ≡ 0
  // (mod 2^16) in its column register, its row register, and the MSD, so a
  // 16-bit wrap datapath screens it as exactly clean — while the 64-bit
  // datapath and the int64 reference both flag it.
  Rng rng(0x5a02);
  const SaProtectedGemm model = make_model({{16, Overflow::kWrap, 0, true},
                                            {64, Overflow::kWrap, 0, true}},
                                           32, 48, rng);
  const fault::MagFreqInjector aliasing(std::int64_t{1} << 16, 1);
  const tensor::MatI8 a8 = random_i8(8, 32, rng, -16, 16);  // keep acc far from rails
  const sa::SaRunResult r = model.run(a8, aliasing, rng);

  REALM_CHECK(r.truth_faulty);
  REALM_CHECK_EQ(r.flips.size(), std::size_t{1});
  REALM_CHECK_EQ(static_cast<std::int64_t>(r.flips[0].after) - r.flips[0].before,
                 std::int64_t{1} << 16);  // injection did not clamp

  REALM_CHECK(r.reference.faulty());           // int64 reference catches it
  REALM_CHECK(!r.by_width[0].flagged);         // 16-bit wrap aliases to clean
  REALM_CHECK_EQ(r.by_width[0].msd, std::int64_t{0});
  REALM_CHECK_EQ(r.by_width[0].nonzero_cols, std::size_t{0});
  REALM_CHECK_EQ(r.by_width[0].nonzero_rows, std::size_t{0});
  REALM_CHECK(r.by_width[1].flagged);          // 64-bit sees the raw 2^16
  REALM_CHECK_EQ(r.by_width[1].msd, std::int64_t{1} << 16);
  REALM_CHECK(r.coverage_loss(0));
  REALM_CHECK(!r.coverage_loss(1));

  // The same upset shifted off the alias grid IS caught at width 16.
  const fault::MagFreqInjector offgrid((std::int64_t{1} << 16) + 3, 1);
  const sa::SaRunResult r2 = model.run(a8, offgrid, rng);
  REALM_CHECK(r2.truth_faulty);
  REALM_CHECK(r2.by_width[0].flagged);
}

REALM_TEST(saturating_rails_alias_when_both_sides_pin) {
  // Saturate's failure mode: all-maximal operands drive every column/row
  // register to the +32767 rail on BOTH the predicted and observed sides, so
  // their difference reads zero and the fault hides. The same-width wrap
  // register keeps the low bits and catches it.
  Rng rng(0x5a03);
  SaProtectedGemm model({{16, Overflow::kSaturate, 0, true},
                         {16, Overflow::kWrap, 0, true},
                         {64, Overflow::kWrap, 0, true}});
  const std::size_t k = 8, n = 8, m = 16;
  model.set_weights_quantized(tensor::MatI8(k, n, 127), tensor::QuantParams{0.02f});
  const tensor::MatI8 a8(m, k, 127);  // every acc element is 127*127*8 = 129032

  const fault::MagFreqInjector inj(12345, 1);
  const sa::SaRunResult r = model.run(a8, inj, rng);
  REALM_CHECK(r.truth_faulty);
  REALM_CHECK(r.reference.faulty());
  REALM_CHECK(!r.by_width[0].flagged);  // saturate: both sides pinned at the rail
  REALM_CHECK_EQ(r.by_width[0].msd, std::int64_t{0});
  REALM_CHECK(r.by_width[1].flagged);   // wrap at the same width still sees 12345
  REALM_CHECK(r.by_width[2].flagged);
}

REALM_TEST(run_scratch_recycling_and_misuse) {
  Rng rng(0x5a04);
  SaProtectedGemm unset({{16, Overflow::kWrap, 0, true}});
  const tensor::MatI8 a8 = random_i8(4, 24, rng);
  REALM_CHECK_THROWS(unset.run(a8, fault::NullInjector{}, rng), std::logic_error);
  REALM_CHECK_THROWS(SaProtectedGemm({{0, Overflow::kWrap, 0, true}}), std::invalid_argument);
  REALM_CHECK_THROWS(SaProtectedGemm({{72, Overflow::kWrap, 0, true}}), std::invalid_argument);

  const SaProtectedGemm model = make_model({{16, Overflow::kWrap, 0, true}}, 24, 32, rng);
  REALM_CHECK_THROWS(model.run(random_i8(4, 23, rng), fault::NullInjector{}, rng),
                     std::invalid_argument);
  REALM_CHECK_THROWS(
      sa::screen(tensor::MatI32(2, 3), tensor::MatI32(3, 2), {16, Overflow::kWrap, 0, true}),
      std::invalid_argument);

  // One scratch across runs and injector kinds: results identical to fresh
  // allocations (the recycled buffers are fully overwritten), and a golden
  // run is clean at every width with no flips recorded.
  sa::SaRunResult recycled;
  sa::SaRunScratch scratch;
  const fault::MagFreqInjector inj(999, 2);
  Rng r1(5), r2(5);
  model.run_into(a8, inj, r1, recycled, scratch);
  const sa::SaRunResult fresh = model.run(a8, inj, r2);
  REALM_CHECK_EQ(recycled.truth_faulty, fresh.truth_faulty);
  REALM_CHECK_EQ(recycled.flips.size(), fresh.flips.size());
  REALM_CHECK_EQ(recycled.by_width[0].flagged, fresh.by_width[0].flagged);
  REALM_CHECK_EQ(recycled.by_width[0].msd, fresh.by_width[0].msd);

  model.run_into(a8, fault::NullInjector{}, r1, recycled, scratch);
  REALM_CHECK(!recycled.truth_faulty);
  REALM_CHECK(recycled.flips.empty());
  REALM_CHECK(!recycled.reference.faulty());
  REALM_CHECK(!recycled.by_width[0].flagged);
}

REALM_TEST_MAIN()
