#include "tensor/tensor.h"

#include <cstddef>
#include <limits>
#include <stdexcept>

#include "realm_test.h"

using namespace realm::tensor;

REALM_TEST(mat_overflow_throws_before_alloc) {
  // rows * cols wraps std::size_t; the constructor must reject this before
  // sizing the allocation (the old check ran after, on the wrapped product).
  constexpr std::size_t big = std::numeric_limits<std::size_t>::max() / 2;
  REALM_CHECK_THROWS(MatI8(big, 3), std::invalid_argument);
  REALM_CHECK_THROWS(MatI32(3, big), std::invalid_argument);
  // Degenerate-but-valid shapes still construct.
  const MatI8 empty(0, 1000);
  REALM_CHECK_EQ(empty.size(), std::size_t{0});
}

REALM_TEST(mat_at_bounds_checked) {
  MatI32 m(2, 3, 7);
  REALM_CHECK_EQ(m.at(1, 2), 7);
  REALM_CHECK_THROWS(m.at(2, 0), std::out_of_range);
  REALM_CHECK_THROWS(m.at(0, 3), std::out_of_range);
}

REALM_TEST(transpose_roundtrip) {
  MatI8 m(3, 2);
  std::int8_t v = 0;
  for (auto& x : m.flat()) x = v++;
  const MatI8 t = transpose(m);
  REALM_CHECK_EQ(t.rows(), std::size_t{2});
  REALM_CHECK_EQ(t.cols(), std::size_t{3});
  REALM_CHECK(transpose(t) == m);
  REALM_CHECK_EQ(t(1, 2), m(2, 1));
}

REALM_TEST_MAIN()
