#include "util/threadpool.h"

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "realm_test.h"
#include "tensor/gemm.h"
#include "tensor/tensor.h"
#include "util/rng.h"

using realm::util::ThreadPool;

namespace {

/// Restores the global pool to 1 thread so later cases (and other test
/// binaries' assumptions) see the serial default.
struct SerialGuard {
  ~SerialGuard() { realm::util::set_global_threads(1); }
};

}  // namespace

REALM_TEST(parallel_for_covers_every_index_exactly_once) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{5}}) {
    ThreadPool pool(threads);
    REALM_CHECK_EQ(pool.size(), threads);
    std::vector<std::atomic<int>> hits(1237);
    pool.parallel_for(hits.size(), 3, [&](std::size_t begin, std::size_t end) {
      REALM_CHECK(begin < end);
      for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    for (const auto& h : hits) REALM_CHECK_EQ(h.load(), 1);
    // Empty and sub-grain totals degenerate gracefully.
    pool.parallel_for(0, 8, [&](std::size_t, std::size_t) { REALM_CHECK(false); });
    std::atomic<int> calls{0};
    pool.parallel_for(2, 100, [&](std::size_t begin, std::size_t end) {
      REALM_CHECK_EQ(begin, std::size_t{0});
      REALM_CHECK_EQ(end, std::size_t{2});
      calls.fetch_add(1);
    });
    REALM_CHECK_EQ(calls.load(), 1);
  }
}

REALM_TEST(gemm_identical_at_1_2_8_threads) {
  // The determinism contract: row shards are disjoint and each output element
  // is reduced by exactly one thread, so every thread count must produce the
  // same bits — a checksum mismatch can only ever mean a fault.
  realm::util::Rng rng(77);
  SerialGuard guard;
  realm::tensor::MatI8 a(67, 129), b(129, 55);
  for (auto& x : a.flat()) x = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  for (auto& x : b.flat()) x = static_cast<std::int8_t>(rng.uniform_int(-128, 127));

  realm::util::set_global_threads(1);
  const realm::tensor::MatI32 serial = realm::tensor::gemm_i8(a, b);
  const realm::tensor::MatI32 serial_bt =
      realm::tensor::gemm_i8_bt(a, realm::tensor::transpose(b));
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    realm::util::set_global_threads(threads);
    REALM_CHECK_EQ(realm::util::global_threads(), threads);
    REALM_CHECK(realm::tensor::gemm_i8(a, b) == serial);
    REALM_CHECK(realm::tensor::gemm_i8_bt(a, realm::tensor::transpose(b)) == serial_bt);
  }
}

REALM_TEST(exceptions_propagate_to_the_caller) {
  ThreadPool pool(4);
  bool threw = false;
  try {
    pool.parallel_for(1000, 1, [&](std::size_t begin, std::size_t) {
      if (begin >= 500) throw std::runtime_error("chunk failed");
    });
  } catch (const std::runtime_error&) {
    threw = true;
  }
  REALM_CHECK(threw);
  // The pool survives an errored job and runs the next one normally.
  std::atomic<std::size_t> covered{0};
  pool.parallel_for(100, 1,
                    [&](std::size_t begin, std::size_t end) { covered.fetch_add(end - begin); });
  REALM_CHECK_EQ(covered.load(), std::size_t{100});
}

REALM_TEST(nested_parallel_for_runs_inline) {
  ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  pool.parallel_for(8, 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      // A nested call must run inline on the current thread instead of
      // deadlocking on the single job slot.
      pool.parallel_for(10, 1,
                        [&](std::size_t b2, std::size_t e2) { total.fetch_add(e2 - b2); });
    }
  });
  REALM_CHECK_EQ(total.load(), std::size_t{80});
}

REALM_TEST_MAIN()
