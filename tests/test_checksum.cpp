#include "tensor/checksum.h"

#include <cstdint>
#include <vector>

#include "realm_test.h"
#include "tensor/gemm.h"
#include "tensor/tensor.h"
#include "util/rng.h"

using namespace realm::tensor;

namespace {

MatI8 random_i8(std::size_t rows, std::size_t cols, realm::util::Rng& rng) {
  MatI8 m(rows, cols);
  for (auto& x : m.flat()) x = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
  return m;
}

}  // namespace

REALM_TEST(column_checksum_linearity) {
  // eᵀ(A·B) == (eᵀA)·B on fault-free outputs, for several shapes.
  realm::util::Rng rng(11);
  const std::size_t shapes[][3] = {{4, 9, 6}, {32, 64, 16}, {1, 128, 5}};
  for (const auto& s : shapes) {
    const MatI8 a = random_i8(s[0], s[1], rng);
    const MatI8 b = random_i8(s[1], s[2], rng);
    const MatI32 c = gemm_i8(a, b);
    REALM_CHECK(col_sums(c) == predict_col_checksum(a, b));
    const ColumnDeviation dev = column_deviation(a, b, c);
    REALM_CHECK(!dev.any_nonzero());
    REALM_CHECK_EQ(dev.msd_signed, std::int64_t{0});
    REALM_CHECK_EQ(dev.l1, std::uint64_t{0});
  }
}

REALM_TEST(row_checksum_linearity) {
  realm::util::Rng rng(12);
  const MatI8 a = random_i8(13, 40, rng);
  const MatI8 b = random_i8(40, 21, rng);
  const MatI32 c = gemm_i8(a, b);
  REALM_CHECK(row_sums(c) == predict_row_checksum(a, b));
  // The basis-taking overload (weight-resident B·e) agrees with the direct one.
  REALM_CHECK(predict_row_checksum(a, row_sums(b)) == predict_row_checksum(a, b));
  REALM_CHECK_THROWS(predict_row_checksum(a, std::vector<std::int64_t>(3, 0)),
                     std::invalid_argument);
  for (const auto d : row_deviation(a, b, c)) REALM_CHECK_EQ(d, std::int64_t{0});
}

REALM_TEST(deviation_reflects_injected_error) {
  // An additive error e at (r, j) must surface as diff[j] == e and MSD == e.
  realm::util::Rng rng(13);
  const MatI8 a = random_i8(8, 16, rng);
  const MatI8 b = random_i8(16, 8, rng);
  MatI32 c = gemm_i8(a, b);
  c(3, 5) += 1000;
  c(6, 2) -= 250;
  const ColumnDeviation dev = column_deviation(a, b, c);
  REALM_CHECK_EQ(dev.diff[5], std::int64_t{1000});
  REALM_CHECK_EQ(dev.diff[2], std::int64_t{-250});
  REALM_CHECK_EQ(dev.msd_signed, std::int64_t{750});
  REALM_CHECK_EQ(dev.msd_abs, std::uint64_t{750});
  REALM_CHECK_EQ(dev.l1, std::uint64_t{1250});
}

REALM_TEST(deviation_saturates_instead_of_wrapping) {
  // Adversarial predicted checksums drive the signed accumulator past the
  // int64 range; raw += would wrap a huge deviation back to a small value.
  const MatI32 c(1, 2, 0);
  const std::vector<std::int64_t> predicted = {INT64_MIN, INT64_MIN};
  const ColumnDeviation dev = column_deviation_from_predicted(predicted, c);
  REALM_CHECK_EQ(dev.diff[0], INT64_MAX);  // 0 - INT64_MIN saturates
  REALM_CHECK_EQ(dev.msd_signed, INT64_MAX);
  REALM_CHECK_EQ(dev.msd_abs, static_cast<std::uint64_t>(INT64_MAX));
  REALM_CHECK(dev.any_nonzero());
  REALM_CHECK_THROWS(column_deviation_from_predicted({0, 0, 0}, c), std::invalid_argument);
}

REALM_TEST_MAIN()
