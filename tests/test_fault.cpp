#include "fault/fault.h"

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "fault/memory.h"
#include "realm_test.h"
#include "util/rng.h"

using namespace realm::fault;
using realm::util::Rng;

REALM_TEST(injectors_deterministic_under_fixed_seed) {
  const RandomBitFlipInjector inj(1e-3, 16, 31);
  std::vector<std::int32_t> a(4096, 0), b(4096, 0);
  Rng r1(99), r2(99);
  const InjectionReport ra = inj.inject(a, r1);
  const InjectionReport rb = inj.inject(b, r2);
  REALM_CHECK(a == b);
  REALM_CHECK_EQ(ra.flipped_bits, rb.flipped_bits);
  REALM_CHECK(ra.flipped_bits > 0);  // BER 1e-3 over 64k bits: ~65 expected
  // A different seed produces a different pattern.
  std::vector<std::int32_t> c(4096, 0);
  Rng r3(100);
  inj.inject(c, r3);
  REALM_CHECK(!(a == c));
}

REALM_TEST(single_bit_flips_hit_distinct_elements) {
  // Sampling without replacement: every reported flip corresponds to exactly
  // one changed element (with replacement, pairs cancel and over-count).
  const SingleBitFlipInjector inj(0.5, 30);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    std::vector<std::int32_t> data(64, 0);
    Rng rng(seed);
    const InjectionReport rep = inj.inject(data, rng);
    std::uint64_t changed = 0;
    for (const auto v : data) {
      if (v != 0) {
        ++changed;
        REALM_CHECK_EQ(static_cast<std::uint32_t>(v), 1u << 30);
      }
    }
    REALM_CHECK_EQ(changed, rep.corrupted_values);
    REALM_CHECK_EQ(rep.flipped_bits, rep.corrupted_values);
  }
}

REALM_TEST(magfreq_exact_error_mass) {
  const MagFreqInjector inj(1 << 20, 7);
  std::vector<std::int32_t> data(256, 0);
  Rng rng(5);
  const InjectionReport rep = inj.inject(data, rng);
  REALM_CHECK_EQ(rep.corrupted_values, std::uint64_t{7});
  std::int64_t total = 0;
  std::uint64_t touched = 0;
  for (const auto v : data) {
    total += v;
    if (v != 0) ++touched;
  }
  REALM_CHECK_EQ(total, std::int64_t{7} * (1 << 20));  // MSD mass = freq * mag
  REALM_CHECK_EQ(touched, std::uint64_t{7});           // distinct targets
  // freq > size clamps rather than looping forever.
  std::vector<std::int32_t> tiny(3, 0);
  const InjectionReport rep2 = MagFreqInjector(1, 1000).inject(tiny, rng);
  REALM_CHECK_EQ(rep2.corrupted_values, std::uint64_t{3});
}

REALM_TEST(flip_records_capture_exact_bits_and_values) {
  // Replaying records in reverse (writing each `before` back) must restore
  // the original tensor exactly — the reconstruction contract the realm::sa
  // ground-truth comparator relies on, valid even when flips collide.
  Rng rng(21);
  std::vector<std::int32_t> data(1024);
  for (auto& v : data) v = static_cast<std::int32_t>(rng.uniform_int(-100000, 100000));
  const std::vector<std::int32_t> original = data;

  const RandomBitFlipInjector inj(0.01, 0, 31);
  std::vector<FlipRecord> record;
  const InjectionReport rep = inj.inject(data, rng, &record);
  REALM_CHECK(rep.flipped_bits > 0);
  REALM_CHECK_EQ(record.size(), rep.flipped_bits);
  for (const FlipRecord& f : record) {
    REALM_CHECK(f.bit >= 0 && f.bit <= 31);
    REALM_CHECK_EQ(static_cast<std::uint32_t>(f.after),
                   static_cast<std::uint32_t>(f.before) ^ (1u << f.bit));
  }
  for (auto it = record.rbegin(); it != record.rend(); ++it) {
    REALM_CHECK_EQ(data[it->index], it->after);  // records are in application order
    data[it->index] = it->before;
  }
  REALM_CHECK(data == original);

  // Same seed, with and without recording: identical mutations (recording
  // must not consume extra randomness).
  std::vector<std::int32_t> a = original, b = original;
  Rng r1(77), r2(77);
  inj.inject(a, r1, &record);
  inj.inject(b, r2);
  REALM_CHECK(a == b);

  // The single-bit protocol pins every record to its bit; the magnitude model
  // records kAdditiveBit and the exact pre/post values.
  std::vector<std::int32_t> sb(256, 5);
  const SingleBitFlipInjector single(0.3, 30);
  single.inject(sb, r1, &record);
  REALM_CHECK(!record.empty());
  for (const FlipRecord& f : record) REALM_CHECK_EQ(f.bit, std::int16_t{30});

  std::vector<std::int32_t> mf(256, 17);
  const MagFreqInjector mag(1 << 12, 5);
  mag.inject(mf, r1, &record);
  REALM_CHECK_EQ(record.size(), std::size_t{5});
  for (const FlipRecord& f : record) {
    REALM_CHECK_EQ(f.bit, FlipRecord::kAdditiveBit);
    REALM_CHECK_EQ(f.before, std::int32_t{17});
    REALM_CHECK_EQ(f.after, std::int32_t{17 + (1 << 12)});
  }

  // A previous record list is cleared, not appended to, even by a no-op pass.
  NullInjector none;
  none.inject(mf, r1, &record);
  REALM_CHECK(record.empty());
}

REALM_TEST(random_bitflip_respects_bit_range) {
  const RandomBitFlipInjector inj(0.05, 8, 15);
  std::vector<std::int32_t> data(2048, 0);
  Rng rng(7);
  inj.inject(data, rng);
  bool any = false;
  for (const auto v : data) {
    const auto w = static_cast<std::uint32_t>(v);
    REALM_CHECK_EQ(w & ~0x0000ff00u, 0u);  // only bits [8,15] may be set
    if (w != 0) any = true;
  }
  REALM_CHECK(any);
  REALM_CHECK_THROWS(RandomBitFlipInjector(2.0), std::invalid_argument);
  REALM_CHECK_THROWS(RandomBitFlipInjector(0.1, 5, 40), std::invalid_argument);
  REALM_CHECK_THROWS(SingleBitFlipInjector(0.1, 32), std::invalid_argument);
  REALM_CHECK_THROWS(MagFreqInjector(0, 3), std::invalid_argument);
}

REALM_TEST(memory_model_ber_zero_injects_nothing) {
  MemoryFaultConfig cfg;  // every component BER defaults to 0
  cfg.seed = 42;
  const MemoryFaultModel model(cfg);
  std::vector<std::int8_t> bytes(512, 3);
  std::vector<FlipRecord> record{FlipRecord{}};
  REALM_CHECK_EQ(model.corrupt(Component::kWeights, 0, bytes, &record), std::uint64_t{0});
  REALM_CHECK(record.empty());  // cleared, not appended to, by a no-op pass
  for (const auto v : bytes) REALM_CHECK_EQ(v, std::int8_t{3});
  REALM_CHECK(!model.enabled(Component::kWeights));
  std::vector<std::int16_t> words(64, -7);
  REALM_CHECK_EQ(model.corrupt16(Component::kPackedPanels, 9, words), std::uint64_t{0});
  for (const auto v : words) REALM_CHECK_EQ(v, std::int16_t{-7});

  // Parameter validation mirrors the injectors'.
  MemoryFaultConfig bad = cfg;
  bad.activations.ber = 2.0;
  REALM_CHECK_THROWS(MemoryFaultModel{bad}, std::invalid_argument);
  bad = cfg;
  bad.weights.bit_lo = 5;
  bad.weights.bit_hi = 3;
  REALM_CHECK_THROWS(MemoryFaultModel{bad}, std::invalid_argument);
  bad = cfg;
  bad.packed_panels.bit_hi = 8;
  REALM_CHECK_THROWS(MemoryFaultModel{bad}, std::invalid_argument);
  bad = cfg;
  bad.weights.rest_epochs = 0;
  REALM_CHECK_THROWS(MemoryFaultModel{bad}, std::invalid_argument);
  REALM_CHECK_THROWS(cfg.params(Component::kAccumulator), std::invalid_argument);
}

REALM_TEST(memory_model_ber_one_flips_every_eligible_bit) {
  MemoryFaultConfig cfg;
  cfg.seed = 1;
  cfg.weights.ber = 1.0;
  cfg.weights.bit_lo = 2;
  cfg.weights.bit_hi = 5;
  cfg.packed_panels.ber = 1.0;  // full [0,7] lane window
  const MemoryFaultModel model(cfg);

  std::vector<std::int8_t> bytes(64);
  for (std::size_t i = 0; i < bytes.size(); ++i) bytes[i] = static_cast<std::int8_t>(i * 7);
  const std::vector<std::int8_t> orig = bytes;
  REALM_CHECK_EQ(model.corrupt(Component::kWeights, 0, bytes), std::uint64_t{64 * 4});
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    // BER saturation is deterministic: every bit in the window flips once.
    REALM_CHECK_EQ(static_cast<std::uint8_t>(bytes[i]),
                   static_cast<std::uint8_t>(static_cast<std::uint8_t>(orig[i]) ^ 0x3Cu));
  }

  // INT16 words: the lane window applies to BOTH bytes, so [0,7] at BER=1
  // inverts the whole word.
  std::vector<std::int16_t> words(32, 0x1234);
  REALM_CHECK_EQ(model.corrupt16(Component::kPackedPanels, 3, words), std::uint64_t{32 * 16});
  for (const auto v : words) {
    REALM_CHECK_EQ(static_cast<std::uint16_t>(v), static_cast<std::uint16_t>(0x1234u ^ 0xFFFFu));
  }

  // Two retention epochs at BER=1: every bit re-upsets and cancels — the
  // image comes back clean but the physical flip count records both epochs.
  MemoryFaultConfig cfg2 = cfg;
  cfg2.weights.rest_epochs = 2;
  std::vector<std::int8_t> twice = orig;
  REALM_CHECK_EQ(MemoryFaultModel(cfg2).corrupt(Component::kWeights, 0, twice),
                 std::uint64_t{2 * 64 * 4});
  REALM_CHECK(twice == orig);
}

REALM_TEST(component_flip_records_reverse_replay) {
  MemoryFaultConfig cfg;
  cfg.seed = 0xfeed;
  cfg.activations.ber = 0.02;
  cfg.packed_panels.ber = 0.01;
  const MemoryFaultModel model(cfg);

  Rng init(3);
  std::vector<std::int8_t> bytes(2048);
  for (auto& v : bytes) v = static_cast<std::int8_t>(init.uniform_int(-128, 127));
  const std::vector<std::int8_t> orig = bytes;
  std::vector<FlipRecord> record;
  const std::uint64_t flips = model.corrupt(Component::kActivations, 11, bytes, &record);
  REALM_CHECK(flips > 0);
  REALM_CHECK_EQ(record.size(), flips);
  for (const FlipRecord& f : record) {
    REALM_CHECK(f.component == Component::kActivations);
    REALM_CHECK(f.bit >= 0 && f.bit <= 7);
  }
  for (auto it = record.rbegin(); it != record.rend(); ++it) {
    REALM_CHECK_EQ(bytes[it->index], static_cast<std::int8_t>(it->after));
    bytes[it->index] = static_cast<std::int8_t>(it->before);
  }
  REALM_CHECK(bytes == orig);  // reverse replay reconstructs the clean image

  std::vector<std::int16_t> words(1024);
  for (auto& v : words) v = static_cast<std::int16_t>(init.uniform_int(-30000, 30000));
  const std::vector<std::int16_t> worig = words;
  const std::uint64_t wflips = model.corrupt16(Component::kPackedPanels, 4, words, &record);
  REALM_CHECK(wflips > 0);
  REALM_CHECK_EQ(record.size(), wflips);
  for (const FlipRecord& f : record) REALM_CHECK(f.component == Component::kPackedPanels);
  for (auto it = record.rbegin(); it != record.rend(); ++it) {
    REALM_CHECK_EQ(words[it->index], static_cast<std::int16_t>(it->after));
    words[it->index] = static_cast<std::int16_t>(it->before);
  }
  REALM_CHECK(words == worig);

  // Recording must not consume extra randomness.
  std::vector<std::int8_t> a = orig, b = orig;
  model.corrupt(Component::kActivations, 11, a, &record);
  model.corrupt(Component::kActivations, 11, b);
  REALM_CHECK(a == b);
}

REALM_TEST(component_streams_independent_and_replayable) {
  // The replay contract: a component's draws are a pure function of
  // (seed, component, op) — enabling OTHER components must not shift them.
  MemoryFaultConfig only_w;
  only_w.seed = 77;
  only_w.weights.ber = 0.05;
  MemoryFaultConfig all = only_w;
  all.activations.ber = 0.2;
  all.packed_panels.ber = 0.1;

  std::vector<std::int8_t> a(1024, 1), b(1024, 1);
  (void)MemoryFaultModel(only_w).corrupt(Component::kWeights, 5, a);
  (void)MemoryFaultModel(all).corrupt(Component::kWeights, 5, b);
  REALM_CHECK(a == b);

  // Distinct ops draw distinct patterns (counter-based, no shared state).
  std::vector<std::int8_t> c(1024, 1);
  (void)MemoryFaultModel(all).corrupt(Component::kWeights, 6, c);
  REALM_CHECK(!(a == c));

  // Components with identical parameters still fork disjoint streams.
  MemoryFaultConfig wact = only_w;
  wact.activations.ber = 0.05;
  std::vector<std::int8_t> d(1024, 1);
  (void)MemoryFaultModel(wact).corrupt(Component::kActivations, 5, d);
  REALM_CHECK(!(a == d));

  // compose_op is order-sensitive and avalanche-mixed: composite stream
  // coordinates like (request, tile) and (tile, request) stay distinct.
  REALM_CHECK(compose_op(1, 2) != compose_op(2, 1));
  REALM_CHECK(compose_op(0, 0) != compose_op(0, 1));
}

REALM_TEST_MAIN()
