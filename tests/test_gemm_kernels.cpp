#include "tensor/gemm_kernels.h"

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "realm_test.h"
#include "tensor/gemm.h"
#include "tensor/tensor.h"
#include "util/rng.h"

using namespace realm::tensor;
using realm::tensor::kernels::Tier;

namespace {

/// Restores the pre-test tier even when a REALM_CHECK throws, so one failing
/// case can't leak a forced tier into the rest of the .all run.
struct TierGuard {
  Tier saved = kernels::active_tier();
  ~TierGuard() { kernels::set_active_tier(saved); }
};

std::vector<Tier> supported_tiers() {
  std::vector<Tier> tiers{Tier::kPortable};
  if (kernels::best_supported_tier() >= Tier::kAvx2) tiers.push_back(Tier::kAvx2);
  if (kernels::best_supported_tier() >= Tier::kAvx512) tiers.push_back(Tier::kAvx512);
  return tiers;
}

MatI8 random_i8_full_range(std::size_t rows, std::size_t cols, realm::util::Rng& rng) {
  MatI8 m(rows, cols);
  // Full raw int8 range including -128: the overflow analysis and the
  // sign-extension paths must hold beyond the quantizer's ±127.
  for (auto& x : m.flat()) x = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  return m;
}

/// Naive int64-accumulating reference, independent of every kernel tier.
MatI32 reference_gemm(const MatI8& a, const MatI8& b) {
  MatI32 c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      std::int64_t acc = 0;
      for (std::size_t kk = 0; kk < a.cols(); ++kk) {
        acc += static_cast<std::int64_t>(a(i, kk)) * static_cast<std::int64_t>(b(kk, j));
      }
      c(i, j) = static_cast<std::int32_t>(acc);
    }
  }
  return c;
}

}  // namespace

REALM_TEST(all_tiers_match_reference_on_randomized_shapes) {
  realm::util::Rng rng(101);
  TierGuard guard;
  // Shapes straddling every blocking boundary: microkernel tiles (4/8 rows,
  // 16/32 cols), the 64-row A block, odd k (the int16 pair padding path),
  // k = 1, and single-row/column edges.
  const std::size_t shapes[][3] = {{1, 1, 1},   {3, 5, 7},    {8, 64, 32},  {9, 65, 33},
                                   {17, 2, 50}, {33, 127, 1}, {5, 1, 100},  {64, 128, 96},
                                   {66, 130, 97}, {12, 31, 48}, {100, 7, 19}};
  for (const auto& s : shapes) {
    const MatI8 a = random_i8_full_range(s[0], s[1], rng);
    const MatI8 b = random_i8_full_range(s[1], s[2], rng);
    const MatI32 want = reference_gemm(a, b);
    for (const Tier t : supported_tiers()) {
      kernels::set_active_tier(t);
      REALM_CHECK(gemm_i8(a, b) == want);
      REALM_CHECK(gemm_i8_bt(a, transpose(b)) == want);
    }
  }
}

REALM_TEST(tiers_agree_at_k_bound_with_minus128) {
  // Worst-case accumulation: all operands -128, k = kMaxK. Every element is
  // exactly 2^14 * 2^16 = 2^30 — the documented int32 ceiling. The int16-pair
  // SIMD path must neither saturate nor wrap anywhere on the way there, and
  // an odd k one below the bound exercises the padded tail at full magnitude.
  TierGuard guard;
  for (const std::size_t k : {kMaxK, kMaxK - 1}) {
    const MatI8 a(2, k, std::int8_t{-128});
    const MatI8 bt(3, k, std::int8_t{-128});
    const std::int32_t want = static_cast<std::int32_t>(std::int64_t{16384} * k);
    for (const Tier t : supported_tiers()) {
      kernels::set_active_tier(t);
      const MatI32 c = gemm_i8_bt(a, bt);
      for (std::size_t i = 0; i < c.rows(); ++i) {
        for (std::size_t j = 0; j < c.cols(); ++j) REALM_CHECK_EQ(c(i, j), want);
      }
    }
  }
}

REALM_TEST(mixed_sign_columns_cancel_exactly) {
  // Alternating ±127 against ±128 stresses cancellation: intermediate sums
  // swing to both extremes while the final value stays small. Any tier that
  // saturated an intermediate (the maddubs trap) would diverge.
  TierGuard guard;
  const std::size_t k = 4096;
  MatI8 a(1, k);
  for (std::size_t kk = 0; kk < k; ++kk) a(0, kk) = (kk % 2 == 0) ? 127 : -127;
  MatI8 b(k, 2);
  for (std::size_t kk = 0; kk < k; ++kk) {
    b(kk, 0) = -128;
    b(kk, 1) = (kk % 2 == 0) ? -128 : 127;
  }
  const MatI32 want = reference_gemm(a, b);
  for (const Tier t : supported_tiers()) {
    kernels::set_active_tier(t);
    REALM_CHECK(gemm_i8(a, b) == want);
  }
}

REALM_TEST(output_is_fully_overwritten_not_accumulated) {
  // The kernel contract: a correctly-sized c is overwritten without being
  // read. Pre-poisoning c must not leak into the result on any tier, for
  // either storage order, including the k = 0 edge (which must zero c).
  realm::util::Rng rng(102);
  TierGuard guard;
  const MatI8 a = random_i8_full_range(7, 33, rng);
  const MatI8 b = random_i8_full_range(33, 19, rng);
  const MatI32 want = reference_gemm(a, b);
  for (const Tier t : supported_tiers()) {
    kernels::set_active_tier(t);
    MatI32 c(7, 19);
    c.fill(0x7eadbeef);
    gemm_i8(a, b, c);
    REALM_CHECK(c == want);
    c.fill(-1);
    gemm_i8_bt(a, transpose(b), c);
    REALM_CHECK(c == want);
    MatI32 zero(4, 6);
    zero.fill(123);
    gemm_i8(MatI8(4, 0), MatI8(0, 6), zero);
    REALM_CHECK(zero == MatI32(4, 6, 0));
  }
}

REALM_TEST(prepacked_weights_match_fresh_pack_and_survive_tier_switch) {
  // The weight-stationary path: panels packed once via kernels::pack_b must
  // produce the same bits as packing fresh, and a cache packed under one tier
  // must fall back (not mis-decode) when the active tier changes.
  realm::util::Rng rng(103);
  TierGuard guard;
  const MatI8 a = random_i8_full_range(13, 70, rng);
  const MatI8 b = random_i8_full_range(70, 37, rng);
  const MatI32 want = reference_gemm(a, b);
  for (const Tier t : supported_tiers()) {
    kernels::set_active_tier(t);
    const kernels::PackedB pb = kernels::pack_b(b.data(), b.rows(), b.cols());
    MatI32 c;
    gemm_i8_prepacked(a, b, pb, c);
    REALM_CHECK(c == want);
    // Stale caches are ignored: wrong shape...
    const kernels::PackedB wrong = kernels::pack_b(b.data(), b.rows(), b.cols() - 1);
    REALM_CHECK(!wrong.valid_for(t, b.rows(), b.cols()));
    // ...and wrong tier (switch away from where the panels were packed).
    for (const Tier other : supported_tiers()) {
      kernels::set_active_tier(other);
      MatI32 c2;
      gemm_i8_prepacked(a, b, pb, c2);
      REALM_CHECK(c2 == want);
    }
    kernels::set_active_tier(t);
  }
}

REALM_TEST(tier_dispatch_and_override) {
  TierGuard guard;
  const Tier best = kernels::best_supported_tier();
  REALM_CHECK(kernels::active_tier() <= best);
  // Portable is always selectable...
  kernels::set_active_tier(Tier::kPortable);
  REALM_CHECK(kernels::active_tier() == Tier::kPortable);
  kernels::set_active_tier(best);
  REALM_CHECK(kernels::active_tier() == best);
  // ...and a tier above the CPU's capability is rejected.
  if (best < Tier::kAvx512) {
    REALM_CHECK_THROWS(kernels::set_active_tier(Tier::kAvx512), std::invalid_argument);
  }
  REALM_CHECK(std::string(kernels::to_string(Tier::kPortable)) == "portable");
  REALM_CHECK(std::string(kernels::to_string(Tier::kAvx2)) == "avx2");
  REALM_CHECK(std::string(kernels::to_string(Tier::kAvx512)) == "avx512");
}

REALM_TEST_MAIN()
