#include "util/bitmath.h"

#include <cstdint>

#include "realm_test.h"

using namespace realm::util;

// clamp_to_bits must be total over int arguments: bits == 64 used to shift by
// 63+1 positions (UB) and bits <= 0 produced negative shift counts.
static_assert(clamp_to_bits(INT64_MAX, 64) == INT64_MAX);
static_assert(clamp_to_bits(INT64_MIN, 64) == INT64_MIN);
static_assert(clamp_to_bits(12345, 0) == 0);
static_assert(clamp_to_bits(-12345, -7) == 0);
static_assert(clamp_to_bits(200, 8) == 127);
static_assert(clamp_to_bits(-200, 8) == -128);
static_assert(clamp_to_bits(1, 1) == 0);   // 1-bit signed range is [-1, 0]
static_assert(clamp_to_bits(-5, 1) == -1);

static_assert(sat_add_u64(UINT64_MAX, 1) == UINT64_MAX);
static_assert(sat_add_u64(40, 2) == 42);
static_assert(sat_add_i64(INT64_MAX, 1) == INT64_MAX);
static_assert(sat_add_i64(INT64_MIN, -1) == INT64_MIN);
static_assert(sat_sub_i64(INT64_MIN, 1) == INT64_MIN);
static_assert(sat_sub_i64(INT64_MAX, -1) == INT64_MAX);
static_assert(sat_sub_i64(0, INT64_MIN) == INT64_MAX);
static_assert(abs_u64(INT64_MIN) == 0x8000000000000000ULL);

REALM_TEST(clamp_to_bits_edges) {
  REALM_CHECK_EQ(clamp_to_bits(70000, 16), std::int64_t{32767});
  REALM_CHECK_EQ(clamp_to_bits(-70000, 16), std::int64_t{-32768});
  REALM_CHECK_EQ(clamp_to_bits(-42, 16), std::int64_t{-42});
  REALM_CHECK_EQ(clamp_to_bits(INT64_MAX, 63), (std::int64_t{1} << 62) - 1);
  REALM_CHECK_EQ(clamp_to_bits(0, 64), std::int64_t{0});
}

REALM_TEST(sat_add_saturates_not_wraps) {
  REALM_CHECK_EQ(sat_add_i64(INT64_MAX - 5, 10), INT64_MAX);
  REALM_CHECK_EQ(sat_add_i64(INT64_MIN + 5, -10), INT64_MIN);
  REALM_CHECK_EQ(sat_add_i64(40, 2), std::int64_t{42});
  REALM_CHECK_EQ(sat_sub_i64(40, -2), std::int64_t{42});
}

REALM_TEST(ilog2_values) {
  REALM_CHECK_EQ(ilog2_u64(0), 0);
  REALM_CHECK_EQ(ilog2_u64(1), 0);
  REALM_CHECK_EQ(ilog2_u64(1ULL << 40), 40);
  REALM_CHECK_EQ(ilog2_abs(-1024), 10);
  REALM_CHECK_EQ(ilog2_abs(INT64_MIN), 63);
}

REALM_TEST_MAIN()
