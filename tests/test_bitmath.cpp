#include "util/bitmath.h"

#include <cstdint>

#include "realm_test.h"

using namespace realm::util;

// clamp_to_bits must be total over int arguments: bits == 64 used to shift by
// 63+1 positions (UB) and bits <= 0 produced negative shift counts.
static_assert(clamp_to_bits(INT64_MAX, 64) == INT64_MAX);
static_assert(clamp_to_bits(INT64_MIN, 64) == INT64_MIN);
static_assert(clamp_to_bits(12345, 0) == 0);
static_assert(clamp_to_bits(-12345, -7) == 0);
static_assert(clamp_to_bits(200, 8) == 127);
static_assert(clamp_to_bits(-200, 8) == -128);
static_assert(clamp_to_bits(1, 1) == 0);   // 1-bit signed range is [-1, 0]
static_assert(clamp_to_bits(-5, 1) == -1);

static_assert(sat_add_u64(UINT64_MAX, 1) == UINT64_MAX);
static_assert(sat_add_u64(40, 2) == 42);
static_assert(sat_add_i64(INT64_MAX, 1) == INT64_MAX);
static_assert(sat_add_i64(INT64_MIN, -1) == INT64_MIN);
static_assert(sat_sub_i64(INT64_MIN, 1) == INT64_MIN);
static_assert(sat_sub_i64(INT64_MAX, -1) == INT64_MAX);
static_assert(sat_sub_i64(0, INT64_MIN) == INT64_MAX);
static_assert(abs_u64(INT64_MIN) == 0x8000000000000000ULL);

REALM_TEST(clamp_to_bits_edges) {
  REALM_CHECK_EQ(clamp_to_bits(70000, 16), std::int64_t{32767});
  REALM_CHECK_EQ(clamp_to_bits(-70000, 16), std::int64_t{-32768});
  REALM_CHECK_EQ(clamp_to_bits(-42, 16), std::int64_t{-42});
  REALM_CHECK_EQ(clamp_to_bits(INT64_MAX, 63), (std::int64_t{1} << 62) - 1);
  REALM_CHECK_EQ(clamp_to_bits(0, 64), std::int64_t{0});
}

REALM_TEST(sat_add_saturates_not_wraps) {
  REALM_CHECK_EQ(sat_add_i64(INT64_MAX - 5, 10), INT64_MAX);
  REALM_CHECK_EQ(sat_add_i64(INT64_MIN + 5, -10), INT64_MIN);
  REALM_CHECK_EQ(sat_add_i64(40, 2), std::int64_t{42});
  REALM_CHECK_EQ(sat_sub_i64(40, -2), std::int64_t{42});
}

REALM_TEST(ilog2_values) {
  REALM_CHECK_EQ(ilog2_u64(0), 0);
  REALM_CHECK_EQ(ilog2_u64(1), 0);
  REALM_CHECK_EQ(ilog2_u64(1ULL << 40), 40);
  REALM_CHECK_EQ(ilog2_abs(-1024), 10);
  REALM_CHECK_EQ(ilog2_abs(INT64_MIN), 63);
}

// wrap_to_bits drops carries and sign-extends — the two's-complement register
// model of realm::sa. Total over bits like clamp_to_bits.
static_assert(wrap_to_bits(INT64_MAX, 64) == INT64_MAX);
static_assert(wrap_to_bits(INT64_MIN, 64) == INT64_MIN);
static_assert(wrap_to_bits(12345, 0) == 0);
static_assert(wrap_to_bits(-12345, -7) == 0);
static_assert(wrap_to_bits(1, 1) == -1);  // 1-bit register: 1 aliases to -1
static_assert(wrap_to_bits(2, 1) == 0);

REALM_TEST(wrap_to_bits_aliases_and_sign_extends) {
  // The aliasing failure mode: any multiple of 2^bits reads as exactly 0.
  REALM_CHECK_EQ(wrap_to_bits(1 << 16, 16), std::int64_t{0});
  REALM_CHECK_EQ(wrap_to_bits(std::int64_t{5} << 16, 16), std::int64_t{0});
  REALM_CHECK_EQ(wrap_to_bits(-(std::int64_t{3} << 16), 16), std::int64_t{0});
  // In-range values pass through, including negatives.
  REALM_CHECK_EQ(wrap_to_bits(32767, 16), std::int64_t{32767});
  REALM_CHECK_EQ(wrap_to_bits(-32768, 16), std::int64_t{-32768});
  REALM_CHECK_EQ(wrap_to_bits(-1, 16), std::int64_t{-1});
  // Overflow wraps to the opposite sign instead of clamping.
  REALM_CHECK_EQ(wrap_to_bits(32768, 16), std::int64_t{-32768});
  REALM_CHECK_EQ(wrap_to_bits(32773, 16), std::int64_t{-32763});
  REALM_CHECK_EQ(wrap_to_bits(-32769, 16), std::int64_t{32767});
  // Wide registers: bit 62 survives a 63-bit register, dies in a 62-bit one.
  REALM_CHECK_EQ(wrap_to_bits(std::int64_t{1} << 62, 63), INT64_MIN >> 1);
  REALM_CHECK_EQ(wrap_to_bits(std::int64_t{1} << 62, 62), std::int64_t{0});
}

REALM_TEST_MAIN()
