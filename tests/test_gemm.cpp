#include "tensor/gemm.h"

#include <cstdint>
#include <stdexcept>

#include "realm_test.h"
#include "tensor/tensor.h"
#include "util/rng.h"

using namespace realm::tensor;

namespace {

MatI8 random_i8(std::size_t rows, std::size_t cols, realm::util::Rng& rng) {
  MatI8 m(rows, cols);
  for (auto& x : m.flat()) x = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
  return m;
}

/// Naive j-indexed reference with int64 accumulation.
MatI32 reference_gemm(const MatI8& a, const MatI8& b) {
  MatI32 c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      std::int64_t acc = 0;
      for (std::size_t kk = 0; kk < a.cols(); ++kk) {
        acc += static_cast<std::int64_t>(a(i, kk)) * static_cast<std::int64_t>(b(kk, j));
      }
      c(i, j) = static_cast<std::int32_t>(acc);
    }
  }
  return c;
}

}  // namespace

REALM_TEST(gemm_matches_reference) {
  realm::util::Rng rng(1);
  // Sizes straddling the k-block boundary (64) and non-square shapes.
  const std::size_t shapes[][3] = {{1, 1, 1}, {3, 5, 7}, {17, 64, 9}, {8, 130, 33}};
  for (const auto& s : shapes) {
    const MatI8 a = random_i8(s[0], s[1], rng);
    const MatI8 b = random_i8(s[1], s[2], rng);
    REALM_CHECK(gemm_i8(a, b) == reference_gemm(a, b));
  }
}

REALM_TEST(gemm_bt_matches_transpose) {
  realm::util::Rng rng(2);
  const MatI8 a = random_i8(6, 70, rng);
  const MatI8 b = random_i8(70, 11, rng);
  REALM_CHECK(gemm_i8_bt(a, transpose(b)) == gemm_i8(a, b));
}

REALM_TEST(gemm_k_bound_enforced) {
  // k = 2^16 is the largest overflow-safe inner dimension; one past must
  // throw in every build type, not just assert in debug.
  const std::size_t k_bad = kMaxK + 1;
  const MatI8 a(1, k_bad), b(k_bad, 1);
  REALM_CHECK_THROWS(gemm_i8(a, b), std::invalid_argument);
  REALM_CHECK_THROWS(gemm_i8_bt(a, MatI8(1, k_bad)), std::invalid_argument);
  REALM_CHECK_THROWS(gemm_i8(MatI8(1, 3), MatI8(4, 1)), std::invalid_argument);
  // k = kMaxK exactly is allowed.
  const MatI8 a_ok(1, kMaxK, 1), b_ok(kMaxK, 1, 1);
  REALM_CHECK_EQ(gemm_i8(a_ok, b_ok)(0, 0), static_cast<std::int32_t>(kMaxK));
  // The float reference accumulates in float and is NOT subject to the int32
  // bound — large-k golden comparisons must keep working.
  const MatF fa(1, k_bad, 1.0f), fb(k_bad, 1, 1.0f);
  REALM_CHECK_EQ(gemm_f32(fa, fb)(0, 0), static_cast<float>(k_bad));
}

REALM_TEST_MAIN()
