#include "detect/correct.h"

#include <cstdint>
#include <vector>

#include "detect/detect.h"
#include "realm_test.h"
#include "tensor/checksum.h"
#include "tensor/gemm.h"
#include "tensor/quant.h"
#include "tensor/tensor.h"
#include "util/rng.h"
#include "util/threadpool.h"

using namespace realm::detect;
using namespace realm::detect::correct;
using namespace realm::tensor;
using namespace realm::fault;
using realm::util::Rng;

namespace {

MatI8 random_i8(std::size_t rows, std::size_t cols, Rng& rng) {
  MatI8 m(rows, cols);
  for (auto& x : m.flat()) x = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
  return m;
}

/// Everything try_patch reads, derived once from a (A, W) pair the same way
/// the pipeline derives it: the ProtectedGemm owns the resident bases, the
/// predicted checksum comes from the fused-identity kernel, and `truth` is
/// the fault-free accumulator the patch must reconstruct bit for bit.
struct Fixture {
  ProtectedGemm pg;
  MatI8 a8;
  std::vector<std::int64_t> predicted;
  MatI32 truth;

  Fixture(std::size_t m, std::size_t k, std::size_t n, Rng& rng) {
    DetectionConfig cfg;
    cfg.recompute_on_detect = false;
    pg = ProtectedGemm(cfg);
    pg.set_weights_quantized(random_i8(k, n, rng), {0.02f});
    a8 = random_i8(m, k, rng);
    predicted = predict_col_checksum(a8, pg.weights());
    truth = gemm_i8(a8, pg.weights());
  }

  PatchResult patch(MatI32& acc) const {
    return try_patch(pg.config(), predicted, a8, pg.weights(), pg.weight_row_basis(),
                     pg.weight_row_wbasis(), acc);
  }
};

/// Restores the serial default even when a REALM_CHECK throws mid-case.
struct SerialGuard {
  ~SerialGuard() { realm::util::set_global_threads(1); }
};

}  // namespace

REALM_TEST(zero_deviation_input_is_a_noop) {
  // A "detected" handoff whose deviations are all zero has nothing to solve
  // against: the corrector must refuse to touch the accumulator rather than
  // invent a patch (the misuse mode where a caller passes a clean tile).
  Rng rng(70);
  const Fixture fx(8, 32, 16, rng);
  MatI32 acc = fx.truth;
  const PatchResult res = fx.patch(acc);
  REALM_CHECK(res.outcome == PatchOutcome::kNoFault);
  REALM_CHECK_EQ(res.patches_applied, std::size_t{0});
  REALM_CHECK(!res.used_row_solve);
  REALM_CHECK(acc == fx.truth);
}

REALM_TEST(checksum_line_fault_fails_without_touching_acc) {
  // A fault in the checksum datapath itself — the predicted column sums,
  // not the accumulator — shows a plain deviation with a zero weighted
  // deviation. The solve yields the impossible 0-based position -1, no
  // patch is accepted, the accumulator stays bit-identical, and the dirty
  // recheck routes the caller to recompute.
  Rng rng(71);
  const Fixture fx(8, 32, 16, rng);
  std::vector<std::int64_t> doctored = fx.predicted;
  doctored[5] += 999;
  MatI32 acc = fx.truth;
  const PatchResult res = try_patch(fx.pg.config(), doctored, fx.a8, fx.pg.weights(),
                                    fx.pg.weight_row_basis(), fx.pg.weight_row_wbasis(), acc);
  REALM_CHECK(res.outcome == PatchOutcome::kFailed);
  REALM_CHECK_EQ(res.patches_applied, std::size_t{0});
  REALM_CHECK(acc == fx.truth);
  REALM_CHECK(res.recheck.faulty());
}

REALM_TEST(two_faults_sharing_a_row_patch_independently) {
  // The per-column solve handles simultaneous faults in distinct columns,
  // including several on one row: each column's (plain, weighted) pair pins
  // its own (row, magnitude) independently.
  Rng rng(72);
  const Fixture fx(8, 32, 16, rng);
  MatI32 acc = fx.truth;
  acc(3, 2) += 1 << 15;
  acc(3, 11) -= 77;
  const PatchResult res = fx.patch(acc);
  REALM_CHECK(res.outcome == PatchOutcome::kPatched);
  REALM_CHECK_EQ(res.patches_applied, std::size_t{2});
  REALM_CHECK(!res.used_row_solve);  // the column solve alone covered both
  REALM_CHECK(acc == fx.truth);
  REALM_CHECK(res.recheck.verdict == Verdict::kClean);
}

REALM_TEST(faults_sharing_a_column_use_the_row_solve) {
  // Two faults in one column alias the column statistics (the weighted sum
  // no longer divides), so Plan A skips it; the row-side residual solve
  // separates them. Also covers the column-cancelling pair, where the
  // column side is completely blind (dc == 0).
  Rng rng(73);
  const Fixture fx(8, 32, 16, rng);
  {
    MatI32 acc = fx.truth;
    acc(1, 5) += 1 << 12;
    acc(4, 5) += 3 << 10;
    const PatchResult res = fx.patch(acc);
    REALM_CHECK(res.outcome == PatchOutcome::kPatched);
    REALM_CHECK_EQ(res.patches_applied, std::size_t{2});
    REALM_CHECK(res.used_row_solve);
    REALM_CHECK(acc == fx.truth);
  }
  {
    MatI32 acc = fx.truth;
    acc(0, 7) += 1 << 20;
    acc(6, 7) -= 1 << 20;
    const PatchResult res = fx.patch(acc);
    REALM_CHECK(res.outcome == PatchOutcome::kPatched);
    REALM_CHECK_EQ(res.patches_applied, std::size_t{2});
    REALM_CHECK(res.used_row_solve);
    REALM_CHECK(acc == fx.truth);
  }
}

namespace {

/// Adds a fixed delta to one fixed element — the minimal localized fault.
class DeltaAt final : public FaultInjector {
 public:
  DeltaAt(std::size_t index, std::int32_t delta) : index_(index), delta_(delta) {}
  InjectionReport inject(std::span<std::int32_t> data, realm::util::Rng&,
                         std::vector<realm::fault::FlipRecord>* record) const override {
    if (record != nullptr) record->clear();
    data[index_] += delta_;
    return {.flipped_bits = 1, .corrupted_values = 1};
  }

 private:
  std::size_t index_;
  std::int32_t delta_;
};

}  // namespace

REALM_TEST(patched_output_bit_identical_to_recompute_at_1_2_8_workers) {
  // The acceptance pin: the in-place patch and the full recompute replay
  // must produce the same bits — accumulator and dequantized output — at
  // every worker count, with the verdicts naming which path healed the run.
  Rng rng(74);
  SerialGuard guard;
  DetectionConfig patch_cfg;  // default: patch first
  DetectionConfig rec_cfg;
  rec_cfg.patch_on_detect = false;  // recompute-only reference
  const MatI8 w8 = random_i8(64, 48, rng);
  ProtectedGemm pg_patch(patch_cfg);
  ProtectedGemm pg_rec(rec_cfg);
  pg_patch.set_weights_quantized(w8, {0.02f});
  pg_rec.set_weights_quantized(w8, {0.02f});

  const MatI8 a8 = random_i8(16, 64, rng);
  const QuantParams qa{0.05f};
  const DeltaAt inj(9 * 48 + 17, 1 << 18);
  const NullInjector none;
  const ProtectedGemmResult golden = pg_patch.run_quantized(a8, qa, none, rng);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    realm::util::set_global_threads(threads);
    const ProtectedGemmResult patched = pg_patch.run_quantized(a8, qa, inj, rng);
    const ProtectedGemmResult recomputed = pg_rec.run_quantized(a8, qa, inj, rng);
    REALM_CHECK(patched.report.verdict == Verdict::kPatched);
    REALM_CHECK(recomputed.report.verdict == Verdict::kRecomputed);
    REALM_CHECK(patched.acc == golden.acc);
    REALM_CHECK(recomputed.acc == golden.acc);
    REALM_CHECK(patched.output == golden.output);
    REALM_CHECK(recomputed.output == golden.output);
  }
}

REALM_TEST(patch_disabled_falls_back_to_recompute) {
  // patch_on_detect=false must keep the pre-corrector pipeline semantics:
  // detected faults replay the tile and report kRecomputed; with both modes
  // off the verdict stays kDetected and the accumulator stays corrupted.
  Rng rng(75);
  DetectionConfig neither;
  neither.patch_on_detect = false;
  neither.recompute_on_detect = false;
  ProtectedGemm pg(neither);
  pg.set_weights_quantized(random_i8(32, 16, rng), {0.02f});
  const MatI8 a8 = random_i8(8, 32, rng);
  const DeltaAt inj(3 * 16 + 4, 4096);
  const ProtectedGemmResult r = pg.run_quantized(a8, {0.05f}, inj, rng);
  REALM_CHECK(r.report.verdict == Verdict::kDetected);
  REALM_CHECK(!corrected(r.report.verdict));
  const MatI32 clean = gemm_i8(a8, pg.weights());
  REALM_CHECK_EQ(r.acc(3, 4) - clean(3, 4), 4096);
}

REALM_TEST_MAIN()
