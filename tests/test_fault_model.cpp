// End-to-end property tests for the memory-hierarchy fault model: randomized
// (shape, component set, BER, seed) trials drive weight/panel/activation/
// accumulator strikes through the full detect + serve stack and assert the
// certified-or-recompute invariant — every corrected verdict's output is
// bit-equal to the fault-free reference, and every net weight/panel fault is
// caught by the load/rest-time scrub. Every trial is a pure function of its
// printed seed tuple, so a failure line replays exactly.
#include "fault/memory.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "detect/detect.h"
#include "fault/fault.h"
#include "realm_test.h"
#include "serve/engine.h"
#include "serve/tile_grid.h"
#include "tensor/quant.h"
#include "tensor/tensor.h"
#include "util/rng.h"

using namespace realm::detect;
using namespace realm::fault;
using namespace realm::tensor;
using realm::util::Rng;

namespace {

MatI8 random_i8(std::size_t rows, std::size_t cols, Rng& rng) {
  MatI8 m(rows, cols);
  for (auto& x : m.flat()) x = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
  return m;
}

constexpr std::size_t idx(Component c) { return static_cast<std::size_t>(c); }

}  // namespace

REALM_TEST(fuzz_certified_or_recompute_invariant) {
  // Randomized end-to-end sweep. The meta stream only PICKS trial parameters;
  // each trial's fault draws come from its own printed seed, so any failing
  // trial replays bit-identically from the tuple on stderr.
  const double kBers[] = {0.0, 1e-3, 1e-2, 0.05};
  Rng meta(0xf072);
  for (std::size_t trial = 0; trial < 24; ++trial) {
    const std::size_t m = 4 + meta.uniform_u64(13);
    const std::size_t k = 8 + meta.uniform_u64(57);
    const std::size_t n = 8 + meta.uniform_u64(57);
    const std::uint64_t seed = meta.uniform_u64(std::uint64_t{1} << 30);
    MemoryFaultConfig mfc;
    mfc.seed = seed;
    mfc.weights.ber = kBers[meta.uniform_u64(4)];
    mfc.packed_panels.ber = kBers[meta.uniform_u64(4)];
    mfc.activations.ber = kBers[meta.uniform_u64(4)];
    const bool acc_faults = meta.uniform_u64(2) == 1;
    const MemoryFaultModel model(mfc);

    const auto require = [&](bool cond, const char* what) {
      if (!cond) {
        std::fprintf(stderr,
                     "replay tuple: trial=%zu m=%zu k=%zu n=%zu seed=%llu wber=%g pber=%g "
                     "aber=%g acc=%d\n",
                     trial, m, k, n, static_cast<unsigned long long>(seed), mfc.weights.ber,
                     mfc.packed_panels.ber, mfc.activations.ber, acc_faults ? 1 : 0);
        throw realm::test::Failure{std::string("fault-model invariant violated: ") + what};
      }
    };

    Rng data(seed);
    const MatI8 w8 = random_i8(k, n, data);
    const MatI8 a8 = random_i8(m, k, data);
    const QuantParams qw{0.02f}, qa{0.05f};
    ProtectedGemm pg;
    pg.set_weights_quantized(w8, qw);

    // Fault-free reference (output is injector- and rng-independent).
    ProtectedGemmResult ref;
    const NullInjector none;
    Rng ref_rng = Rng(seed).fork(1);
    pg.run_quantized_into(a8, qa, none, ref_rng, ref);
    require(ref.report.verdict == Verdict::kClean, "golden run screened dirty");
    const MatI32 ref_acc = ref.acc;

    // Load-time weight strike: a net-corrupted image MUST fail the scrub;
    // a scrub pass certifies the image is bit-equal clean.
    (void)pg.corrupt_weights(model, trial);
    const bool w_changed = !(pg.weights() == w8);
    if (w_changed) {
      require(!pg.verify_weight_integrity(), "weight fault escaped the scrub");
    } else {
      require(pg.verify_weight_integrity(), "scrub flagged a clean (net-zero) weight image");
    }
    pg.set_weights_quantized(w8, qw);  // reload from the golden host copy

    // At-rest panel strike: the repack-compare leg is exact at every width,
    // so ANY net panel corruption must fail the scrub. (Vacuous on the
    // portable tier, which holds no panels.)
    const std::vector<std::int16_t> clean_panels(pg.weight_panels().raw_panels().begin(),
                                                 pg.weight_panels().raw_panels().end());
    (void)pg.corrupt_panels(model, trial);
    const auto aged = pg.weight_panels().raw_panels();
    const bool p_changed =
        !std::equal(aged.begin(), aged.end(), clean_panels.begin(), clean_panels.end());
    if (p_changed) {
      require(!pg.verify_weight_integrity(), "panel fault escaped the repack-compare scrub");
    } else {
      require(pg.verify_weight_integrity(), "scrub flagged clean panels");
    }
    pg.set_weights_quantized(w8, qw);

    // Request phase: activation strikes from the memory model plus (half the
    // trials) accumulator upsets from the injector. Certified-or-recompute:
    // a corrected verdict's accumulator must be bit-equal to the fault-free
    // reference, and correction must never give up (kDetected) with
    // recompute_on_detect enabled.
    const RandomBitFlipInjector acc_inj(acc_faults ? 1e-4 : 0.0, 16, 31);
    ProtectedGemmResult res;
    Rng req_rng = Rng(seed).fork(1);
    pg.run_quantized_into(a8, qa, acc_inj, req_rng, res, &model, trial);
    require(res.report.verdict != Verdict::kDetected, "uncertified detection leaked out");
    if (corrected(res.report.verdict)) {
      require(res.acc == ref_acc, "corrected output differs from fault-free reference");
    }
    const std::uint64_t total_flips = res.report.component_flips[idx(Component::kActivations)] +
                                      res.report.component_flips[idx(Component::kAccumulator)];
    if (total_flips == 0) {
      require(res.report.verdict == Verdict::kClean, "flip-free run screened dirty");
      require(res.acc == ref_acc, "flip-free run changed the output");
    }
  }
}

REALM_TEST(weight_faults_always_caught_by_scrub) {
  // Deterministic grid over seeds and BERs: every net weight corruption must
  // trip verify_weight_integrity, and the sweep must actually exercise
  // non-vacuous corruption (catching nothing would make the test a no-op).
  const QuantParams qw{0.02f};
  std::size_t caught = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    for (const double ber : {1e-3, 1e-2, 0.05, 1.0}) {
      Rng data(0x9a0 + seed);
      const MatI8 w8 = random_i8(32, 48, data);
      MemoryFaultConfig mfc;
      mfc.seed = seed;
      mfc.weights.ber = ber;
      const MemoryFaultModel model(mfc);
      ProtectedGemm pg;
      pg.set_weights_quantized(w8, qw);
      const std::uint64_t flips = pg.corrupt_weights(model, 0);
      if (pg.weights() == w8) continue;  // net-zero (re-upsets cancelled)
      REALM_CHECK(flips > 0);
      if (pg.verify_weight_integrity()) {
        std::fprintf(stderr, "scrub miss: seed=%llu ber=%g\n",
                     static_cast<unsigned long long>(seed), ber);
        REALM_CHECK(false);
      }
      ++caught;
    }
  }
  REALM_CHECK(caught >= 30);  // the grid is overwhelmingly non-vacuous
}

REALM_TEST(activation_saturation_detected_and_recovered) {
  // BER=1 over the full lane window inverts every activation byte
  // (x -> ~x = -x-1), so the column deviation against the clean prediction is
  // -3*m*colsum(W) per column — with all-ones operands, guaranteed nonzero.
  // The screen must flag it and correction must certify an output bit-equal
  // to the fault-free reference (recompute re-fetches the golden copy).
  const std::size_t m = 6, k = 33, n = 17;
  MatI8 w8(k, n), a8(m, k);
  for (auto& v : w8.flat()) v = 1;
  for (auto& v : a8.flat()) v = 1;
  const QuantParams qw{0.02f}, qa{0.05f};
  ProtectedGemm pg;
  pg.set_weights_quantized(w8, qw);

  const NullInjector none;
  ProtectedGemmResult ref;
  Rng rng(4);
  pg.run_quantized_into(a8, qa, none, rng, ref);
  REALM_CHECK(ref.report.verdict == Verdict::kClean);

  MemoryFaultConfig mfc;
  mfc.seed = 0xa11;
  mfc.activations.ber = 1.0;
  const MemoryFaultModel model(mfc);
  ProtectedGemmResult res;
  pg.run_quantized_into(a8, qa, none, rng, res, &model, 0);
  REALM_CHECK_EQ(res.report.component_flips[idx(Component::kActivations)],
                 std::uint64_t{m * k * 8});
  REALM_CHECK(corrected(res.report.verdict));
  REALM_CHECK(res.acc == ref.acc);
  REALM_CHECK(res.output == ref.output);
}

REALM_TEST(grid_swap_scrub_rejects_faulted_load) {
  // BER=1 pinned to bit 0 flips the LSB of every byte of the candidate DMA —
  // a guaranteed net fault — so the scrub-on-swap must reject the load and
  // keep the old tile serving. A clean swap afterwards still installs.
  Rng rng(0x51a9);
  const std::size_t k = 48, n = 64;
  const QuantParams qw{0.02f};
  realm::serve::TileGridConfig gcfg;
  gcfg.tile_cols = 32;  // two tiles
  realm::serve::TileGrid grid(random_i8(k, n, rng), qw, gcfg);
  REALM_CHECK_EQ(grid.tile_count(), std::size_t{2});

  MemoryFaultConfig mfc;
  mfc.seed = 0xdead;
  mfc.weights.ber = 1.0;
  mfc.weights.bit_lo = 0;
  mfc.weights.bit_hi = 0;
  const MemoryFaultModel model(mfc);

  const auto before = grid.tile(1);
  const MatI8 slice = random_i8(k, grid.tile_width(1), rng);
  REALM_CHECK(!grid.swap_tile(1, slice, qw, model, 7));
  REALM_CHECK(grid.tile(1).get() == before.get());  // old tile kept serving
  REALM_CHECK_EQ(grid.swap_epoch(), std::uint64_t{0});
  REALM_CHECK_EQ(grid.memory_flips()[idx(Component::kWeights)],
                 std::uint64_t{k * grid.tile_width(1)});
  REALM_CHECK(grid.verify_weight_integrity());  // the grid itself stayed clean

  // The same candidate through a clean swap installs fine.
  REALM_CHECK(grid.swap_tile(1, slice, qw));
  REALM_CHECK_EQ(grid.swap_epoch(), std::uint64_t{1});
  REALM_CHECK(grid.tile(1)->weights() == slice);
}

REALM_TEST(grid_age_panels_detected_by_scrub) {
  // At-rest panel aging installs corrupted panels WITHOUT a scrub (that is
  // the fault being modelled); the grid-level scrub must then flag it via
  // the repack-compare leg. Portable tier holds no panels — vacuously clean.
  Rng rng(0x99);
  const QuantParams qw{0.02f};
  realm::serve::TileGridConfig gcfg;
  gcfg.tile_cols = 40;
  realm::serve::TileGrid grid(random_i8(64, 80, rng), qw, gcfg);

  MemoryFaultConfig mfc;
  mfc.seed = 0xbeef;
  mfc.packed_panels.ber = 1.0;  // saturation: every panel bit flips
  const MemoryFaultModel model(mfc);
  const std::uint64_t flips = grid.age_panels(model, 0);
  REALM_CHECK_EQ(grid.memory_flips()[idx(Component::kPackedPanels)], flips);
  if (flips > 0) {
    REALM_CHECK(!grid.verify_weight_integrity());
  } else {
    REALM_CHECK(grid.verify_weight_integrity());  // portable tier: no panels
  }
}

REALM_TEST(component_tallies_deterministic_across_worker_counts) {
  // The whole request path — outputs, verdicts, per-component tallies — must
  // be a pure function of (seed, stream, op), identical at 1, 2, and 8
  // workers. Requests carry pinned streams; the stream doubles as the memory
  // op, so activation strikes replay per request regardless of which worker
  // claims it.
  namespace sv = realm::serve;
  Rng rng(0x7d3);
  const std::size_t m = 8, k = 64, n = 96;
  const QuantParams qw{0.02f}, qa{0.05f};
  sv::TileGridConfig gcfg;
  gcfg.tile_cols = 32;  // three tiles
  const sv::TileGrid grid(random_i8(k, n, rng), qw, gcfg);
  const MatI8 act = random_i8(m, k, rng);
  const RandomBitFlipInjector inj(2e-4, 16, 31);

  MemoryFaultConfig mfc;
  mfc.seed = 0xc0de;
  mfc.activations.ber = 5e-3;
  const MemoryFaultModel model(mfc);

  const std::size_t requests = 24;
  struct Outcome {
    MatF output;
    Verdict verdict;
    ComponentFlips flips;
  };
  const auto run_with_workers = [&](std::size_t workers) {
    sv::ServeConfig scfg;
    scfg.workers = workers;
    scfg.seed = 0xba5e;
    sv::ServeEngine engine(grid, scfg);
    std::vector<sv::Ticket> tickets;
    for (std::size_t i = 0; i < requests; ++i) {
      sv::SubmitOptions opt;
      opt.stream = i;
      tickets.push_back(engine.submit(
          sv::Request::borrow(act, qa, (i % 3 == 0) ? &inj : nullptr, &model), opt));
    }
    std::vector<Outcome> out;
    for (auto& t : tickets) {
      sv::Response rsp = engine.wait(t);
      out.push_back({rsp.output, rsp.verdict.verdict, rsp.verdict.component_flips});
    }
    ComponentFlips totals = engine.stats().component_flips;
    return std::pair<std::vector<Outcome>, ComponentFlips>(std::move(out), totals);
  };

  const auto [base, base_totals] = run_with_workers(1);
  std::uint64_t act_flips = 0;
  for (const Outcome& o : base) act_flips += o.flips[idx(Component::kActivations)];
  REALM_CHECK(act_flips > 0);  // the model actually struck
  REALM_CHECK_EQ(base_totals[idx(Component::kActivations)], act_flips);
  for (const std::size_t workers : {std::size_t{2}, std::size_t{8}}) {
    const auto [got, totals] = run_with_workers(workers);
    REALM_CHECK_EQ(got.size(), base.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
      REALM_CHECK(got[i].output == base[i].output);
      REALM_CHECK(got[i].verdict == base[i].verdict);
      REALM_CHECK(got[i].flips == base[i].flips);
    }
    REALM_CHECK(totals == base_totals);
  }
}

REALM_TEST(component_streams_independent_of_other_components) {
  // Grid-level restatement of the stream-forking contract: a request's
  // activation strikes (and therefore its output and verdict) are identical
  // whether or not the weight/panel components are enabled in the config.
  namespace sv = realm::serve;
  Rng rng(0x1ce);
  const QuantParams qw{0.02f}, qa{0.05f};
  const sv::TileGrid grid(random_i8(48, 64, rng), qw);
  const MatI8 act = random_i8(8, 48, rng);
  const NullInjector none;

  MemoryFaultConfig act_only;
  act_only.seed = 0xf00d;
  act_only.activations.ber = 1e-2;
  MemoryFaultConfig act_plus = act_only;
  act_plus.weights.ber = 0.5;
  act_plus.packed_panels.ber = 0.5;
  const MemoryFaultModel model_a(act_only);
  const MemoryFaultModel model_b(act_plus);

  std::vector<ProtectedGemmResult> scratch;
  MatF out_a, out_b;
  sv::BatchVerdict va, vb;
  grid.run_into(act, qa, none, Rng(1).fork(3), scratch, out_a, va, &model_a, 9);
  grid.run_into(act, qa, none, Rng(1).fork(3), scratch, out_b, vb, &model_b, 9);
  REALM_CHECK(out_a == out_b);
  REALM_CHECK(va.verdict == vb.verdict);
  REALM_CHECK(va.component_flips == vb.component_flips);
  REALM_CHECK(va.component_flips[idx(Component::kActivations)] > 0);
}

REALM_TEST_MAIN()
