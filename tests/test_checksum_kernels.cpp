#include "tensor/checksum_kernels.h"

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "detect/detect.h"
#include "realm_test.h"
#include "sa/datapath.h"
#include "tensor/checksum.h"
#include "tensor/gemm.h"
#include "tensor/gemm_kernels.h"
#include "tensor/tensor.h"
#include "util/rng.h"
#include "util/threadpool.h"

using namespace realm::tensor;
using realm::tensor::kernels::Tier;

namespace {

/// Restores the pre-test tier even when a REALM_CHECK throws, so one failing
/// case can't leak a forced tier into the rest of the .all run.
struct TierGuard {
  Tier saved = kernels::active_tier();
  ~TierGuard() { kernels::set_active_tier(saved); }
};

/// Same for the global pool size (the determinism case resizes it).
struct ThreadGuard {
  std::size_t saved = realm::util::global_threads();
  ~ThreadGuard() { realm::util::set_global_threads(saved); }
};

std::vector<Tier> supported_tiers() {
  std::vector<Tier> tiers{Tier::kPortable};
  if (kernels::best_supported_tier() >= Tier::kAvx2) tiers.push_back(Tier::kAvx2);
  if (kernels::best_supported_tier() >= Tier::kAvx512) tiers.push_back(Tier::kAvx512);
  return tiers;
}

MatI8 random_i8_full_range(std::size_t rows, std::size_t cols, realm::util::Rng& rng) {
  MatI8 m(rows, cols);
  for (auto& x : m.flat()) x = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  return m;
}

MatI32 random_i32_full_range(std::size_t rows, std::size_t cols, realm::util::Rng& rng) {
  MatI32 m(rows, cols);
  for (auto& x : m.flat()) {
    x = static_cast<std::int32_t>(rng.uniform_int(INT32_MIN, INT32_MAX));
  }
  return m;
}

// Naive int64 references, independent of every kernel tier.

template <typename T>
std::vector<std::int64_t> ref_col_sums(const Mat<T>& m) {
  std::vector<std::int64_t> out(m.cols(), 0);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t j = 0; j < m.cols(); ++j) out[j] += static_cast<std::int64_t>(m(r, j));
  }
  return out;
}

template <typename T>
std::vector<std::int64_t> ref_row_sums(const Mat<T>& m) {
  std::vector<std::int64_t> out(m.rows(), 0);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t j = 0; j < m.cols(); ++j) out[r] += static_cast<std::int64_t>(m(r, j));
  }
  return out;
}

std::vector<std::int64_t> ref_predict_col(const std::vector<std::int64_t>& ea, const MatI8& b) {
  std::vector<std::int64_t> out(b.cols(), 0);
  for (std::size_t kk = 0; kk < b.rows(); ++kk) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      out[j] += ea[kk] * static_cast<std::int64_t>(b(kk, j));
    }
  }
  return out;
}

std::vector<std::int64_t> ref_predict_row(const MatI8& a, const std::vector<std::int64_t>& bv) {
  std::vector<std::int64_t> out(a.rows(), 0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t kk = 0; kk < a.cols(); ++kk) {
      out[r] += static_cast<std::int64_t>(a(r, kk)) * bv[kk];
    }
  }
  return out;
}

}  // namespace

REALM_TEST(col_and_row_sums_match_reference_across_tiers) {
  realm::util::Rng rng(201);
  TierGuard guard;
  // Shapes straddling every vector boundary: the 32/16-column i8 stripes, the
  // 16/8-column i32 stripes, the 256-row int16 flush block (255/256/257), the
  // 64/32-byte row_sums chunks, and single-row/column edges.
  const std::size_t shapes[][2] = {{1, 1},   {1, 33},   {257, 1},  {3, 5},    {255, 16},
                                   {256, 32}, {257, 31}, {64, 100}, {300, 129}, {2, 64},
                                   {31, 65},  {129, 8}};
  for (const auto& s : shapes) {
    const MatI8 m8 = random_i8_full_range(s[0], s[1], rng);
    const MatI32 m32 = random_i32_full_range(s[0], s[1], rng);
    for (const Tier t : supported_tiers()) {
      kernels::set_active_tier(t);
      REALM_CHECK(col_sums(m8) == ref_col_sums(m8));
      REALM_CHECK(col_sums(m32) == ref_col_sums(m32));
      REALM_CHECK(row_sums(m8) == ref_row_sums(m8));
      REALM_CHECK(row_sums(m32) == ref_row_sums(m32));
    }
  }
}

REALM_TEST(i16_block_boundary_and_k_bound_extremes) {
  // 2^16 rows of -128 drives every int16 block accumulator to exactly
  // INT16_MIN at its 256-row flush boundary (256 * -128 = -32768); +127 and
  // alternating extremes stress the other direction and cancellation. These
  // are the adversarial operands of the GEMM k-bound analysis, applied to the
  // checksum screen.
  TierGuard guard;
  const std::size_t kbound = std::size_t{1} << 16;
  const MatI8 lo(kbound, 3, std::int8_t{-128});
  const MatI8 hi(kbound, 3, std::int8_t{127});
  MatI8 alt(257, 33);
  for (std::size_t r = 0; r < alt.rows(); ++r) {
    for (std::size_t j = 0; j < alt.cols(); ++j) alt(r, j) = (r % 2 == 0) ? -128 : 127;
  }
  for (const Tier t : supported_tiers()) {
    kernels::set_active_tier(t);
    for (const auto v : col_sums(lo)) REALM_CHECK_EQ(v, std::int64_t{-128} << 16);
    for (const auto v : col_sums(hi)) REALM_CHECK_EQ(v, std::int64_t{127} << 16);
    REALM_CHECK(col_sums(alt) == ref_col_sums(alt));
    REALM_CHECK(row_sums(alt) == ref_row_sums(alt));
    for (const auto v : row_sums(lo)) REALM_CHECK_EQ(v, std::int64_t{-384});
  }
}

REALM_TEST(predict_checksums_match_reference_across_tiers) {
  realm::util::Rng rng(202);
  TierGuard guard;
  const std::size_t shapes[][3] = {{1, 1, 1},  {3, 5, 7},    {9, 65, 33},  {64, 128, 96},
                                   {17, 2, 50}, {33, 127, 1}, {5, 1, 100},  {300, 31, 17}};
  for (const auto& s : shapes) {
    MatI8 a = random_i8_full_range(s[0], s[1], rng);
    // Force a few zero entries in eᵀA so the av == 0 skip path runs.
    if (a.rows() >= 2) {
      for (std::size_t kk = 0; kk + 1 < a.cols(); kk += 3) {
        a(0, kk) = 17;
        a(1, kk) = -17;
        for (std::size_t r = 2; r < a.rows(); ++r) a(r, kk) = 0;
      }
    }
    const MatI8 b = random_i8_full_range(s[1], s[2], rng);
    const std::vector<std::int64_t> want_col = ref_predict_col(ref_col_sums(a), b);
    const std::vector<std::int64_t> want_row = ref_predict_row(a, ref_col_sums(transpose(b)));
    for (const Tier t : supported_tiers()) {
      kernels::set_active_tier(t);
      REALM_CHECK(predict_col_checksum(a, b) == want_col);
      REALM_CHECK(predict_row_checksum(a, b) == want_row);
      REALM_CHECK(predict_row_checksum(a, row_sums(b)) == want_row);
    }
  }
}

REALM_TEST(predict_kernels_fall_back_on_out_of_range_multipliers) {
  // The SIMD predict paths do 32x32->64 multiplies, so a basis entry outside
  // int32 (unreachable from real matrices below 2^24 rows, but expressible
  // through the raw kernel API) must take the exact scalar path on every tier.
  realm::util::Rng rng(203);
  TierGuard guard;
  const MatI8 b = random_i8_full_range(5, 37, rng);
  const MatI8 a = random_i8_full_range(11, 5, rng);
  const std::vector<std::int64_t> huge = {(std::int64_t{1} << 31) + 7, -1,
                                          -(std::int64_t{1} << 40), INT32_MAX, INT32_MIN};
  const std::vector<std::int64_t> want_col = ref_predict_col(huge, b);
  const std::vector<std::int64_t> want_row = ref_predict_row(a, huge);
  for (const Tier t : supported_tiers()) {
    kernels::set_active_tier(t);
    std::vector<std::int64_t> got_col(b.cols(), -1);
    kernels::predict_col_checksum(huge.data(), b.data(), b.rows(), b.cols(), got_col.data());
    REALM_CHECK(got_col == want_col);
    std::vector<std::int64_t> got_row(a.rows(), -1);
    kernels::predict_row_checksum(a.data(), a.rows(), a.cols(), huge.data(), got_row.data());
    REALM_CHECK(got_row == want_row);
  }
}

REALM_TEST(fused_gemm_colsums_equal_identity_on_all_tiers) {
  // The store-phase fused reduction must equal both eᵀC read back from the
  // output AND the predicted (eᵀA)·B — the checksum identity ProtectedGemm
  // banks on — for every tier, storage order, and tile-edge shape.
  realm::util::Rng rng(204);
  TierGuard guard;
  const std::size_t shapes[][3] = {{1, 1, 1},  {8, 64, 32},  {9, 65, 33},   {4, 16, 16},
                                   {5, 2, 100}, {64, 128, 96}, {17, 129, 65}, {33, 127, 1}};
  for (const auto& s : shapes) {
    const MatI8 a = random_i8_full_range(s[0], s[1], rng);
    const MatI8 b = random_i8_full_range(s[1], s[2], rng);
    for (const Tier t : supported_tiers()) {
      kernels::set_active_tier(t);
      MatI32 c;
      std::vector<std::int64_t> fused(3, 0x7ead);  // wrong size and poisoned
      gemm_i8(a, b, c, &fused);
      REALM_CHECK(fused == col_sums(c));
      REALM_CHECK(fused == predict_col_checksum(a, b));
      const kernels::PackedB pb = kernels::pack_b(b.data(), b.rows(), b.cols());
      MatI32 c2;
      std::vector<std::int64_t> fused2;
      gemm_i8_prepacked(a, b, pb, c2, &fused2);
      REALM_CHECK(c2 == c);
      REALM_CHECK(fused2 == fused);
      MatI32 c3;
      std::vector<std::int64_t> fused3;
      gemm_i8_bt(a, transpose(b), c3, &fused3);
      REALM_CHECK(c3 == c);
      REALM_CHECK(fused3 == fused);
    }
  }
  // k = 0: C and the fused sums are all zero.
  for (const Tier t : supported_tiers()) {
    kernels::set_active_tier(t);
    MatI32 c;
    std::vector<std::int64_t> fused(1, 42);
    gemm_i8(MatI8(4, 0), MatI8(0, 6), c, &fused);
    REALM_CHECK(c == MatI32(4, 6, 0));
    REALM_CHECK(fused == std::vector<std::int64_t>(6, 0));
  }
}

REALM_TEST(sharded_screen_deterministic_across_thread_counts) {
  // Every reduction (and the fused GEMM sums) must be bit-identical at 1, 2,
  // and 8 threads — column bands and row shards write disjoint outputs, and
  // the fused merge is exact integer addition in any order.
  realm::util::Rng rng(205);
  TierGuard tier_guard;
  ThreadGuard thread_guard;
  const MatI8 a = random_i8_full_range(301, 257, rng);
  const MatI8 b = random_i8_full_range(257, 131, rng);
  const MatI32 m32 = random_i32_full_range(301, 131, rng);
  for (const Tier t : supported_tiers()) {
    kernels::set_active_tier(t);
    realm::util::set_global_threads(1);
    const auto want_cols8 = col_sums(a);
    const auto want_cols32 = col_sums(m32);
    const auto want_rows32 = row_sums(m32);
    const auto want_pred_col = predict_col_checksum(a, b);
    const auto want_pred_row = predict_row_checksum(a, row_sums(b));
    MatI32 want_c;
    std::vector<std::int64_t> want_fused;
    gemm_i8(a, b, want_c, &want_fused);
    for (const std::size_t threads : {2, 8}) {
      realm::util::set_global_threads(threads);
      REALM_CHECK(col_sums(a) == want_cols8);
      REALM_CHECK(col_sums(m32) == want_cols32);
      REALM_CHECK(row_sums(m32) == want_rows32);
      REALM_CHECK(predict_col_checksum(a, b) == want_pred_col);
      REALM_CHECK(predict_row_checksum(a, row_sums(b)) == want_pred_row);
      MatI32 c;
      std::vector<std::int64_t> fused;
      gemm_i8(a, b, c, &fused);
      REALM_CHECK(c == want_c);
      REALM_CHECK(fused == want_fused);
    }
    realm::util::set_global_threads(1);
  }
}

REALM_TEST(width_truncated_sums_match_register_model) {
  // The width kernels must equal a literal simulation of `bits`-wide
  // registers fed one element at a time in the pinned accumulation order —
  // at every tier (wrap rides the SIMD reductions) and for both semantics.
  realm::util::Rng rng(0x3d1);
  TierGuard guard;
  for (const Tier tier : supported_tiers()) {
    kernels::set_active_tier(tier);
    for (const auto& [rows, cols] : {std::pair<std::size_t, std::size_t>{7, 13},
                                     {64, 33},
                                     {257, 17}}) {
      const MatI32 m = random_i32_full_range(rows, cols, rng);
      for (const int bits : {8, 16, 31, 64}) {
        for (const bool saturate : {false, true}) {
          std::vector<std::int64_t> cols_out(cols), rows_out(rows);
          kernels::col_sums_i32_width(m.data(), rows, cols, bits, saturate, cols_out.data());
          kernels::row_sums_i32_width(m.data(), rows, cols, bits, saturate, rows_out.data());
          const auto overflow =
              saturate ? realm::sa::Overflow::kSaturate : realm::sa::Overflow::kWrap;
          for (std::size_t j = 0; j < cols; ++j) {
            realm::sa::Reg reg(bits, overflow);
            for (std::size_t r = 0; r < rows; ++r) reg.add(m(r, j));
            REALM_CHECK_EQ(cols_out[j], reg.value());
          }
          for (std::size_t r = 0; r < rows; ++r) {
            realm::sa::Reg reg(bits, overflow);
            for (std::size_t j = 0; j < cols; ++j) reg.add(m(r, j));
            REALM_CHECK_EQ(rows_out[r], reg.value());
          }
        }
      }
      // At 64 bits both semantics reduce to the exact kernels.
      std::vector<std::int64_t> wide(cols);
      kernels::col_sums_i32_width(m.data(), rows, cols, 64, false, wide.data());
      REALM_CHECK(wide == ref_col_sums(m));
    }
  }
}

REALM_TEST(weight_integrity_scrub_detects_corruption) {
  realm::util::Rng rng(206);
  realm::detect::ProtectedGemm pg;
  REALM_CHECK_THROWS(pg.verify_weight_integrity(), std::logic_error);
  pg.set_weights_quantized(random_i8_full_range(33, 29, rng), QuantParams{0.02f});
  REALM_CHECK(pg.weight_col_basis() == col_sums(pg.weights()));
  REALM_CHECK(pg.weight_row_basis() == row_sums(pg.weights()));
  REALM_CHECK(pg.verify_weight_integrity());
  // Corrupt the stationary tile in place (simulating weight-SRAM upset; the
  // public API has no mutator, which is the point of the scrub).
  auto& w = const_cast<MatI8&>(pg.weights());
  const std::int8_t orig = w(7, 11);
  w(7, 11) = static_cast<std::int8_t>(orig ^ 0x40);
  REALM_CHECK(!pg.verify_weight_integrity());
  w(7, 11) = orig;
  REALM_CHECK(pg.verify_weight_integrity());
}

REALM_TEST_MAIN()
