#include "tensor/quant.h"

#include <cmath>

#include "realm_test.h"
#include "tensor/gemm.h"
#include "tensor/tensor.h"
#include "util/rng.h"

using namespace realm::tensor;

REALM_TEST(quantize_dequantize_roundtrip) {
  realm::util::Rng rng(21);
  MatF x(16, 24);
  for (auto& v : x.flat()) v = static_cast<float>(rng.uniform(-4.0, 4.0));
  const QuantParams qp = calibrate(x.flat());
  const MatI8 q8 = quantize(x, qp);
  const MatF back = dequantize(q8, qp);
  // Symmetric INT8: worst-case round-trip error is half a quantization step.
  const float step = qp.scale;
  for (std::size_t i = 0; i < x.size(); ++i) {
    REALM_CHECK(std::abs(back.flat()[i] - x.flat()[i]) <= 0.5f * step + 1e-6f);
  }
  // The calibrated max hits an exact code: |q| == 127 somewhere.
  bool saw_full_scale = false;
  for (const auto q : q8.flat()) {
    if (q == 127 || q == -127) saw_full_scale = true;
  }
  REALM_CHECK(saw_full_scale);
}

REALM_TEST(calibrate_floor_and_clamp) {
  const MatF zeros(4, 4, 0.0f);
  const QuantParams qp = calibrate(zeros.flat());
  REALM_CHECK(qp.scale > 0.0f);  // max_abs_floor prevents a degenerate scale
  // Out-of-range values clamp to +/-127 instead of wrapping.
  REALM_CHECK_EQ(QuantParams{0.01f}.quantize(100.0f), 127);
  REALM_CHECK_EQ(QuantParams{0.01f}.quantize(-100.0f), -127);
}

REALM_TEST(dequantized_gemm_tracks_float_reference) {
  realm::util::Rng rng(22);
  MatF a(8, 32), b(32, 8);
  for (auto& v : a.flat()) v = static_cast<float>(rng.normal());
  for (auto& v : b.flat()) v = static_cast<float>(rng.normal());
  const QuantParams qa = calibrate(a.flat());
  const QuantParams qb = calibrate(b.flat());
  const MatF approx = dequantize_acc(gemm_i8(quantize(a, qa), quantize(b, qb)), qa, qb);
  const MatF exact = gemm_f32(a, b);
  // W8A8 quantization noise over k=32: loose tolerance, but catches any
  // scale-handling mistake (those show up as O(1) relative errors).
  for (std::size_t i = 0; i < exact.size(); ++i) {
    REALM_CHECK(std::abs(approx.flat()[i] - exact.flat()[i]) < 0.5f);
  }
}

REALM_TEST_MAIN()
