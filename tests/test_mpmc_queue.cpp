#include "util/mpmc_queue.h"

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "realm_test.h"

using realm::util::MpmcQueue;

REALM_TEST(fifo_order_and_close_semantics) {
  MpmcQueue<int> q(8);
  for (int i = 0; i < 5; ++i) REALM_CHECK(q.push(i));
  REALM_CHECK_EQ(q.size(), std::size_t{5});
  q.close();
  // close() is a graceful end-of-input: queued items still drain, in order.
  int v = -1;
  for (int i = 0; i < 5; ++i) {
    REALM_CHECK(q.pop(v));
    REALM_CHECK_EQ(v, i);
  }
  REALM_CHECK(!q.pop(v));      // closed and drained
  REALM_CHECK(!q.push(99));    // producers see closed immediately
  REALM_CHECK(q.closed());
  q.close();                   // idempotent
  REALM_CHECK_THROWS(MpmcQueue<int>(0), std::invalid_argument);
}

REALM_TEST(capacity_bound_applies_backpressure) {
  // A capacity-1 queue forces the producer to park until the consumer pops:
  // the queue depth can never exceed the bound, and nothing is lost.
  MpmcQueue<int> q(1);
  constexpr int kItems = 64;
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) q.push(i);
    q.close();
  });
  int v = -1;
  int received = 0;
  while (q.pop(v)) {
    REALM_CHECK_EQ(v, received);  // FIFO preserved through the blocking
    REALM_CHECK(q.size() <= 1);
    ++received;
  }
  producer.join();
  REALM_CHECK_EQ(received, kItems);
}

REALM_TEST(many_producers_many_consumers_deliver_each_item_once) {
  MpmcQueue<std::uint64_t> q(4);
  constexpr std::uint64_t kProducers = 3, kConsumers = 4, kPerProducer = 200;
  std::atomic<std::uint64_t> popped_sum{0}, popped_count{0};
  std::vector<std::thread> threads;
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) q.push(p * kPerProducer + i);
    });
  }
  std::vector<std::thread> consumers;
  for (std::uint64_t c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      std::uint64_t v = 0;
      while (q.pop(v)) {
        popped_sum.fetch_add(v, std::memory_order_relaxed);
        popped_count.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();
  q.close();
  for (auto& t : consumers) t.join();
  const std::uint64_t n = kProducers * kPerProducer;
  REALM_CHECK_EQ(popped_count.load(), n);
  REALM_CHECK_EQ(popped_sum.load(), n * (n - 1) / 2);  // each value exactly once
}

REALM_TEST_MAIN()
