#include "util/mpmc_queue.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "realm_test.h"

using realm::util::MpmcQueue;
using realm::util::PriorityMpmcQueue;

REALM_TEST(fifo_order_and_close_semantics) {
  MpmcQueue<int> q(8);
  for (int i = 0; i < 5; ++i) REALM_CHECK(q.push(i));
  REALM_CHECK_EQ(q.size(), std::size_t{5});
  q.close();
  // close() is a graceful end-of-input: queued items still drain, in order.
  int v = -1;
  for (int i = 0; i < 5; ++i) {
    REALM_CHECK(q.pop(v));
    REALM_CHECK_EQ(v, i);
  }
  REALM_CHECK(!q.pop(v));      // closed and drained
  REALM_CHECK(!q.push(99));    // producers see closed immediately
  REALM_CHECK(q.closed());
  q.close();                   // idempotent
  REALM_CHECK_THROWS(MpmcQueue<int>(0), std::invalid_argument);
}

REALM_TEST(capacity_bound_applies_backpressure) {
  // A capacity-1 queue forces the producer to park until the consumer pops:
  // the queue depth can never exceed the bound, and nothing is lost.
  MpmcQueue<int> q(1);
  constexpr int kItems = 64;
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) q.push(i);
    q.close();
  });
  int v = -1;
  int received = 0;
  while (q.pop(v)) {
    REALM_CHECK_EQ(v, received);  // FIFO preserved through the blocking
    REALM_CHECK(q.size() <= 1);
    ++received;
  }
  producer.join();
  REALM_CHECK_EQ(received, kItems);
}

REALM_TEST(many_producers_many_consumers_deliver_each_item_once) {
  MpmcQueue<std::uint64_t> q(4);
  constexpr std::uint64_t kProducers = 3, kConsumers = 4, kPerProducer = 200;
  std::atomic<std::uint64_t> popped_sum{0}, popped_count{0};
  std::vector<std::thread> threads;
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) q.push(p * kPerProducer + i);
    });
  }
  std::vector<std::thread> consumers;
  for (std::uint64_t c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      std::uint64_t v = 0;
      while (q.pop(v)) {
        popped_sum.fetch_add(v, std::memory_order_relaxed);
        popped_count.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();
  q.close();
  for (auto& t : consumers) t.join();
  const std::uint64_t n = kProducers * kPerProducer;
  REALM_CHECK_EQ(popped_count.load(), n);
  REALM_CHECK_EQ(popped_sum.load(), n * (n - 1) / 2);  // each value exactly once
}

REALM_TEST(close_with_queued_items_drains_before_reporting_end) {
  // Shutdown edge: close() with a full queue and concurrent consumers. Every
  // queued item must still be delivered (in order, observed per consumer via
  // a monotonicity check) before pop() starts returning false — close is
  // end-of-input, not discard.
  MpmcQueue<int> q(16);
  for (int i = 0; i < 16; ++i) REALM_CHECK(q.push(i));
  q.close();
  REALM_CHECK(!q.push(100));  // rejected while items are still queued
  std::atomic<int> delivered{0};
  std::vector<std::thread> consumers;
  std::atomic<bool> order_ok{true};
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      int v = -1;
      int last = -1;
      while (q.pop(v)) {
        if (v <= last) order_ok = false;  // FIFO: each consumer sees increasing values
        last = v;
        delivered.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : consumers) t.join();
  REALM_CHECK(order_ok.load());
  REALM_CHECK_EQ(delivered.load(), 16);
  int v = -1;
  REALM_CHECK(!q.pop(v));  // drained and closed: end of stream is sticky
  REALM_CHECK_EQ(q.size(), std::size_t{0});
}

REALM_TEST(close_releases_blocked_producers_and_consumers) {
  // Shutdown edge: threads parked inside push (queue full) and pop (queue
  // empty) when close() lands must both wake and return false — a missed
  // notify here is a hang, which the ctest timeout would surface.
  MpmcQueue<int> full(1);
  REALM_CHECK(full.push(0));
  std::atomic<bool> push_result{true};
  std::thread producer([&] { push_result = full.push(1); });  // parks: queue is full
  MpmcQueue<int> empty(1);
  std::atomic<bool> pop_result{true};
  std::thread consumer([&] {
    int v = -1;
    pop_result = empty.pop(v);  // parks: queue is empty
  });
  // Give both threads a chance to reach their condvar waits before closing.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  full.close();
  empty.close();
  producer.join();
  consumer.join();
  REALM_CHECK(!push_result.load());  // blocked push observes close, rejects
  REALM_CHECK(!pop_result.load());   // blocked pop observes close, ends stream
  int v = -1;
  REALM_CHECK(full.pop(v));  // the pre-close item still drains
  REALM_CHECK_EQ(v, 0);
}

REALM_TEST(stressed_mpmc_with_mid_stream_close_loses_nothing_already_queued) {
  // TSan-stressed shutdown: many producers race many consumers through a
  // tiny queue while the main thread closes mid-stream. Accepted pushes and
  // successful pops must balance exactly — close may refuse new items but
  // can never drop an accepted one or double-deliver under contention.
  constexpr int kProducers = 4, kConsumers = 4;
  MpmcQueue<std::uint64_t> q(2);
  std::atomic<std::uint64_t> pushed_sum{0}, popped_sum{0};
  std::atomic<std::uint64_t> pushed_count{0}, popped_count{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (std::uint64_t i = 1; i <= 500; ++i) {
        const std::uint64_t v = static_cast<std::uint64_t>(p) * 1000 + i;
        if (!q.push(v)) break;  // close() observed: stop producing
        pushed_sum.fetch_add(v, std::memory_order_relaxed);
        pushed_count.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      std::uint64_t v = 0;
      while (q.pop(v)) {
        popped_sum.fetch_add(v, std::memory_order_relaxed);
        popped_count.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  q.close();  // mid-stream: producers mid-push, consumers mid-pop
  for (auto& t : threads) t.join();
  REALM_CHECK_EQ(popped_count.load(), pushed_count.load());
  REALM_CHECK_EQ(popped_sum.load(), pushed_sum.load());
  std::uint64_t v = 0;
  REALM_CHECK(!q.pop(v));  // nothing stranded in the ring
}

REALM_TEST(priority_lanes_pop_in_priority_order) {
  // Lane 0 is most urgent; pop() always drains the lowest non-empty lane and
  // preserves FIFO within a lane regardless of push interleaving.
  PriorityMpmcQueue<int> q(8, 3);
  REALM_CHECK_EQ(q.lane_count(), std::size_t{3});
  REALM_CHECK(q.push(20, 2));
  REALM_CHECK(q.push(10, 1));
  REALM_CHECK(q.push(21, 2));
  REALM_CHECK(q.push(0, 0));
  REALM_CHECK(q.push(11, 1));
  REALM_CHECK_EQ(q.size(), std::size_t{5});  // size is TOTAL across lanes
  int v = -1;
  const int want[] = {0, 10, 11, 20, 21};
  for (const int w : want) {
    REALM_CHECK(q.pop(v));
    REALM_CHECK_EQ(v, w);
  }
  // Lane indices are validated loudly, and degenerate shapes are rejected.
  REALM_CHECK_THROWS(q.push(1, 3), std::out_of_range);
  REALM_CHECK_THROWS(q.try_push(1, 99), std::out_of_range);
  REALM_CHECK_THROWS(PriorityMpmcQueue<int>(0, 3), std::invalid_argument);
  REALM_CHECK_THROWS(PriorityMpmcQueue<int>(8, 0), std::invalid_argument);
}

REALM_TEST(priority_try_push_sheds_load_at_capacity) {
  // The admission bound is shared across lanes: once TOTAL depth hits
  // capacity, try_push rejects on EVERY lane — urgency does not buy a
  // deeper queue, only an earlier pop.
  PriorityMpmcQueue<int> q(2, 3);
  REALM_CHECK(q.try_push(1, 2));
  REALM_CHECK(q.try_push(2, 1));
  REALM_CHECK(!q.try_push(3, 0));  // full: even the urgent lane is refused
  REALM_CHECK_EQ(q.size(), q.capacity());
  int v = -1;
  REALM_CHECK(q.pop(v));
  REALM_CHECK_EQ(v, 2);            // lane 1 outranks lane 2
  REALM_CHECK(q.try_push(3, 0));   // a pop frees shared budget for any lane
  q.close();
  REALM_CHECK(!q.try_push(9, 0));  // closed beats non-full
}

REALM_TEST(priority_close_drains_lanes_in_order_and_releases_blocked) {
  // close() is end-of-input, not discard: queued items across all lanes
  // drain in strict priority order before pop() reports end of stream, and a
  // producer parked on a full queue wakes with a rejection.
  PriorityMpmcQueue<int> q(3, 2);
  REALM_CHECK(q.push(5, 1));
  REALM_CHECK(q.push(6, 1));
  REALM_CHECK(q.push(1, 0));
  std::atomic<bool> push_result{true};
  std::thread producer([&] { push_result = q.push(7, 0); });  // parks: full
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  producer.join();
  REALM_CHECK(!push_result.load());
  int v = -1;
  const int want[] = {1, 5, 6};  // urgent lane first, then lane-1 FIFO
  for (const int w : want) {
    REALM_CHECK(q.pop(v));
    REALM_CHECK_EQ(v, w);
  }
  REALM_CHECK(!q.pop(v));  // drained + closed
  REALM_CHECK(q.closed());
}

REALM_TEST_MAIN()
