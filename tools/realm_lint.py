#!/usr/bin/env python3
"""realm-lint — repo-specific invariant checker for the ReaLM tree.

clang-tidy knows C++; it does not know this repo's contracts. realm-lint
enforces the invariants the test suite can only sample:

  rng-fork        Rng objects constructed inside a parallel_for body, a
                  worker_loop function body, or a component-stream
                  construction site (any function named component_stream or
                  corrupt*) must be derived with .fork(...) — or obtained via
                  fault::component_stream(...), which forks internally — from
                  a stream owned outside the body. A raw seed constructed
                  per-chunk (or per-worker, or per-component via seed
                  arithmetic) silently couples the random stream to the
                  chunking / claim order / component mix, breaking the
                  bit-exactness contract. `worker_loop` is the serving
                  engine's convention for persistent work-claiming loops, and
                  `component_stream`/`corrupt*` is the memory-hierarchy fault
                  model's convention for per-component stream derivation —
                  any function with those names is held to the forked-stream
                  rule.
  sat-math        Deviation/accumulation statements on 64-bit sums in
                  src/detect and src/sa must go through the util/bitmath
                  helpers (sat_add/sat_sub/wrap_to_bits/clamp_to_bits).
                  A raw + or - on an int64 deviation sum can wrap, and a
                  wrapped MSD is exactly the failure mode the screen exists
                  to catch.
  avx512-pragma   Every AVX-512 region (any `target("avx512...")` attribute)
                  must sit between REALM_BEGIN_AVX512_SECTION and
                  REALM_END_AVX512_SECTION (src/util/compiler.h), which carry
                  the GCC PR105593 -Wmaybe-uninitialized suppression. Raw
                  `#pragma GCC diagnostic` outside compiler.h is rejected so
                  the suppression cannot fork into per-file copies.
  rng-source      No rand()/srand()/std::mt19937/std::random_device outside
                  src/util/rng.*. All randomness flows through util::Rng so
                  every experiment is replayable from one seed.
  clock-source    No std::chrono clock reads (steady_clock / system_clock /
                  high_resolution_clock) or POSIX clock calls in src/ or
                  bench/ outside src/util/clock.h. Timing flows through
                  util::Clock / util::now_ns() so tests can inject a
                  ManualClock and traces/deadlines stay deterministic; a raw
                  clock read is invisible to that injection.
  rescreen        An in-place accumulator mutation in src/detect (writing
                  through an `*acc*` call/index expression, the corrector's
                  patch idiom) must be followed by a screen_accumulator(...)
                  re-check later in the same function. A patch that is not
                  re-screened can silently accept a wrong algebraic solve —
                  the certified-or-recompute contract in detect/correct.h.
  header-tu       Every header under src/ compiles as its own translation
                  unit (include-what-you-use at file granularity).

Suppressing a finding: append `// realm-lint: allow(<rule>): <rationale>` to
the offending line (or the line directly above it). The rationale is
mandatory — a bare allow is itself a finding.

usage: realm_lint.py [--root DIR] [--no-headers] [--cxx COMPILER] [FILE ...]

FILE arguments are root-relative and restrict text rules to those files
(used by the fixture self-tests). Exit 0 when clean, 1 on findings, 2 on
usage errors.
"""

import argparse
import os
import pathlib
import re
import shutil
import subprocess
import sys
import tempfile

SOURCE_GLOBS = ("src/**/*.h", "src/**/*.cpp", "bench/*.cpp", "tools/*.cpp", "tests/*.cpp",
                "tests/*.h")
SAT_MATH_DIRS = ("src/detect", "src/sa")
RNG_HOME = ("src/util/rng.h", "src/util/rng.cpp")
SAT_HELPERS = re.compile(r"\b(sat_add_i64|sat_add_u64|sat_sub_i64|wrap_to_bits|clamp_to_bits)\b")
ALLOW_RE = re.compile(r"//\s*realm-lint:\s*allow\(([a-z0-9-]+)\)(:\s*\S.*)?")
RULES = ("rng-fork", "sat-math", "avx512-pragma", "rng-source", "clock-source", "rescreen",
         "header-tu")
CLOCK_HOME = "src/util/clock.h"
CLOCK_SCOPE = ("src/", "bench/")
RESCREEN_DIRS = ("src/detect",)


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text, keep_strings=False):
    """Blank out comments (and, unless keep_strings, string/char literals),
    preserving line structure.

    Rule regexes must not fire on prose ("std::mt19937" in a comment) or on
    quoted text; blanking (rather than deleting) keeps line/column numbers
    stable. Escapes inside literals are honoured; raw strings are handled for
    the delimiters this tree actually uses (plain R"( )"). keep_strings is
    for the avx512-pragma rule, whose `target("avx512...")` signature lives
    inside a string literal.
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            chunk = text[i:j + 2]
            out.append("".join(ch if ch == "\n" else " " for ch in chunk))
            i = j + 2
        elif c == '"' and text[i - 1:i + 2] == 'R"(':
            j = text.find(')"', i + 2)
            j = n - 2 if j < 0 else j
            chunk = text[i:j + 2]
            out.append("".join(ch if ch == "\n" else " " for ch in chunk))
            i = j + 2
        elif c in "\"'":
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            out.append(text[i:j + 1] if keep_strings else c + " " * (j - i - 1) + c)
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def allows_for_line(raw_lines, lineno):
    """Collect allow(<rule>) pragmas on this line or the line above (1-based)."""
    rules = set()
    bad = []
    for ln in (lineno - 1, lineno):
        if 1 <= ln <= len(raw_lines):
            m = ALLOW_RE.search(raw_lines[ln - 1])
            if m:
                if not m.group(2):
                    bad.append(ln)
                rules.add(m.group(1))
    return rules, bad


def lambda_body_spans(code, call_re):
    """Return (start, end) offsets of the outermost {...} of each lambda
    argument of a call matched by call_re. Brace matching on comment-stripped
    text; nested lambdas stay inside the span."""
    spans = []
    for m in call_re.finditer(code):
        # Find the matching ')' of the call, tracking the first '{' inside.
        depth = 0
        body_start = None
        i = m.end() - 1  # at '('
        while i < len(code):
            c = code[i]
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
                if depth == 0:
                    break
            elif c == "{" and body_start is None:
                body_start = i
            i += 1
        if body_start is None:
            continue
        bdepth = 0
        j = body_start
        while j < len(code):
            if code[j] == "{":
                bdepth += 1
            elif code[j] == "}":
                bdepth -= 1
                if bdepth == 0:
                    break
            j += 1
        spans.append((body_start, j + 1))
    return spans


PARALLEL_FOR_RE = re.compile(r"\bparallel_for\s*\(")
WORKER_LOOP_RE = re.compile(r"\bworker_loop\s*\(")
# Component-stream construction sites: the memory-hierarchy fault model's
# stream-derivation helpers (fault/memory.*) and any corrupt* routine that
# draws flips for a component. Additive seed mixing here would couple one
# component's stream to another's parameters.
COMPONENT_STREAM_RE = re.compile(r"\b(?:component_stream|corrupt\w*)\s*\(")
RNG_DECL_RE = re.compile(r"\b(?:util::)?Rng\s+(\w+)\s*[({=]")
RNG_TEMP_RE = re.compile(r"(?<![\w:.])(?:util::)?Rng\s*\(")


def function_body_spans(code, name_re):
    """Return (start, end) offsets of the {...} body of each DEFINITION of a
    function matched by name_re. Calls (`worker_loop();`) and declarations
    (`void worker_loop();`) are skipped: after the parameter list's ')' only
    whitespace and word-like qualifiers (const, noexcept, override) may
    precede the '{' of a definition."""
    spans = []
    for m in name_re.finditer(code):
        depth = 0
        i = m.end() - 1  # at '('
        while i < len(code):
            c = code[i]
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        j = i + 1
        while j < len(code) and (code[j].isspace() or code[j].isalnum() or code[j] == "_"):
            j += 1
        if j >= len(code) or code[j] != "{":
            continue
        bdepth = 0
        k = j
        while k < len(code):
            if code[k] == "{":
                bdepth += 1
            elif code[k] == "}":
                bdepth -= 1
                if bdepth == 0:
                    break
            k += 1
        spans.append((j, k + 1))
    return spans


def check_rng_fork(path, code, raw_lines, findings):
    scopes = [(span, "a parallel_for body", "per-chunk seeds tie results to the thread count")
              for span in lambda_body_spans(code, PARALLEL_FOR_RE)]
    scopes += [(span, "a worker_loop body",
                "per-worker seeds tie results to the claim order and worker count")
               for span in function_body_spans(code, WORKER_LOOP_RE)]
    scopes += [(span, "a component-stream construction site",
                "additive seed mixing couples one component's stream to the others")
               for span in function_body_spans(code, COMPONENT_STREAM_RE)]
    for (start, end), where, why in scopes:
        body = code[start:end]
        for m in RNG_DECL_RE.finditer(body):
            stmt_end = body.find(";", m.start())
            stmt = body[m.start():stmt_end if stmt_end >= 0 else len(body)]
            if ".fork(" in stmt or "component_stream(" in stmt:
                continue
            lineno = code.count("\n", 0, start + m.start()) + 1
            allowed, bad = allows_for_line(raw_lines, lineno)
            note_bare_allows(path, bad, findings)
            if "rng-fork" in allowed:
                continue
            findings.append(Finding(
                path, lineno, "rng-fork",
                f"Rng '{m.group(1)}' constructed inside {where} without "
                f".fork(...); {why}"))


# An updating statement: `name op= ...` or `name = ...` or a declaration
# `std::int64_t name = ...`; flagged when the RHS performs a binary +/-.
INT64_DECL_RE = re.compile(r"\b(?:std::)?u?int64_t\s+(\w+)\s*[=({]")
BINARY_PM_RE = re.compile(r"[\w)\]]\s*(\+|-)\s*[\w(]")


def check_sat_math(path, code, raw_lines, findings):
    if not str(path).replace(os.sep, "/").startswith(SAT_MATH_DIRS):
        return
    tracked = set(INT64_DECL_RE.findall(code))
    if not tracked:
        return
    # Statement-wise scan: join to ';' so multi-line statements are whole.
    for stmt, lineno in statements_of(code):
        m = re.match(r"\s*(?:const\s+)?(?:(?:std::)?u?int64_t\s+)?(\w+)(?:\.\w+|\[[^\]]*\])?\s*"
                     r"(\+=|-=|=)(?!=)", stmt)
        if not m or m.group(1) not in tracked:
            continue
        rhs = stmt[m.end():]
        if m.group(2) in ("+=", "-="):
            has_raw = True
        else:
            has_raw = bool(BINARY_PM_RE.search(rhs)) and "++" not in rhs and "--" not in rhs
        if not has_raw or SAT_HELPERS.search(stmt):
            continue
        allowed, bad = allows_for_line(raw_lines, lineno)
        note_bare_allows(path, bad, findings)
        if "sat-math" in allowed:
            continue
        findings.append(Finding(
            path, lineno, "sat-math",
            f"raw {m.group(2)} on 64-bit sum '{m.group(1)}'; deviation math in "
            f"{' and '.join(SAT_MATH_DIRS)} must use util/bitmath "
            f"(sat_add/sat_sub/wrap_to_bits/clamp_to_bits)"))


def statements_of(code):
    """Yield (statement, first_line_number) pairs, splitting on ';'."""
    start = 0
    for i, c in enumerate(code):
        if c in ";{}":
            stmt = code[start:i]
            if stmt.strip():
                yield stmt, code.count("\n", 0, start) + 1 + leading_newlines(stmt)
            start = i + 1


def leading_newlines(s):
    return len(s) - len(s.lstrip("\n")) if s.startswith("\n") else 0


AVX512_TARGET_RE = re.compile(r"target\s*\(\s*\"avx512")
RAW_DIAG_RE = re.compile(r"#\s*pragma\s+GCC\s+diagnostic")


def check_avx512_pragma(path, code, raw_lines, findings):
    rel = str(path).replace(os.sep, "/")
    if rel.endswith("src/util/compiler.h") or rel == "src/util/compiler.h":
        return
    for m in RAW_DIAG_RE.finditer(code):
        lineno = code.count("\n", 0, m.start()) + 1
        allowed, bad = allows_for_line(raw_lines, lineno)
        note_bare_allows(path, bad, findings)
        if "avx512-pragma" in allowed:
            continue
        findings.append(Finding(
            path, lineno, "avx512-pragma",
            "raw '#pragma GCC diagnostic' outside src/util/compiler.h; use "
            "REALM_BEGIN_AVX512_SECTION / REALM_END_AVX512_SECTION"))
    # Region tracking: every target("avx512...") must be inside a section.
    events = [(m.start(), "begin") for m in re.finditer(r"\bREALM_BEGIN_AVX512_SECTION\b", code)]
    events += [(m.start(), "end") for m in re.finditer(r"\bREALM_END_AVX512_SECTION\b", code)]
    events += [(m.start(), "target") for m in AVX512_TARGET_RE.finditer(code)]
    events.sort()
    depth = 0
    for pos, kind in events:
        lineno = code.count("\n", 0, pos) + 1
        if kind == "begin":
            depth += 1
        elif kind == "end":
            depth -= 1
            if depth < 0:
                findings.append(Finding(path, lineno, "avx512-pragma",
                                        "REALM_END_AVX512_SECTION without matching begin"))
                depth = 0
        else:
            if depth == 0:
                allowed, bad = allows_for_line(raw_lines, lineno)
                note_bare_allows(path, bad, findings)
                if "avx512-pragma" in allowed:
                    continue
                findings.append(Finding(
                    path, lineno, "avx512-pragma",
                    'target("avx512...") region not wrapped in '
                    "REALM_BEGIN_AVX512_SECTION / REALM_END_AVX512_SECTION "
                    "(GCC PR105593 suppression missing)"))
    if depth > 0:
        findings.append(Finding(path, len(raw_lines), "avx512-pragma",
                                "REALM_BEGIN_AVX512_SECTION without matching end"))


FORBIDDEN_RNG_RE = re.compile(
    r"\b(?:std::)?(mt19937(?:_64)?|random_device|minstd_rand0?|default_random_engine)\b"
    r"|(?<![\w.:])s?rand\s*\(|(?<![\w.:])drand48\s*\(")


def check_rng_source(path, code, raw_lines, findings):
    rel = str(path).replace(os.sep, "/")
    if rel in RNG_HOME:
        return
    for m in FORBIDDEN_RNG_RE.finditer(code):
        lineno = code.count("\n", 0, m.start()) + 1
        allowed, bad = allows_for_line(raw_lines, lineno)
        note_bare_allows(path, bad, findings)
        if "rng-source" in allowed:
            continue
        findings.append(Finding(
            path, lineno, "rng-source",
            f"'{m.group(0).strip()}' outside src/util/rng; all randomness must flow "
            f"through util::Rng so runs replay from one seed"))


FORBIDDEN_CLOCK_RE = re.compile(
    r"\b(steady_clock|system_clock|high_resolution_clock)\b"
    r"|(?<![\w.:])(clock_gettime|gettimeofday)\s*\(")


def check_clock_source(path, code, raw_lines, findings):
    rel = str(path).replace(os.sep, "/")
    if rel == CLOCK_HOME or not rel.startswith(CLOCK_SCOPE):
        return
    for m in FORBIDDEN_CLOCK_RE.finditer(code):
        lineno = code.count("\n", 0, m.start()) + 1
        allowed, bad = allows_for_line(raw_lines, lineno)
        note_bare_allows(path, bad, findings)
        if "clock-source" in allowed:
            continue
        findings.append(Finding(
            path, lineno, "clock-source",
            f"'{m.group(0).strip()}' outside {CLOCK_HOME}; timing must flow through "
            f"util::Clock / util::now_ns() so a ManualClock can be injected "
            f"(deterministic traces and deadlines)"))


# Writing through an accumulator-ish lvalue: `acc(i, j) = ...`,
# `out_acc[idx] += ...` — the corrector's in-place patch idiom.
ACC_MUTATE_RE = re.compile(r"\b(\w*acc\w*)\s*(?:\([^()]*\)|\[[^\]]*\])\s*(\+=|-=|=)(?!=)")
SCREEN_CALL_RE = re.compile(r"\bscreen_accumulator\s*\(")
# Any plausible function definition: identifier + parameter list + body brace,
# minus the control-flow keywords that share that shape.
FUNC_DEF_NAME_RE = re.compile(
    r"\b(?!if\b|for\b|while\b|switch\b|catch\b|return\b|sizeof\b|constexpr\b|noexcept\b)"
    r"[A-Za-z_]\w*\s*\(")


def check_rescreen(path, code, raw_lines, findings):
    if not str(path).replace(os.sep, "/").startswith(RESCREEN_DIRS):
        return
    spans = None  # computed lazily; most detect files never patch in place
    for m in ACC_MUTATE_RE.finditer(code):
        if spans is None:
            spans = function_body_spans(code, FUNC_DEF_NAME_RE)
        containing = [s for s in spans if s[0] <= m.start() < s[1]]
        if not containing:
            continue  # file-scope initializer, not a patch site
        # Innermost enclosing definition: spans nest, so the latest start wins.
        _, end = max(containing, key=lambda s: s[0])
        if SCREEN_CALL_RE.search(code, m.end(), end):
            continue
        lineno = code.count("\n", 0, m.start()) + 1
        allowed, bad = allows_for_line(raw_lines, lineno)
        note_bare_allows(path, bad, findings)
        if "rescreen" in allowed:
            continue
        findings.append(Finding(
            path, lineno, "rescreen",
            f"in-place mutation of '{m.group(1)}' with no screen_accumulator(...) "
            f"re-check later in the same function; an unverified patch can accept "
            f"a wrong algebraic solve (see detect/correct.h)"))


def note_bare_allows(path, bad_lines, findings):
    for ln in bad_lines:
        findings.append(Finding(path, ln, "allow-rationale",
                                "realm-lint allow() without a rationale; write "
                                "'// realm-lint: allow(<rule>): <why>'"))


def check_headers(root, headers, cxx, findings):
    """Each header must compile as its own TU (self-contained includes)."""
    if shutil.which(cxx) is None:
        print(f"realm-lint: note: '{cxx}' not found; skipping header-tu checks",
              file=sys.stderr)
        return
    with tempfile.TemporaryDirectory() as td:
        for h in headers:
            tu = pathlib.Path(td) / "tu.cpp"
            tu.write_text(f'#include "{h.relative_to(root / "src")}"\n')
            proc = subprocess.run(
                [cxx, "-std=c++20", "-fsyntax-only", "-Wall", "-Wextra",
                 "-I", str(root / "src"), "-I", str(root / "tests"), str(tu)],
                capture_output=True, text=True)
            if proc.returncode != 0:
                first = next((l for l in proc.stderr.splitlines() if "error" in l), "")
                findings.append(Finding(
                    h.relative_to(root), 1, "header-tu",
                    f"header does not compile as a standalone TU: {first.strip()}"))


def gather_files(root, explicit):
    if explicit:
        files = []
        for f in explicit:
            p = root / f
            if not p.exists():
                print(f"realm-lint: no such file: {f}", file=sys.stderr)
                sys.exit(2)
            files.append(p)
        return files
    files = []
    for pattern in SOURCE_GLOBS:
        files.extend(root.glob(pattern))
    return sorted(set(files))


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("files", nargs="*",
                    help="root-relative files to restrict the text rules to")
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of this script)")
    ap.add_argument("--no-headers", action="store_true",
                    help="skip the header-tu compile checks")
    ap.add_argument("--cxx", default=os.environ.get("CXX", "c++"),
                    help="compiler for header-tu checks (default: $CXX or c++)")
    args = ap.parse_args()

    root = pathlib.Path(args.root) if args.root else pathlib.Path(__file__).resolve().parents[1]
    if not root.is_dir():
        print(f"realm-lint: no such root: {root}", file=sys.stderr)
        return 2

    findings = []
    for f in gather_files(root, args.files):
        rel = f.relative_to(root)
        raw = f.read_text(encoding="utf-8")
        raw_lines = raw.splitlines()
        code = strip_comments_and_strings(raw)
        check_rng_fork(rel, code, raw_lines, findings)
        check_sat_math(rel, code, raw_lines, findings)
        check_avx512_pragma(rel, strip_comments_and_strings(raw, keep_strings=True),
                            raw_lines, findings)
        check_rng_source(rel, code, raw_lines, findings)
        check_clock_source(rel, code, raw_lines, findings)
        check_rescreen(rel, code, raw_lines, findings)

    if not args.no_headers:
        headers = sorted((root / "src").glob("**/*.h")) if (root / "src").is_dir() else []
        if args.files:
            wanted = {str(pathlib.Path(f)) for f in args.files}
            headers = [h for h in headers if str(h.relative_to(root)) in wanted]
        check_headers(root, headers, args.cxx, findings)

    for fi in findings:
        print(fi)
    scope = f"{len(args.files)} file(s)" if args.files else "tree"
    print(f"realm-lint: {scope} checked, {len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
