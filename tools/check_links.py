#!/usr/bin/env python3
"""Markdown link checker for the docs CI job.

Scans the given markdown files / directories for inline links and images
(``[text](target)``) and fails (exit 1) when:

  * a relative file or directory target does not exist,
  * an in-file anchor (``#section``) or cross-file anchor
    (``other.md#section``) does not match any heading in the target file.

Anchors are matched against GitHub-style slugs of ATX headings (lowercase;
spaces to hyphens; punctuation dropped; ``-1``/``-2`` suffixes for duplicate
headings). Fenced code blocks are ignored so shell snippets with brackets do
not register as links. External http(s)/mailto links are skipped — CI has no
business depending on the wider internet being up.

usage: check_links.py PATH [PATH ...]
"""

import functools
import pathlib
import re
import sys

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
FENCE_RE = re.compile(r"^(```|~~~)")


def strip_fences(text):
    out, fenced = [], False
    for line in text.splitlines():
        if FENCE_RE.match(line.strip()):
            fenced = not fenced
            continue
        out.append("" if fenced else line)
    return "\n".join(out)


def slugify(heading):
    # Drop inline code/links markup, then GitHub's slug rules.
    heading = re.sub(r"[`*_]", "", heading)
    heading = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    heading = heading.strip().lower()
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


@functools.lru_cache(maxsize=None)
def anchors_of(path):
    slugs = {}
    seen = {}
    for line in strip_fences(path.read_text(encoding="utf-8")).splitlines():
        m = HEADING_RE.match(line)
        if not m:
            continue
        slug = slugify(m.group(1))
        n = seen.get(slug, 0)
        seen[slug] = n + 1
        slugs[slug if n == 0 else f"{slug}-{n}"] = True
    return slugs


def check_file(md, errors):
    text = strip_fences(md.read_text(encoding="utf-8"))
    for m in LINK_RE.finditer(text):
        target = m.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, anchor = target.partition("#")
        dest = md if not path_part else (md.parent / path_part).resolve()
        if path_part and not dest.exists():
            errors.append(f"{md}: broken link -> {target} (no such file)")
            continue
        if anchor:
            if dest.is_dir() or dest.suffix.lower() not in (".md", ".markdown"):
                errors.append(f"{md}: anchor into non-markdown target -> {target}")
            elif anchor not in anchors_of(dest):
                errors.append(f"{md}: broken anchor -> {target}")


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    files = []
    for arg in argv[1:]:
        p = pathlib.Path(arg)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.md")))
        elif p.exists():
            files.append(p)
        else:
            print(f"check_links: no such path: {arg}")
            return 2
    errors = []
    for md in files:
        check_file(md, errors)
    for e in errors:
        print(e)
    print(f"check_links: {len(files)} file(s), {len(errors)} broken link(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
