// Coverage / ROC characterization driver over the realm::sa reduced-width
// datapath model: sweeps BER × flipped-bit-position × shape, screens every
// seeded fault draw at each checksum width plus the int64 reference, prints
// the per-width critical-region maps (Fig. 6 axes) and the coverage-vs-width
// summary, and optionally writes CSV/JSON records for CI artifacts.
//
// Exits nonzero if a wrap-overflow sweep produces a non-monotone coverage
// curve (detected at width w must never exceed detected at width w' > w —
// guaranteed by the nesting argument in sa/datapath.h, so a violation means
// the model itself regressed), if the single-fault patch rate at the
// full-width datapath falls below 100% (exact deviations always solve a lone
// corrupted element — see detect/correct.h), or if the load/rest scrub
// missed a net weight/panel-image fault at the int64 reference width (the
// exact scrub is the serving path's guarantee against stationary-operand
// corruption — a miss there means the scrub model regressed). CI runs
// `--smoke` (and `--smoke --component weights,activations`) on every push.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "sa/roc.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/threadpool.h"

namespace {

int usage() {
  std::cerr
      << "usage: coverage_sweep [--smoke] [--csv FILE] [--json FILE] [--threads N]\n"
         "                      [--trials N] [--seed S] [--widths W1,W2,...]\n"
         "                      [--overflow wrap|saturate] [--msd-only]\n"
         "                      [--component C1,C2,...]\n"
         "  --smoke      tiny fixed grid (one shape, 3x2 cells, 3 widths) for CI\n"
         "  --csv FILE   long-format per-cell record (one row per cell per datapath)\n"
         "  --json FILE  machine-readable record of the same cells\n"
         "  --threads N  shard sweep cells over N threads (default 1; deterministic\n"
         "               at any count — per-cell forked RNG streams)\n"
         "  --trials N   protected GEMMs per cell (default: 24, smoke 6)\n"
         "  --seed S     base RNG seed (default fixed; the sweep is reproducible)\n"
         "  --widths     checksum register widths to screen at (default 16,24,32,64)\n"
         "  --overflow   register overflow semantics (default wrap; wrap sweeps also\n"
         "               assert the monotone coverage curve)\n"
         "  --msd-only   one-sided screen (MSD threshold only, no row/column check)\n"
         "  --component  memory-hierarchy components to attack, from weights, panels,\n"
         "               activations, accumulator (default accumulator). Each adds a\n"
         "               full grid; weight/panel cells also tally the load/rest scrub,\n"
         "               whose reference-width misses gate the exit code\n";
  return 2;
}

std::vector<int> parse_int_list(const std::string& s) {
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::string tok = s.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!tok.empty()) out.push_back(static_cast<int>(std::strtol(tok.c_str(), nullptr, 10)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string csv_path, json_path;
  long threads = 1;
  std::size_t trials = 0;  // 0 = mode default
  std::uint64_t seed = 0;  // 0 = config default
  std::vector<int> widths;
  realm::sa::Overflow overflow = realm::sa::Overflow::kWrap;
  bool msd_only = false;
  std::vector<realm::fault::Component> components;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--csv" && i + 1 < argc) {
      csv_path = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = std::strtol(argv[++i], nullptr, 10);
      if (threads < 1) return usage();
    } else if (arg == "--trials" && i + 1 < argc) {
      trials = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
      if (trials == 0) return usage();
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--widths" && i + 1 < argc) {
      widths = parse_int_list(argv[++i]);
      if (widths.empty()) return usage();
    } else if (arg == "--overflow" && i + 1 < argc) {
      const std::string o = argv[++i];
      if (o == "wrap") {
        overflow = realm::sa::Overflow::kWrap;
      } else if (o == "saturate") {
        overflow = realm::sa::Overflow::kSaturate;
      } else {
        return usage();
      }
    } else if (arg == "--msd-only") {
      msd_only = true;
    } else if (arg == "--component" && i + 1 < argc) {
      const std::string list = argv[++i];
      std::size_t pos = 0;
      while (pos <= list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::string tok =
            list.substr(pos, comma == std::string::npos ? comma : comma - pos);
        if (!tok.empty()) {
          realm::fault::Component comp;
          if (!realm::fault::parse_component(tok, comp)) return usage();
          components.push_back(comp);
        }
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
      if (components.empty()) return usage();
    } else {
      return usage();
    }
  }
  realm::util::set_global_threads(static_cast<std::size_t>(threads));

  realm::sa::SweepConfig cfg;
  if (smoke) {
    // Tiny fixed grid: fast enough for the sanitizer CI leg, still covering
    // a low bit (always caught), the 2^16 aliasing bit, and a high bit.
    cfg.shapes = {{16, 64, 96}};
    cfg.bers = {1e-3, 1e-2};
    cfg.bit_positions = {8, 16, 30};
    cfg.widths = {16, 32, 64};
    cfg.trials = 6;
  } else {
    cfg.shapes = {{32, 128, 256}, {64, 256, 256}};
    cfg.bers = {1e-5, 1e-4, 1e-3, 1e-2};
    cfg.bit_positions = {0, 4, 8, 12, 16, 20, 24, 28, 30, 31};
    cfg.trials = 24;
  }
  if (trials != 0) cfg.trials = trials;
  if (seed != 0) cfg.seed = seed;
  if (!widths.empty()) cfg.widths = widths;
  if (!components.empty()) cfg.components = components;
  cfg.overflow = overflow;
  cfg.two_sided = !msd_only;

  realm::sa::SweepResult result;
  try {
    result = realm::sa::run_sweep(cfg);
  } catch (const std::exception& e) {
    std::cerr << "coverage_sweep: " << e.what() << "\n";
    return 2;
  }

  // Per-shape, per-component critical-region maps: narrowest width first,
  // reference last, so the coverage the narrow datapath loses reads top to
  // bottom.
  for (std::size_t s = 0; s < cfg.shapes.size(); ++s) {
    for (std::size_t q = 0; q < cfg.components.size(); ++q) {
      for (const int w : cfg.widths) {
        realm::sa::critical_region_table(result, s, q, w).print(std::cout);
      }
      realm::sa::critical_region_table(result, s, q, -1).print(std::cout);
    }
  }

  // Coverage-vs-width summary, with per-cell detection-rate spread (the
  // RunningStat min/max shows whether a width is uniformly good or only good
  // away from the critical region).
  const realm::sa::CoverageSummary sum = realm::sa::summarize(result);
  realm::util::TablePrinter summary(
      std::string("coverage by checksum width (") + realm::sa::to_string(cfg.overflow) +
      ", trials=" + std::to_string(sum.trials) + ", faulty=" + std::to_string(sum.faulty) + ")");
  summary.header({"width", "detected", "missed", "false_pos", "coverage", "cell_min", "cell_max",
                  "patched", "patch_rate", "1f_patch_rate"});
  const auto summary_row = [&](const realm::sa::WidthTally& t, bool reference) {
    realm::util::RunningStat cell_rates;
    for (const realm::sa::CellResult& cell : result.cells) {
      if (cell.faulty_trials == 0) continue;
      std::size_t w = 0;
      const realm::sa::WidthTally* ct = &cell.reference;
      if (!reference) {
        while (cell.widths[w].bits != t.bits) ++w;
        ct = &cell.widths[w];
      }
      cell_rates.add(ct->detection_rate(cell.faulty_trials));
    }
    summary.row({reference ? "int64 ref" : std::to_string(t.bits),
                 std::to_string(t.detected), std::to_string(t.missed),
                 std::to_string(t.false_pos),
                 realm::util::TablePrinter::pct(t.detection_rate(sum.faulty), 1),
                 realm::util::TablePrinter::num(cell_rates.min(), 3),
                 realm::util::TablePrinter::num(cell_rates.max(), 3),
                 std::to_string(t.patched),
                 realm::util::TablePrinter::pct(t.patch_rate(sum.faulty), 1),
                 realm::util::TablePrinter::pct(t.single_patch_rate(), 1)});
  };
  for (const realm::sa::WidthTally& t : sum.widths) summary_row(t, false);
  summary_row(sum.reference, true);
  summary.print(std::cout);

  // Per-component detection-rate tables: the same coverage-vs-width cut,
  // restricted to one component's cells, plus the load/rest scrub tallies
  // (nonzero only for the at-rest components).
  for (std::size_t q = 0; q < cfg.components.size(); ++q) {
    const realm::fault::Component comp = cfg.components[q];
    realm::util::TablePrinter per_comp(std::string("coverage by width — component ") +
                                       realm::fault::to_string(comp));
    per_comp.header({"width", "faulty", "detected", "missed", "coverage", "scrub_caught",
                     "scrub_missed"});
    const auto comp_row = [&](int bits, bool reference) {
      realm::sa::WidthTally t;
      std::size_t faulty = 0;
      for (const realm::sa::CellResult& cell : result.cells) {
        if (cell.component != comp) continue;
        faulty += cell.faulty_trials;
        const realm::sa::WidthTally* ct = &cell.reference;
        if (!reference) {
          std::size_t w = 0;
          while (cell.widths[w].bits != bits) ++w;
          ct = &cell.widths[w];
        }
        t.detected += ct->detected;
        t.missed += ct->missed;
        t.scrub_caught += ct->scrub_caught;
        t.scrub_missed += ct->scrub_missed;
      }
      per_comp.row({reference ? "int64 ref" : std::to_string(bits), std::to_string(faulty),
                    std::to_string(t.detected), std::to_string(t.missed),
                    realm::util::TablePrinter::pct(t.detection_rate(faulty), 1),
                    std::to_string(t.scrub_caught), std::to_string(t.scrub_missed)});
    };
    for (const int w : cfg.widths) comp_row(w, false);
    comp_row(0, true);
    per_comp.print(std::cout);
  }

  if (!csv_path.empty()) {
    std::ofstream os(csv_path);
    if (!os) {
      std::cerr << "coverage_sweep: cannot write " << csv_path << "\n";
      return 1;
    }
    realm::sa::write_csv(os, result);
  }
  if (!json_path.empty()) {
    std::ofstream os(json_path);
    if (!os) {
      std::cerr << "coverage_sweep: cannot write " << json_path << "\n";
      return 1;
    }
    realm::sa::write_json(os, result);
  }

  // Wrap detections nest across widths (sa/datapath.h), so the aggregate
  // curve must be monotone; a violation can only mean the model regressed.
  if (cfg.overflow == realm::sa::Overflow::kWrap) {
    std::vector<realm::sa::WidthTally> ordered = sum.widths;
    std::sort(ordered.begin(), ordered.end(),
              [](const auto& a, const auto& b) { return a.bits < b.bits; });
    for (std::size_t w = 1; w < ordered.size(); ++w) {
      if (ordered[w].detected < ordered[w - 1].detected) {
        std::cerr << "coverage_sweep: NON-MONOTONE coverage: width " << ordered[w].bits
                  << " detected " << ordered[w].detected << " < width " << ordered[w - 1].bits
                  << " detected " << ordered[w - 1].detected << "\n";
        return 1;
      }
    }
    if (!ordered.empty() && sum.reference.detected < ordered.back().detected) {
      std::cerr << "coverage_sweep: reference screen detected less than width "
                << ordered.back().bits << "\n";
      return 1;
    }
    // Single-fault patch rate at the full-width datapath must be exactly
    // 100% under wrap: the deviations are exact there, so the weighted-basis
    // solve always reconstructs a lone corrupted element. Anything less means
    // the correction algebra regressed.
    for (const realm::sa::WidthTally& t : sum.widths) {
      if (t.bits == 64 && t.single_patched != t.single_fault) {
        std::cerr << "coverage_sweep: full-width single-fault patch rate "
                  << t.single_patched << "/" << t.single_fault << " != 100%\n";
        return 1;
      }
    }
    if (sum.reference.single_patched != sum.reference.single_fault) {
      std::cerr << "coverage_sweep: reference single-fault patch rate "
                << sum.reference.single_patched << "/" << sum.reference.single_fault
                << " != 100%\n";
      return 1;
    }
  }
  // The load/rest scrub gate (any overflow mode): at the int64 reference
  // width the weight scrub recomputes exact row+col checksums and the panel
  // scrub is a byte-exact repack-compare, so a net weight/panel-image fault
  // the reference scrub missed means the scrub model or the stream plumbing
  // regressed.
  if (sum.reference.scrub_missed != 0) {
    std::cerr << "coverage_sweep: reference-width scrub MISSED " << sum.reference.scrub_missed
              << " net component-image fault(s)\n";
    return 1;
  }
  return 0;
}
