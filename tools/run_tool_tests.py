#!/usr/bin/env python3
"""Self-tests for the repo's Python CI gates.

A gate that never trips is indistinguishable from a gate that is broken, so
every checker gets both directions pinned against committed fixtures:

  * bench/compare_baseline.py over tests/tooldata/bench_*.json — passes a
    clean run, trips on a raw_gops regression, a detect_ms regression, a
    missing shape, and a multi-threaded record; the serve-async fault-load
    dispatch passes a clean record and trips on a patched-path p99
    regression and on a patch rate under the floor; the clean records carry
    provenance keys (git_sha, trace, ...) the gate does not know, pinning
    the tolerate-unknown-keys contract; the --trace-overhead mode passes a
    within-budget traced/untraced pair, trips when traced req/s falls under
    the ratio floor, and trips on a mis-wired pair (both records untraced);
  * tools/check_links.py over tests/tooldata/links_*.md — passes valid
    links/anchors (including duplicate-heading suffixes), trips on a missing
    file and on a dead anchor;
  * tools/realm_lint.py over tests/lintdata/ — trips each rule on its bad
    fixture (with the expected rule tag in the output), stays quiet on the
    good-patterns fixture, and stays quiet on the real tree.

Registered in ctest as `tools.selftest` and run in the fast CI lint job.
Exit 0 when every expectation holds, 1 otherwise.

usage: run_tool_tests.py [--root DIR]
"""

import argparse
import pathlib
import subprocess
import sys

FAILURES = []
TOTAL = 0


def run(argv):
    proc = subprocess.run([sys.executable] + [str(a) for a in argv],
                          capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


def expect(name, argv, want_zero, want_in_output=None):
    global TOTAL
    TOTAL += 1
    code, output = run(argv)
    ok = (code == 0) == want_zero
    if ok and want_in_output is not None and want_in_output not in output:
        ok = False
        why = f"output lacks {want_in_output!r}"
    else:
        why = f"exit {code}, wanted {'0' if want_zero else 'nonzero'}"
    status = "PASS" if ok else "FAIL"
    print(f"[ {status} ] {name}")
    if not ok:
        FAILURES.append(name)
        indented = "\n".join("    " + l for l in output.strip().splitlines())
        print(f"    {why}\n{indented}")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--root", default=None, help="repo root (default: parent of this script)")
    args = ap.parse_args()
    root = pathlib.Path(args.root) if args.root else pathlib.Path(__file__).resolve().parents[1]

    compare = root / "bench" / "compare_baseline.py"
    links = root / "tools" / "check_links.py"
    lint = root / "tools" / "realm_lint.py"
    tooldata = root / "tests" / "tooldata"
    lintdata = root / "tests" / "lintdata"
    base = tooldata / "bench_baseline.json"

    expect("compare_baseline passes a clean run",
           [compare, tooldata / "bench_current_ok.json", base], want_zero=True,
           want_in_output="perf gate passed")
    expect("compare_baseline trips on raw_gops regression",
           [compare, tooldata / "bench_current_regress_gops.json", base], want_zero=False,
           want_in_output="raw_gops")
    expect("compare_baseline trips on detect_ms regression",
           [compare, tooldata / "bench_current_regress_detect.json", base], want_zero=False,
           want_in_output="detect_ms")
    expect("compare_baseline trips on missing shape",
           [compare, tooldata / "bench_current_missing_shape.json", base], want_zero=False)
    expect("compare_baseline rejects multi-threaded records",
           [compare, tooldata / "bench_current_multithread.json", base], want_zero=False,
           want_in_output="single-thread")
    expect("compare_baseline passes a clean serve fault-load run",
           [compare, tooldata / "bench_serve_fault_ok.json", base], want_zero=True,
           want_in_output="serve fault-load gate passed")
    expect("compare_baseline trips on fault-load p99 regression",
           [compare, tooldata / "bench_serve_fault_slow_p99.json", base], want_zero=False,
           want_in_output="fault_patched_p99_ms")
    expect("compare_baseline trips on fault-load patch-rate floor",
           [compare, tooldata / "bench_serve_fault_low_patch.json", base], want_zero=False,
           want_in_output="fault_patch_rate")
    expect("compare_baseline passes a within-budget traced run",
           [compare, "--trace-overhead", tooldata / "bench_trace_on_ok.json",
            tooldata / "bench_trace_off.json"], want_zero=True,
           want_in_output="tracing-overhead gate passed")
    expect("compare_baseline trips on tracing overhead over budget",
           [compare, "--trace-overhead", tooldata / "bench_trace_on_slow.json",
            tooldata / "bench_trace_off.json"], want_zero=False,
           want_in_output="tracing overhead over budget")
    expect("compare_baseline trips on a mis-wired trace-overhead pair",
           [compare, "--trace-overhead", tooldata / "bench_trace_off.json",
            tooldata / "bench_trace_off.json"], want_zero=False,
           want_in_output="mis-wired")

    expect("check_links passes valid links and anchors",
           [links, tooldata / "links_ok.md"], want_zero=True)
    expect("check_links trips on missing file",
           [links, tooldata / "links_broken_file.md"], want_zero=False,
           want_in_output="broken link")
    expect("check_links trips on dead anchor",
           [links, tooldata / "links_broken_anchor.md"], want_zero=False,
           want_in_output="broken anchor")

    lint_cases = [
        ("src/sa/bad_unforked_rng.cpp", "rng-fork"),
        ("src/serve/bad_worker_rng.cpp", "rng-fork"),
        ("src/fault/bad_component_stream.cpp", "rng-fork"),
        ("src/detect/bad_raw_deviation.cpp", "sat-math"),
        ("src/tensor/bad_missing_pragma.cpp", "avx512-pragma"),
        ("src/serve/bad_mt19937.cpp", "rng-source"),
        ("src/serve/bad_raw_clock.cpp", "clock-source"),
        ("src/util/bad_header.h", "header-tu"),
        ("src/detect/bad_patch_no_rescreen.cpp", "rescreen"),
    ]
    for fixture, rule in lint_cases:
        expect(f"realm_lint trips {rule} on {fixture}",
               [lint, "--root", lintdata, fixture], want_zero=False,
               want_in_output=f"[{rule}]")
    expect("realm_lint passes the good-patterns fixture",
           [lint, "--root", lintdata, "--no-headers", "src/sa/good_patterns.cpp"],
           want_zero=True)
    expect("realm_lint passes the patch-then-rescreen fixture",
           [lint, "--root", lintdata, "--no-headers", "src/detect/good_patch_rescreen.cpp"],
           want_zero=True)
    expect("realm_lint passes the real tree",
           [lint, "--root", root], want_zero=True)

    print(f"tool selftests: {TOTAL - len(FAILURES)}/{TOTAL} passed")
    return 1 if FAILURES else 0


if __name__ == "__main__":
    sys.exit(main())
