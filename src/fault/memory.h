// Memory-hierarchy fault model (ROADMAP open item 3).
//
// The original injectors attack only the post-GEMM accumulator — the paper's
// compute-path error model. Production silent data corruption also strikes
// data AT REST: the stationary quantized weight tile (hit once when loaded at
// set_weights/swap_tile time), the packed INT16 B panels sitting in SRAM
// between requests, and the INT8 activations staged in DRAM/SRAM before they
// feed the GEMM. This model covers those three components with independent
// BER / retention-time parameters per component.
//
// Stream discipline (the replay contract): every corruption draw comes from
// the counter-based stream
//
//     component_stream(seed, component, op) =
//         Rng(seed).fork(kComponentTagBase + component).fork(op)
//
// a pure function of (seed, component, op_id). No global generator state is
// consumed, so a given (component, op) replays bit-identically regardless of
// thread count, scheduling, or which OTHER components are enabled — the same
// counter-based-RNG rule realm-lint already enforces for parallel_for bodies,
// extended to component-stream construction sites. Composite op ids (e.g.
// per-tile within a request, per-epoch at rest) are derived with compose_op.
//
// Retention model: `rest_epochs` multiplies the exposure — each epoch draws
// an independent binomial flip set from the same stream, so a tensor resting
// twice as long sees twice the expected upsets (and flips may land twice and
// cancel, exactly like physical re-upsets of the same cell).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fault/fault.h"
#include "util/rng.h"

namespace realm::fault {

/// Per-component fault parameters. Bit positions index within an 8-bit lane:
/// INT8 components attack bits [bit_lo, bit_hi] of each byte; the INT16
/// panel component attacks the same window in BOTH byte lanes of each word.
struct ComponentParams {
  double ber = 0.0;               ///< per-bit upset probability per epoch (0 disables)
  int bit_lo = 0;                 ///< lowest attackable bit of the 8-bit lane
  int bit_hi = 7;                 ///< highest attackable bit of the 8-bit lane
  std::uint64_t rest_epochs = 1;  ///< retention epochs of exposure (>= 1)
};

/// Full model configuration. The accumulator component keeps riding the
/// FaultInjector path (it is a compute-path fault, not an at-rest one), so it
/// has no entry here.
struct MemoryFaultConfig {
  std::uint64_t seed = 0;  ///< root of every component stream
  ComponentParams weights;
  ComponentParams packed_panels;
  ComponentParams activations;

  /// Parameters for an at-rest component; throws std::invalid_argument for
  /// kAccumulator, which this model does not own.
  [[nodiscard]] const ComponentParams& params(Component c) const;
};

/// Tag offset separating component streams from every other fork tag in the
/// repo (cell indices, tile indices, stream ids are all small integers).
inline constexpr std::uint64_t kComponentTagBase = 0xc0317a60'00000000ULL;

/// The counter-based component stream: a pure function of its arguments.
[[nodiscard]] util::Rng component_stream(std::uint64_t seed, Component c, std::uint64_t op);

/// Mix two counters into one op id (splitmix-style finalizer), for composite
/// stream coordinates like (request stream, tile) or (rest epoch, tile).
/// Injective enough in practice: 64-bit avalanche keeps distinct pairs from
/// colliding at any plausible op volume.
[[nodiscard]] std::uint64_t compose_op(std::uint64_t hi, std::uint64_t lo) noexcept;

/// Applies per-component at-rest corruption to byte (INT8) or word (INT16)
/// images. Stateless between calls: every corruption is fully determined by
/// (config, component, op).
class MemoryFaultModel {
 public:
  /// Validates every component's parameters (BER in [0,1], 0 <= bit_lo <=
  /// bit_hi <= 7, rest_epochs >= 1); throws std::invalid_argument otherwise.
  explicit MemoryFaultModel(MemoryFaultConfig cfg);

  /// Corrupt an INT8 image (weights or activations) in place. Returns the
  /// number of physical bit flips applied (re-upsets of the same bit count
  /// each time). BER >= 1 flips every eligible bit exactly once per epoch —
  /// the deterministic saturation edge case. When `record` is non-null it is
  /// cleared and filled with component-stamped FlipRecords in application
  /// order (reverse replay reconstructs the clean image).
  std::uint64_t corrupt(Component c, std::uint64_t op, std::span<std::int8_t> bytes,
                        std::vector<FlipRecord>* record = nullptr) const;

  /// Same for an INT16 image (the packed panel buffer): the component's
  /// [bit_lo, bit_hi] lane window applies to both bytes of every word.
  std::uint64_t corrupt16(Component c, std::uint64_t op, std::span<std::int16_t> words,
                          std::vector<FlipRecord>* record = nullptr) const;

  /// True when the component's BER is nonzero (the model can touch it).
  [[nodiscard]] bool enabled(Component c) const { return cfg_.params(c).ber > 0.0; }

  [[nodiscard]] const MemoryFaultConfig& config() const noexcept { return cfg_; }

 private:
  MemoryFaultConfig cfg_;
};

}  // namespace realm::fault
