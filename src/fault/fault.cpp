#include "fault/fault.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace realm::fault {

const char* to_string(Component c) noexcept {
  switch (c) {
    case Component::kWeights:
      return "weights";
    case Component::kPackedPanels:
      return "panels";
    case Component::kActivations:
      return "activations";
    case Component::kAccumulator:
      return "accumulator";
  }
  return "unknown";
}

bool parse_component(std::string_view name, Component& out) noexcept {
  for (const Component c : {Component::kWeights, Component::kPackedPanels,
                            Component::kActivations, Component::kAccumulator}) {
    if (name == to_string(c)) {
      out = c;
      return true;
    }
  }
  return false;
}

RandomBitFlipInjector::RandomBitFlipInjector(double ber, int bit_lo, int bit_hi)
    : ber_(ber), bit_lo_(bit_lo), bit_hi_(bit_hi) {
  if (ber < 0.0 || ber > 1.0) throw std::invalid_argument("BER must be in [0,1]");
  if (bit_lo < 0 || bit_hi > 31 || bit_lo > bit_hi) {
    throw std::invalid_argument("bit range must satisfy 0 <= lo <= hi <= 31");
  }
}

InjectionReport RandomBitFlipInjector::inject(std::span<std::int32_t> data, util::Rng& rng,
                                              std::vector<FlipRecord>* record) const {
  InjectionReport report;
  if (record != nullptr) record->clear();
  if (ber_ <= 0.0 || data.empty()) return report;
  const auto bits_per_elem = static_cast<std::uint64_t>(bit_hi_ - bit_lo_ + 1);
  const std::uint64_t trials = data.size() * bits_per_elem;
  // Sample the total flip count once, then scatter the flips uniformly.
  // Collisions (two flips landing on the same bit, undoing each other) are
  // possible but have probability O(flips^2 / trials) — negligible at the
  // BERs of interest and faithful to independent physical upsets anyway.
  const std::uint64_t flips = rng.binomial(trials, ber_);
  for (std::uint64_t f = 0; f < flips; ++f) {
    const std::uint64_t pos = rng.uniform_u64(trials);
    const std::size_t elem = static_cast<std::size_t>(pos / bits_per_elem);
    const int bit = bit_lo_ + static_cast<int>(pos % bits_per_elem);
    auto word = static_cast<std::uint32_t>(data[elem]);
    word ^= (1u << bit);
    if (record != nullptr) {
      record->push_back({elem, data[elem], static_cast<std::int32_t>(word),
                         static_cast<std::int16_t>(bit)});
    }
    data[elem] = static_cast<std::int32_t>(word);
  }
  report.flipped_bits = flips;
  report.corrupted_values = flips;  // collision correction not worth tracking
  return report;
}

SingleBitFlipInjector::SingleBitFlipInjector(double ber, int bit) : ber_(ber), bit_(bit) {
  if (ber < 0.0 || ber > 1.0) throw std::invalid_argument("BER must be in [0,1]");
  if (bit < 0 || bit > 31) throw std::invalid_argument("bit must be in [0,31]");
}

InjectionReport SingleBitFlipInjector::inject(std::span<std::int32_t> data, util::Rng& rng,
                                              std::vector<FlipRecord>* record) const {
  InjectionReport report;
  if (record != nullptr) record->clear();
  if (ber_ <= 0.0 || data.empty()) return report;
  // Sample elements WITHOUT replacement: the protocol attacks one fixed bit,
  // so two flips landing on the same element would cancel and the reported
  // corrupted_values would over-count. Distinct targets keep every flip live.
  const std::uint64_t flips = rng.binomial(data.size(), ber_);
  const auto targets = rng.sample_without_replacement(data.size(), flips);
  for (const auto idx : targets) {
    auto word = static_cast<std::uint32_t>(data[idx]);
    word ^= (1u << bit_);
    if (record != nullptr) {
      record->push_back({idx, data[idx], static_cast<std::int32_t>(word),
                         static_cast<std::int16_t>(bit_)});
    }
    data[idx] = static_cast<std::int32_t>(word);
  }
  report.flipped_bits = targets.size();
  report.corrupted_values = targets.size();
  return report;
}

MagFreqInjector::MagFreqInjector(std::int64_t mag, std::uint64_t freq) : mag_(mag), freq_(freq) {
  if (mag == 0) throw std::invalid_argument("mag must be nonzero");
}

InjectionReport MagFreqInjector::inject(std::span<std::int32_t> data, util::Rng& rng,
                                        std::vector<FlipRecord>* record) const {
  InjectionReport report;
  if (record != nullptr) record->clear();
  if (freq_ == 0 || data.empty()) return report;
  const std::uint64_t count = std::min<std::uint64_t>(freq_, data.size());
  const auto targets = rng.sample_without_replacement(data.size(), count);
  for (const auto idx : targets) {
    // Saturating add keeps the corrupted accumulator representable; a timing
    // fault cannot produce a value outside the 32-bit register anyway.
    const std::int64_t v = static_cast<std::int64_t>(data[idx]) + mag_;
    const std::int64_t lo = std::numeric_limits<std::int32_t>::min();
    const std::int64_t hi = std::numeric_limits<std::int32_t>::max();
    const auto after = static_cast<std::int32_t>(std::clamp(v, lo, hi));
    if (record != nullptr) record->push_back({idx, data[idx], after, FlipRecord::kAdditiveBit});
    data[idx] = after;
  }
  report.corrupted_values = count;
  report.flipped_bits = count;  // one logical upset per element
  return report;
}

}  // namespace realm::fault
