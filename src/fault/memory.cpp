#include "fault/memory.h"

#include <stdexcept>

namespace realm::fault {

const ComponentParams& MemoryFaultConfig::params(Component c) const {
  switch (c) {
    case Component::kWeights:
      return weights;
    case Component::kPackedPanels:
      return packed_panels;
    case Component::kActivations:
      return activations;
    case Component::kAccumulator:
      break;
  }
  throw std::invalid_argument(
      "MemoryFaultConfig::params: accumulator faults ride the FaultInjector path");
}

util::Rng component_stream(std::uint64_t seed, Component c, std::uint64_t op) {
  return util::Rng(seed).fork(kComponentTagBase + static_cast<std::uint64_t>(c)).fork(op);
}

std::uint64_t compose_op(std::uint64_t hi, std::uint64_t lo) noexcept {
  std::uint64_t sm = (hi * 0x9e3779b97f4a7c15ULL) ^ lo;
  return util::splitmix64(sm);
}

MemoryFaultModel::MemoryFaultModel(MemoryFaultConfig cfg) : cfg_(cfg) {
  for (const ComponentParams* p : {&cfg_.weights, &cfg_.packed_panels, &cfg_.activations}) {
    if (p->ber < 0.0 || p->ber > 1.0) {
      throw std::invalid_argument("component BER must be in [0,1]");
    }
    if (p->bit_lo < 0 || p->bit_hi > 7 || p->bit_lo > p->bit_hi) {
      throw std::invalid_argument("component bit range must satisfy 0 <= lo <= hi <= 7");
    }
    if (p->rest_epochs == 0) throw std::invalid_argument("rest_epochs must be >= 1");
  }
}

std::uint64_t MemoryFaultModel::corrupt(Component c, std::uint64_t op,
                                        std::span<std::int8_t> bytes,
                                        std::vector<FlipRecord>* record) const {
  if (record != nullptr) record->clear();
  const ComponentParams& p = cfg_.params(c);  // throws for kAccumulator
  if (p.ber <= 0.0 || bytes.empty()) return 0;
  util::Rng rng = component_stream(cfg_.seed, c, op);
  const auto bits = static_cast<std::uint64_t>(p.bit_hi - p.bit_lo + 1);
  const std::uint64_t trials = bytes.size() * bits;
  const auto flip = [&](std::size_t elem, int bit) {
    auto word = static_cast<std::uint8_t>(bytes[elem]);
    word ^= static_cast<std::uint8_t>(1u << bit);
    const auto after = static_cast<std::int8_t>(word);
    if (record != nullptr) {
      record->push_back({elem, bytes[elem], after, static_cast<std::int16_t>(bit), c});
    }
    bytes[elem] = after;
  };
  std::uint64_t total = 0;
  for (std::uint64_t epoch = 0; epoch < p.rest_epochs; ++epoch) {
    if (p.ber >= 1.0) {
      // Deterministic saturation: every eligible bit flips exactly once per
      // epoch. The sampled path below draws WITH replacement, which would
      // leave ~1/e of the bits untouched even at BER = 1.
      for (std::size_t e = 0; e < bytes.size(); ++e) {
        for (int b = p.bit_lo; b <= p.bit_hi; ++b) flip(e, b);
      }
      total += trials;
      continue;
    }
    // Same binomial-then-scatter protocol as RandomBitFlipInjector:
    // collisions (a cell re-upset, undoing itself) are physical.
    const std::uint64_t flips = rng.binomial(trials, p.ber);
    for (std::uint64_t f = 0; f < flips; ++f) {
      const std::uint64_t pos = rng.uniform_u64(trials);
      flip(static_cast<std::size_t>(pos / bits), p.bit_lo + static_cast<int>(pos % bits));
    }
    total += flips;
  }
  return total;
}

std::uint64_t MemoryFaultModel::corrupt16(Component c, std::uint64_t op,
                                          std::span<std::int16_t> words,
                                          std::vector<FlipRecord>* record) const {
  if (record != nullptr) record->clear();
  const ComponentParams& p = cfg_.params(c);  // throws for kAccumulator
  if (p.ber <= 0.0 || words.empty()) return 0;
  util::Rng rng = component_stream(cfg_.seed, c, op);
  // The 8-bit lane window applies to both byte lanes of every INT16 word.
  const auto bits = static_cast<std::uint64_t>(p.bit_hi - p.bit_lo + 1);
  const std::uint64_t bits_per_word = 2 * bits;
  const std::uint64_t trials = words.size() * bits_per_word;
  const auto flip = [&](std::size_t elem, int bit) {
    auto word = static_cast<std::uint16_t>(words[elem]);
    word ^= static_cast<std::uint16_t>(1u << bit);
    const auto after = static_cast<std::int16_t>(word);
    if (record != nullptr) {
      record->push_back({elem, words[elem], after, static_cast<std::int16_t>(bit), c});
    }
    words[elem] = after;
  };
  std::uint64_t total = 0;
  for (std::uint64_t epoch = 0; epoch < p.rest_epochs; ++epoch) {
    if (p.ber >= 1.0) {
      for (std::size_t e = 0; e < words.size(); ++e) {
        for (int lane = 0; lane < 2; ++lane) {
          for (int b = p.bit_lo; b <= p.bit_hi; ++b) flip(e, lane * 8 + b);
        }
      }
      total += trials;
      continue;
    }
    const std::uint64_t flips = rng.binomial(trials, p.ber);
    for (std::uint64_t f = 0; f < flips; ++f) {
      const std::uint64_t pos = rng.uniform_u64(trials);
      const auto elem = static_cast<std::size_t>(pos / bits_per_word);
      const std::uint64_t rem = pos % bits_per_word;
      const int lane = static_cast<int>(rem / bits);
      flip(elem, lane * 8 + p.bit_lo + static_cast<int>(rem % bits));
    }
    total += flips;
  }
  return total;
}

}  // namespace realm::fault
