// Fault models for transient computational errors (paper Sec. III).
//
// The paper's error model: timing violations in the systolic array datapath
// manifest as bit flips in the INT32 GEMM accumulation results; memory is
// assumed ECC-protected and permanent faults are screened offline, so only
// the compute path is attacked. Two injector families are provided:
//
//  * RandomBitFlipInjector — the runtime model: each (element, bit) pair in a
//    configurable bit range flips independently with probability BER. Timing
//    errors preferentially hit high-order bits (long carry chains miss
//    timing first), hence the default high-bit range.
//  * MagFreqInjector — the characterization model of Sec. III-B: exactly
//    `freq` elements receive an identical additive error of magnitude `mag`,
//    so MSD = freq × mag is controlled exactly. Used to map the critical
//    region of Fig. 6.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "util/rng.h"

namespace realm::fault {

/// Where in the memory hierarchy a fault strikes. The accumulator is the
/// paper's original compute-path model (post-GEMM INT32 bit flips); the other
/// three are the at-rest SRAM/DRAM strikes the memory-hierarchy model in
/// fault/memory.h adds: stationary INT8 weights corrupted once at load,
/// packed INT16 weight panels corrupted at rest between requests, and INT8
/// activations corrupted per request before they feed the GEMM.
enum class Component : std::uint8_t {
  kWeights = 0,       ///< resident quantized weight tile (flipped at load)
  kPackedPanels = 1,  ///< packed B panels at rest between requests
  kActivations = 2,   ///< per-request activation operand, pre-GEMM
  kAccumulator = 3,   ///< post-GEMM INT32 results (the FaultInjector path)
};

inline constexpr std::size_t kComponentCount = 4;

/// Stable lowercase name ("weights", "panels", "activations", "accumulator").
[[nodiscard]] const char* to_string(Component c) noexcept;

/// Parse a component name as emitted by to_string. Returns false (leaving
/// `out` untouched) on anything else.
[[nodiscard]] bool parse_component(std::string_view name, Component& out) noexcept;

/// Per-component bit-flip tallies, indexed by static_cast<size_t>(Component).
using ComponentFlips = std::array<std::uint64_t, kComponentCount>;

/// Outcome of one injection pass over a tensor.
struct InjectionReport {
  std::uint64_t flipped_bits = 0;      ///< number of individual bit flips applied
  std::uint64_t corrupted_values = 0;  ///< number of distinct elements touched
};

/// One recorded mutation: flat element `index` went `before` -> `after`.
/// `bit` is the flipped bit position for bit-flip injectors, or kAdditiveBit
/// for magnitude-model injectors that add rather than flip. Records are
/// emitted in application order, so replaying them in REVERSE (writing each
/// record's `before` back) reconstructs the fault-free tensor exactly — even
/// when two flips land on the same element. The realm::sa coverage harness
/// consumes them as injected ground truth (which bits actually flipped, and
/// whether the net effect was nonzero).
///
/// `bit` is int16_t: wide enough for any conceivable word size (a 0–63 index
/// once 64-bit accumulators land) while still leaving room for the negative
/// kAdditiveBit sentinel, which an unsigned field could not represent.
struct FlipRecord {
  static constexpr std::int16_t kAdditiveBit = -1;

  std::uint64_t index = 0;
  std::int32_t before = 0;
  std::int32_t after = 0;
  std::int16_t bit = kAdditiveBit;
  /// Which memory-hierarchy component the mutation struck. Defaults to the
  /// accumulator so the original FaultInjector family (which predates the
  /// component axis) stays source-compatible; the MemoryFaultModel streams
  /// stamp their own component. For INT8/INT16 components, before/after hold
  /// the sign-extended element values.
  Component component = Component::kAccumulator;
};

/// Interface for anything that can corrupt an INT32 accumulator tensor.
///
/// When `record` is non-null it is cleared and filled with one FlipRecord per
/// applied mutation; passing nullptr (the default, and the serving hot path)
/// keeps injection allocation-free. The default argument lives on the base
/// class and every call site holds a FaultInjector&, so the binding is
/// unambiguous.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;
  virtual InjectionReport inject(std::span<std::int32_t> data, util::Rng& rng,
                                 std::vector<FlipRecord>* record = nullptr) const = 0;
};

/// Bit flips with independent per-bit probability `ber` over bits
/// [bit_lo, bit_hi] inclusive of each element.
class RandomBitFlipInjector final : public FaultInjector {
 public:
  /// @param ber      per-bit flip probability (0 disables injection)
  /// @param bit_lo   lowest attackable bit (0 = LSB)
  /// @param bit_hi   highest attackable bit (31 = sign bit of int32)
  RandomBitFlipInjector(double ber, int bit_lo = 16, int bit_hi = 31);

  InjectionReport inject(std::span<std::int32_t> data, util::Rng& rng,
                         std::vector<FlipRecord>* record = nullptr) const override;

  [[nodiscard]] double ber() const noexcept { return ber_; }
  [[nodiscard]] int bit_lo() const noexcept { return bit_lo_; }
  [[nodiscard]] int bit_hi() const noexcept { return bit_hi_; }

 private:
  double ber_;
  int bit_lo_;
  int bit_hi_;
};

/// Single-bit variant: attacks exactly one bit position with per-element
/// probability `ber` (the protocol of research questions Q1.1–Q2.2, which pin
/// the 30th bit).
class SingleBitFlipInjector final : public FaultInjector {
 public:
  SingleBitFlipInjector(double ber, int bit);

  InjectionReport inject(std::span<std::int32_t> data, util::Rng& rng,
                         std::vector<FlipRecord>* record = nullptr) const override;

  [[nodiscard]] int bit() const noexcept { return bit_; }

 private:
  double ber_;
  int bit_;
};

/// Adds +mag to exactly `freq` distinct uniformly chosen elements (clamped to
/// tensor size). Matches the Sec. III-B protocol: identical errors, exact
/// MSD = freq * mag.
class MagFreqInjector final : public FaultInjector {
 public:
  MagFreqInjector(std::int64_t mag, std::uint64_t freq);

  InjectionReport inject(std::span<std::int32_t> data, util::Rng& rng,
                         std::vector<FlipRecord>* record = nullptr) const override;

  [[nodiscard]] std::int64_t mag() const noexcept { return mag_; }
  [[nodiscard]] std::uint64_t freq() const noexcept { return freq_; }

 private:
  std::int64_t mag_;
  std::uint64_t freq_;
};

/// No-op injector (golden runs).
class NullInjector final : public FaultInjector {
 public:
  InjectionReport inject(std::span<std::int32_t>, util::Rng&,
                         std::vector<FlipRecord>* record = nullptr) const override {
    if (record != nullptr) record->clear();
    return {};
  }
};

}  // namespace realm::fault
