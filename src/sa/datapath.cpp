#include "sa/datapath.h"

#include <stdexcept>
#include <utility>

#include "tensor/checksum_kernels.h"
#include "tensor/gemm.h"

namespace realm::sa {

namespace {

void check_bits(int bits) {
  if (bits < 1 || bits > 64) {
    throw std::invalid_argument("sa: register width must be in [1, 64]");
  }
}

/// This model characterizes detection and simulated correction; it never
/// patches or replays a flagged tile in place.
detect::DetectionConfig reference_screen_cfg(detect::DetectionConfig cfg) {
  cfg.patch_on_detect = false;
  cfg.recompute_on_detect = false;
  return cfg;
}

/// obs − pred through the same width-limited datapath the registers use.
/// Wrap subtracts mod 2^64 first (unsigned arithmetic — both operands are
/// register values, but their int64 difference could overflow at bits == 64)
/// and truncates; saturate clamps at the rails like every register add.
std::int64_t width_sub(std::int64_t obs, std::int64_t pred, int bits, Overflow overflow) {
  if (overflow == Overflow::kWrap) {
    // realm-lint: allow(sat-math): models the wrap datapath itself — mod-2^64 on purpose
    const std::uint64_t d = static_cast<std::uint64_t>(obs) - static_cast<std::uint64_t>(pred);
    return util::wrap_to_bits(static_cast<std::int64_t>(d), bits);
  }
  return util::clamp_to_bits(util::sat_sub_i64(obs, pred), bits);
}

/// Width-limited weighted line sums: out[line] = Σ pos·x routed through a Reg
/// of the datapath's width, accumulated in the array's drain order (ascending
/// row index for columns, ascending column index for rows) — the order the
/// saturating datapath pins; wrap is order-free so it costs nothing there.
void weighted_col_sums_width(const tensor::MatI32& m, const DatapathConfig& cfg,
                             std::vector<std::int64_t>& out) {
  out.resize(m.cols());
  for (std::size_t j = 0; j < m.cols(); ++j) {
    Reg reg(cfg.bits, cfg.overflow);
    for (std::size_t i = 0; i < m.rows(); ++i) {
      reg.add(static_cast<std::int64_t>(i + 1) * m(i, j));
    }
    out[j] = reg.value();
  }
}

void weighted_row_sums_width(const tensor::MatI32& m, const DatapathConfig& cfg,
                             std::vector<std::int64_t>& out) {
  out.resize(m.rows());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    Reg reg(cfg.bits, cfg.overflow);
    for (std::size_t j = 0; j < m.cols(); ++j) {
      reg.add(static_cast<std::int64_t>(j + 1) * m(i, j));
    }
    out[i] = reg.value();
  }
}

/// Same single-fault solve as the int64 corrector: weighted = (pos+1)·plain.
bool solve_line(std::int64_t plain, std::int64_t weighted, std::size_t extent,
                std::size_t& index) {
  if (plain == 0 || weighted % plain != 0) return false;
  const std::int64_t pos1 = weighted / plain;
  if (pos1 < 1 || static_cast<std::uint64_t>(pos1) > extent) return false;
  index = static_cast<std::size_t>(pos1) - 1;
  return true;
}

}  // namespace

const char* to_string(Overflow o) noexcept {
  switch (o) {
    case Overflow::kWrap: return "wrap";
    case Overflow::kSaturate: return "saturate";
  }
  return "?";
}

Reg::Reg(int bits, Overflow overflow) : bits_(bits), overflow_(overflow) { check_bits(bits); }

void Reg::add(std::int64_t x) noexcept {
  if (overflow_ == Overflow::kWrap) {
    // realm-lint: allow(sat-math): models the wrap datapath itself — mod-2^64 on purpose
    const std::uint64_t s = static_cast<std::uint64_t>(value_) + static_cast<std::uint64_t>(x);
    value_ = util::wrap_to_bits(static_cast<std::int64_t>(s), bits_);
  } else {
    value_ = util::clamp_to_bits(util::sat_add_i64(value_, x), bits_);
  }
}

ScreenResult screen(const tensor::MatI32& truth, const tensor::MatI32& faulted,
                    const DatapathConfig& cfg) {
  ScreenScratch scratch;
  return screen_into(truth, faulted, cfg, scratch);
}

ScreenResult screen_into(const tensor::MatI32& truth, const tensor::MatI32& faulted,
                         const DatapathConfig& cfg, ScreenScratch& scratch) {
  check_bits(cfg.bits);
  if (truth.rows() != faulted.rows() || truth.cols() != faulted.cols()) {
    throw std::invalid_argument("sa::screen: truth/faulted shape mismatch");
  }
  const bool sat = cfg.overflow == Overflow::kSaturate;

  ScreenResult res;
  res.bits = cfg.bits;
  res.overflow = cfg.overflow;

  // Column side: both checksum rows run at the reduced width — the predicted
  // registers see the fault-free partial sums (Fig. 7's dedicated datapath),
  // the observed registers re-read the possibly-faulted accumulator.
  scratch.pred_cols.resize(truth.cols());
  scratch.obs_cols.resize(truth.cols());
  tensor::kernels::col_sums_i32_width(truth.data(), truth.rows(), truth.cols(), cfg.bits, sat,
                                      scratch.pred_cols.data());
  tensor::kernels::col_sums_i32_width(faulted.data(), faulted.rows(), faulted.cols(), cfg.bits,
                                      sat, scratch.obs_cols.data());
  Reg msd(cfg.bits, cfg.overflow);
  for (std::size_t j = 0; j < truth.cols(); ++j) {
    const std::int64_t d =
        width_sub(scratch.obs_cols[j], scratch.pred_cols[j], cfg.bits, cfg.overflow);
    if (d != 0) ++res.nonzero_cols;
    msd.add(d);
  }
  res.msd = msd.value();
  res.col_flagged = util::abs_u64(res.msd) > cfg.msd_threshold;
  if (cfg.two_sided) res.col_flagged = res.col_flagged || res.nonzero_cols > 0;

  // Row side (two-sided only, like the reference pipeline).
  if (cfg.two_sided) {
    scratch.pred_rows.resize(truth.rows());
    scratch.obs_rows.resize(truth.rows());
    tensor::kernels::row_sums_i32_width(truth.data(), truth.rows(), truth.cols(), cfg.bits, sat,
                                        scratch.pred_rows.data());
    tensor::kernels::row_sums_i32_width(faulted.data(), faulted.rows(), faulted.cols(), cfg.bits,
                                        sat, scratch.obs_rows.data());
    for (std::size_t r = 0; r < truth.rows(); ++r) {
      if (width_sub(scratch.obs_rows[r], scratch.pred_rows[r], cfg.bits, cfg.overflow) != 0) {
        ++res.nonzero_rows;
      }
    }
    res.row_flagged = res.nonzero_rows > 0;
  }

  res.flagged = res.col_flagged || res.row_flagged;
  return res;
}

bool simulate_patch(const tensor::MatI32& truth, const tensor::MatI32& faulted,
                    const DatapathConfig& cfg) {
  check_bits(cfg.bits);
  if (truth.rows() != faulted.rows() || truth.cols() != faulted.cols()) {
    throw std::invalid_argument("sa::simulate_patch: truth/faulted shape mismatch");
  }
  const std::size_t m = truth.rows();
  const std::size_t n = truth.cols();
  const bool sat = cfg.overflow == Overflow::kSaturate;

  // Plain deviations through the same width-limited kernels the screen uses;
  // weighted deviations through the ordered Reg drains above.
  std::vector<std::int64_t> pred_cols(n), obs_cols(n), pred_rows(m), obs_rows(m);
  tensor::kernels::col_sums_i32_width(truth.data(), m, n, cfg.bits, sat, pred_cols.data());
  tensor::kernels::col_sums_i32_width(faulted.data(), m, n, cfg.bits, sat, obs_cols.data());
  tensor::kernels::row_sums_i32_width(truth.data(), m, n, cfg.bits, sat, pred_rows.data());
  tensor::kernels::row_sums_i32_width(faulted.data(), m, n, cfg.bits, sat, obs_rows.data());
  std::vector<std::int64_t> wpred_cols, wobs_cols, wpred_rows, wobs_rows;
  weighted_col_sums_width(truth, cfg, wpred_cols);
  weighted_col_sums_width(faulted, cfg, wobs_cols);
  weighted_row_sums_width(truth, cfg, wpred_rows);
  weighted_row_sums_width(faulted, cfg, wobs_rows);

  std::vector<std::int64_t> dc(n), dr(m), wdr(m);
  for (std::size_t j = 0; j < n; ++j) {
    dc[j] = width_sub(obs_cols[j], pred_cols[j], cfg.bits, cfg.overflow);
  }
  for (std::size_t i = 0; i < m; ++i) {
    dr[i] = width_sub(obs_rows[i], pred_rows[i], cfg.bits, cfg.overflow);
    wdr[i] = width_sub(wobs_rows[i], wpred_rows[i], cfg.bits, cfg.overflow);
  }

  // Plan A (per-column solve) then Plan B (row solve over the residuals) —
  // the same construction as correct::try_patch, with every solve input and
  // residual update kept in width arithmetic. A wrapped deviation that still
  // divides exactly mis-solves; the truth comparison below catches it.
  tensor::MatI32 patched = faulted;
  for (std::size_t j = 0; j < n; ++j) {
    if (dc[j] == 0) continue;
    const std::int64_t wdc = width_sub(wobs_cols[j], wpred_cols[j], cfg.bits, cfg.overflow);
    std::size_t r = 0;
    if (!solve_line(dc[j], wdc, m, r)) continue;
    const std::int64_t value =
        util::sat_sub_i64(static_cast<std::int64_t>(patched(r, j)), dc[j]);
    if (value < INT32_MIN || value > INT32_MAX) continue;
    patched(r, j) = static_cast<std::int32_t>(value);
    dr[r] = width_sub(dr[r], dc[j], cfg.bits, cfg.overflow);
    wdr[r] = width_sub(wdr[r], static_cast<std::int64_t>(j + 1) * dc[j], cfg.bits, cfg.overflow);
  }
  for (std::size_t i = 0; i < m; ++i) {
    if (dr[i] == 0) continue;
    std::size_t c = 0;
    if (!solve_line(dr[i], wdr[i], n, c)) continue;
    const std::int64_t value =
        util::sat_sub_i64(static_cast<std::int64_t>(patched(i, c)), dr[i]);
    if (value < INT32_MIN || value > INT32_MAX) continue;
    patched(i, c) = static_cast<std::int32_t>(value);
  }

  for (std::size_t i = 0; i < m * n; ++i) {
    if (patched.flat()[i] != truth.flat()[i]) return false;
  }
  return true;
}

SaProtectedGemm::SaProtectedGemm(std::vector<DatapathConfig> datapaths,
                                 detect::DetectionConfig reference_cfg)
    : datapaths_(std::move(datapaths)), ref_(reference_screen_cfg(reference_cfg)) {
  for (const auto& d : datapaths_) check_bits(d.bits);
}

void SaProtectedGemm::set_weights_quantized(tensor::MatI8 w8, tensor::QuantParams qw) {
  ref_.set_weights_quantized(std::move(w8), qw);
}

SaRunResult SaProtectedGemm::run(const tensor::MatI8& a8, const fault::FaultInjector& injector,
                                 util::Rng& rng) const {
  SaRunResult result;
  SaRunScratch scratch;
  run_into(a8, injector, rng, result, scratch);
  return result;
}

void SaProtectedGemm::run_into(const tensor::MatI8& a8, const fault::FaultInjector& injector,
                               util::Rng& rng, SaRunResult& result,
                               SaRunScratch& scratch) const {
  if (ref_.weights().empty()) {
    throw std::logic_error("SaProtectedGemm: set_weights_quantized() not called");
  }
  if (a8.cols() != ref_.weights().rows()) {
    throw std::invalid_argument("SaProtectedGemm: activation/weight dim mismatch");
  }

  // One multiply; the fused store-phase reduction is the exact (eᵀA)·W for
  // the reference screen (same argument as ProtectedGemm: injection perturbs
  // the accumulator only after this line).
  tensor::gemm_i8_prepacked(a8, ref_.weights(), ref_.weight_panels(), scratch.truth,
                            &scratch.predicted_cols);
  scratch.faulted = scratch.truth;  // reuses capacity on steady-state shapes
  const fault::InjectionReport injection = injector.inject(scratch.faulted.flat(), rng,
                                                           &result.flips);

  // Ground truth is the NET effect: flips that cancel (two upsets on one bit)
  // leave the accumulator clean, and a screen that stays quiet then must not
  // be scored as a miss. Count DISTINCT corrupted elements — several flips
  // can land in one element, and the single-fault class (faulty_elems == 1)
  // is what the full-width patch-rate gate pins.
  result.faulty_elems = 0;
  for (std::size_t f = 0; f < result.flips.size(); ++f) {
    const auto idx = static_cast<std::size_t>(result.flips[f].index);
    if (scratch.faulted.flat()[idx] == scratch.truth.flat()[idx]) continue;
    bool seen = false;
    for (std::size_t g = 0; g < f; ++g) {
      seen = seen || static_cast<std::size_t>(result.flips[g].index) == idx;
    }
    if (!seen) ++result.faulty_elems;
  }
  result.truth_faulty = result.faulty_elems > 0;

  result.reference = detect::screen_accumulator(ref_.config(), scratch.predicted_cols, a8,
                                                ref_.weight_row_basis(), scratch.faulted);
  result.reference.injection = injection;
  // Full-width patch simulation: exact deviations, so this is what the int64
  // in-place corrector achieves on this trial (single faults always heal).
  result.reference_patched =
      result.truth_faulty && result.reference.faulty() &&
      simulate_patch(scratch.truth, scratch.faulted, DatapathConfig{64, Overflow::kWrap, 0, true});

  result.by_width.resize(datapaths_.size());
  for (std::size_t i = 0; i < datapaths_.size(); ++i) {
    result.by_width[i] = screen_into(scratch.truth, scratch.faulted, datapaths_[i], scratch.screen);
    result.by_width[i].patched =
        result.truth_faulty && result.by_width[i].flagged &&
        simulate_patch(scratch.truth, scratch.faulted, datapaths_[i]);
  }
}

}  // namespace realm::sa
