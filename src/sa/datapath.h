// Reduced-width checksum datapath model for the systolic array (Fig. 7).
//
// Everything in realm::detect screens with full int64 checksum arithmetic —
// the software-reference behavior. The paper's hardware proposal cannot
// afford 64-bit registers next to every column of the array: it keeps a
// 16-bit eᵀW checksum row, so the predicted-side registers, the observed-side
// registers, the per-column deviations, and the MSD accumulator are all
// reduced-width datapaths that either wrap or saturate on overflow. This
// layer is the bit-accurate model of that hardware: the same quantize → GEMM
// → inject → screen pipeline as detect::ProtectedGemm, but with every screen
// quantity routed through width-truncated registers — plus the bookkeeping to
// say exactly where the narrow datapath loses detections against the int64
// reference. It is the first subsystem in the repo that measures *coverage*
// rather than speed; the sweep harness on top of it lives in sa/roc.h.
//
// Overflow semantics (shared with tensor::kernels::*_i32_width):
//  * kWrap — carries out of the register drop (two's complement mod 2^bits).
//    Modular addition is associative, so a wrapped register equals the exact
//    sum reduced once — and detection events NEST across widths: a deviation
//    visible at width w is visible at every width > w, because d ≡ 0
//    (mod 2^W) implies d ≡ 0 (mod 2^w) for w < W but never the reverse. The
//    coverage curve is therefore provably monotone in width (pinned by
//    test_roc). The failure mode is ALIASING: error mass that is a multiple
//    of 2^bits screens as exactly clean — the width-16 miss the harness
//    demonstrates is a single +2^16 upset.
//  * kSaturate — every add clamps at the register rails. Not associative, so
//    the model pins the accumulation order a weight-stationary array drains
//    partial sums in (ascending row index for column registers, ascending
//    column index for row registers). The failure mode is RAIL PINNING: when
//    the predicted and observed registers both hit the same rail their
//    difference reads zero, hiding the fault (pinned by test_sa).
#pragma once

#include <cstdint>
#include <vector>

#include "detect/detect.h"
#include "fault/fault.h"
#include "tensor/tensor.h"
#include "util/bitmath.h"
#include "util/rng.h"

namespace realm::sa {

enum class Overflow : std::uint8_t {
  kWrap,      ///< drop carries (mod 2^bits) — the cheap-hardware default
  kSaturate,  ///< clamp at the rails, like the int64 reference's sat_add
};

[[nodiscard]] const char* to_string(Overflow o) noexcept;

/// One reduced-width checksum datapath to screen through.
struct DatapathConfig {
  int bits = 16;  ///< register width in [1, 64]; 64 reproduces the reference
  Overflow overflow = Overflow::kWrap;
  /// |MSD register| strictly greater than this flags a fault (same contract
  /// as DetectionConfig::msd_threshold; checksums are exact, so 0 gives zero
  /// false positives at every width).
  std::uint64_t msd_threshold = 0;
  /// Also screen per-column deviations and the row-side identity (the
  /// two-sided mode of the reference pipeline).
  bool two_sided = true;
};

/// One width-limited accumulator register (the scalar building block; the
/// matrix-sized reductions ride tensor::kernels::*_i32_width instead).
class Reg {
 public:
  /// Throws std::invalid_argument unless bits is in [1, 64].
  explicit Reg(int bits, Overflow overflow);

  void add(std::int64_t x) noexcept;
  [[nodiscard]] std::int64_t value() const noexcept { return value_; }

 private:
  std::int64_t value_ = 0;
  int bits_;
  Overflow overflow_;
};

/// What one reduced-width screen concluded about one accumulator.
struct ScreenResult {
  int bits = 0;  ///< echo of the datapath that produced this
  Overflow overflow = Overflow::kWrap;
  bool flagged = false;      ///< col_flagged || row_flagged
  bool col_flagged = false;  ///< MSD over threshold, or a nonzero column deviation
  bool row_flagged = false;  ///< a nonzero row deviation (two_sided only)
  std::int64_t msd = 0;      ///< final value of the width-limited MSD register
  std::size_t nonzero_cols = 0;
  std::size_t nonzero_rows = 0;
  /// The width-limited weighted-basis patch simulation reconstructed the
  /// fault-free product exactly (attempted only on flagged faulty trials;
  /// set by SaProtectedGemm::run_into, not by screen()).
  bool patched = false;
};

/// Recycled buffers for screen_into (column/row register files for both the
/// predicted and observed sides).
struct ScreenScratch {
  std::vector<std::int64_t> pred_cols, obs_cols, pred_rows, obs_rows;
};

/// Bit-accurate reduced-width screen of a faulted accumulator against the
/// fault-free product. `truth` feeds the predicted-side registers (the
/// dedicated fault-free checksum datapath of Fig. 7 sees the true partial
/// sums), `faulted` feeds the observed side; per-column/row deviations and
/// the MSD run through registers of the same width and overflow semantics.
/// Throws std::invalid_argument on shape mismatch or bits outside [1, 64].
[[nodiscard]] ScreenResult screen(const tensor::MatI32& truth, const tensor::MatI32& faulted,
                                  const DatapathConfig& cfg);
ScreenResult screen_into(const tensor::MatI32& truth, const tensor::MatI32& faulted,
                         const DatapathConfig& cfg, ScreenScratch& scratch);

/// Simulate the weighted-basis algebraic correction (detect/correct.h) with
/// every deviation — plain and weighted, column and row — routed through
/// width-limited registers of `cfg`'s width and overflow semantics (weighted
/// sums accumulate through `Reg` in the array's drain order). The solve and
/// the patch application are the same Plan A / Plan B construction the int64
/// corrector runs; success means the patched copy equals `truth` EXACTLY.
/// At bits == 64 this reproduces the exact corrector (single faults always
/// patch); at reduced widths wrapped/saturated deviations mis-solve and the
/// comparison fails — the correction-coverage loss the sweep measures.
/// Correction always uses both checksum sides (localization needs them),
/// independent of DatapathConfig::two_sided.
[[nodiscard]] bool simulate_patch(const tensor::MatI32& truth, const tensor::MatI32& faulted,
                                  const DatapathConfig& cfg);

/// Everything one protected run produced, at the reference width and at every
/// configured reduced width — the per-trial record the coverage harness
/// tallies.
struct SaRunResult {
  /// Injection net-changed the accumulator (two flips on one bit cancel; a
  /// run whose flips all cancel is ground-truth clean).
  bool truth_faulty = false;
  /// Net-corrupted accumulator elements (distinct indices where the faulted
  /// copy disagrees with the truth) — 1 is the single-fault class whose
  /// full-width patch rate the CI gate pins at 100%.
  std::size_t faulty_elems = 0;
  /// Full-width (exact) patch simulation healed this trial — what the int64
  /// in-place corrector achieves on the same faulted accumulator.
  bool reference_patched = false;
  /// Full-width int64 screen of the same faulted accumulator — what the
  /// software reference concludes (verdict is kClean or kDetected; this
  /// model never recomputes).
  detect::DetectionVerdict reference;
  /// Exact per-flip records from the injector (bit index + pre/post values).
  std::vector<fault::FlipRecord> flips;
  /// One entry per configured DatapathConfig, same order.
  std::vector<ScreenResult> by_width;

  /// Reduced-width datapath `i` missed a fault the int64 reference caught.
  [[nodiscard]] bool coverage_loss(std::size_t i) const {
    return truth_faulty && reference.faulty() && !by_width.at(i).flagged;
  }
};

/// Recycled buffers for run_into: the truth/faulted accumulators, the fused
/// predicted checksum, and the screen register files.
struct SaRunScratch {
  tensor::MatI32 truth, faulted;
  std::vector<std::int64_t> predicted_cols;
  ScreenScratch screen;
};

/// The checksum-protected systolic-array datapath at several checksum widths
/// at once: one GEMM, one injection, one int64 reference screen, and one
/// reduced-width screen per configured datapath — all over the SAME faulted
/// accumulator, so per-width verdicts are directly comparable.
///
/// Same thread-safety contract as detect::ProtectedGemm: immutable after
/// set_weights_quantized, so any number of threads may run() concurrently on
/// a const instance, each with its own Rng and scratch (the sweep harness
/// shards cells over the global pool this way).
class SaProtectedGemm {
 public:
  /// `datapaths` may be empty (reference-only runs). The reference screen
  /// uses `reference_cfg` with recompute_on_detect forced off — this model
  /// characterizes detection, it never replays.
  explicit SaProtectedGemm(std::vector<DatapathConfig> datapaths,
                           detect::DetectionConfig reference_cfg = {});

  void set_weights_quantized(tensor::MatI8 w8, tensor::QuantParams qw);

  [[nodiscard]] SaRunResult run(const tensor::MatI8& a8, const fault::FaultInjector& injector,
                                util::Rng& rng) const;
  void run_into(const tensor::MatI8& a8, const fault::FaultInjector& injector, util::Rng& rng,
                SaRunResult& result, SaRunScratch& scratch) const;

  [[nodiscard]] const std::vector<DatapathConfig>& datapaths() const noexcept {
    return datapaths_;
  }
  [[nodiscard]] const detect::ProtectedGemm& reference() const noexcept { return ref_; }

 private:
  std::vector<DatapathConfig> datapaths_;
  detect::ProtectedGemm ref_;  ///< owns the weights, bases, and SIMD panels
};

}  // namespace realm::sa
