// ROC / coverage characterization harness over the reduced-width datapath
// model (the paper's Fig. 6 critical-region map, generalized to checksum
// width): sweep BER × flipped-bit-position × shape, run the protected GEMM
// pipeline once per trial, screen the SAME faulted accumulator at every
// configured checksum width plus the int64 reference, and tally detection /
// miss / false-positive counts against injected ground truth.
//
// Determinism contract: cells are independent and each draws from its own
// forked RNG stream (seed → fork(cell_index)), exactly the scheme ServeEngine
// uses per request — results are a pure function of the config, identical at
// every thread count (cells shard over util::global_pool(); the GEMMs inside
// run inline on pool workers per the nesting rule). Pinned by test_roc.
//
// For wrap-overflow datapaths the per-trial detection events nest across
// widths (see sa/datapath.h), so every aggregate detection count is
// guaranteed monotone nondecreasing in width — the acceptance criterion the
// coverage_sweep tool asserts on every run.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "fault/fault.h"
#include "sa/datapath.h"
#include "util/table.h"

namespace realm::sa {

struct SweepShape {
  std::size_t m = 32, k = 128, n = 128;
};

struct SweepConfig {
  std::vector<SweepShape> shapes = {{32, 128, 128}};
  /// Checksum register widths to screen at (each becomes a DatapathConfig).
  std::vector<int> widths = {16, 24, 32, 64};
  Overflow overflow = Overflow::kWrap;
  /// Per-element probability of flipping the attacked bit (the
  /// SingleBitFlipInjector protocol: one pinned bit position per cell).
  std::vector<double> bers = {1e-4, 1e-3, 1e-2};
  /// Attacked accumulator bit positions (0 = LSB … 31 = sign).
  std::vector<int> bit_positions = {0, 8, 16, 24, 30};
  std::size_t trials = 16;  ///< protected GEMMs per cell
  std::uint64_t seed = 0x50c0;
  std::uint64_t msd_threshold = 0;
  bool two_sided = true;
  /// Memory-hierarchy components to attack — each adds a full BER ×
  /// bit-position × shape grid. kAccumulator is the classic post-GEMM upset
  /// (bit = accumulator bit 0..31); the other components corrupt the named
  /// operand image before the GEMM (bit % 8 selects the attacked bit within
  /// each byte) via fault::component_stream draws, so a component's cells
  /// replay bit-identically whichever other components are swept.
  /// kPackedPanels attacks the resident SIMD panels and is vacuous (all
  /// trials clean) on the portable tier, which holds none.
  std::vector<fault::Component> components = {fault::Component::kAccumulator};
};

/// Detection + correction tallies for one datapath within one cell (or
/// aggregated).
struct WidthTally {
  int bits = 0;
  std::size_t detected = 0;   ///< ground-truth faulty and flagged
  std::size_t missed = 0;     ///< ground-truth faulty, screened clean
  std::size_t false_pos = 0;  ///< ground-truth clean, flagged
  // Correction axis: the width-limited weighted-basis patch simulation
  // (sa::simulate_patch) run on every flagged faulty trial.
  std::size_t patched = 0;         ///< flagged trials the patch healed exactly
  std::size_t single_fault = 0;    ///< faulty trials corrupting exactly one element
  std::size_t single_patched = 0;  ///< single-fault trials the patch healed
  // Load/rest-time scrub axis (kWeights/kPackedPanels cells only; stays 0
  // for request-time components). A trial whose component image was
  // net-corrupted lands in exactly one of these two: for weights the scrub
  // compares W's row+col checksums through registers of THIS width (exact at
  // the int64 reference, where a miss is impossible — the gate
  // coverage_sweep enforces); for panels it is the width-independent
  // repack-compare, exact at every width.
  std::size_t scrub_caught = 0;
  std::size_t scrub_missed = 0;

  /// detected / faulty; 0 when no faulty trials (rates over an empty set
  /// stay finite so tables and JSON never carry NaN).
  [[nodiscard]] double detection_rate(std::size_t faulty) const noexcept {
    return faulty == 0 ? 0.0 : static_cast<double>(detected) / static_cast<double>(faulty);
  }
  /// patched / faulty — the fraction of injected faults healed in place.
  [[nodiscard]] double patch_rate(std::size_t faulty) const noexcept {
    return faulty == 0 ? 0.0 : static_cast<double>(patched) / static_cast<double>(faulty);
  }
  /// single_patched / single_fault — 1.0 at full width under wrap (the
  /// invariant coverage_sweep gates on).
  [[nodiscard]] double single_patch_rate() const noexcept {
    return single_fault == 0
               ? 0.0
               : static_cast<double>(single_patched) / static_cast<double>(single_fault);
  }

  bool operator==(const WidthTally&) const = default;
};

/// One sweep cell: a (shape, component, bit position, BER) tuple screened at
/// every width over the same `trials` seeded fault draws.
struct CellResult {
  std::size_t shape_index = 0;
  fault::Component component = fault::Component::kAccumulator;
  int bit = 0;
  double ber = 0.0;
  std::size_t trials = 0;
  std::size_t faulty_trials = 0;  ///< injections whose net effect was nonzero
  WidthTally reference;           ///< the int64 exact screen (bits = 64)
  std::vector<WidthTally> widths;

  bool operator==(const CellResult&) const = default;
};

struct SweepResult {
  SweepConfig cfg;  ///< echo of what produced the cells
  /// Shape-major, then component, then bit position, then BER: the cell at
  /// (((s * components + q) * bits + b) * bers + e) covers shapes[s],
  /// components[q], bit_positions[b], bers[e]. With the default single-
  /// component config this is the classic (shape, bit, ber) layout — and
  /// every cell's fault stream is forked from the COMPONENT-FREE index
  /// (s*bits + b)*bers + e, so a cell's draws are bit-identical whichever
  /// other components are swept alongside it (stream independence, pinned
  /// by test_fault_model).
  std::vector<CellResult> cells;
};

/// Run the sweep, sharding cells over util::global_pool(). Throws
/// std::invalid_argument on an empty/degenerate config (no shapes, widths,
/// BERs, or bit positions; trials == 0; BER outside [0,1]; bit outside
/// [0,31]; k outside (0, tensor::kMaxK]).
[[nodiscard]] SweepResult run_sweep(const SweepConfig& cfg);

/// Aggregate totals across every cell — the coverage-vs-width curve.
struct CoverageSummary {
  std::size_t trials = 0;
  std::size_t faulty = 0;
  WidthTally reference;
  std::vector<WidthTally> widths;  ///< same order as cfg.widths
};
[[nodiscard]] CoverageSummary summarize(const SweepResult& r);

/// Critical-region map for one shape at one width: bit positions down, BERs
/// across, per-cell detection rate ("-" when a cell saw no faulty trial).
/// Pass bits == -1 for the int64 reference screen. Throws if shape_index or
/// bits does not name a swept cell/width. This overload reads the FIRST
/// swept component's cells (the whole grid under the default config).
[[nodiscard]] util::TablePrinter critical_region_table(const SweepResult& r,
                                                       std::size_t shape_index, int bits);

/// Component-addressed variant: the map for shapes[shape_index] ×
/// components[component_index] at `bits`. Throws if component_index does not
/// name a swept component.
[[nodiscard]] util::TablePrinter critical_region_table(const SweepResult& r,
                                                       std::size_t shape_index,
                                                       std::size_t component_index, int bits);

/// Long-format CSV through util::TablePrinter: one row per cell per datapath
/// (reference rows carry model "reference", reduced rows "wrap"/"saturate").
void write_csv(std::ostream& os, const SweepResult& r);

/// Machine-readable record mirroring the CSV, for CI artifacts.
void write_json(std::ostream& os, const SweepResult& r);

}  // namespace realm::sa
