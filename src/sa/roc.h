// ROC / coverage characterization harness over the reduced-width datapath
// model (the paper's Fig. 6 critical-region map, generalized to checksum
// width): sweep BER × flipped-bit-position × shape, run the protected GEMM
// pipeline once per trial, screen the SAME faulted accumulator at every
// configured checksum width plus the int64 reference, and tally detection /
// miss / false-positive counts against injected ground truth.
//
// Determinism contract: cells are independent and each draws from its own
// forked RNG stream (seed → fork(cell_index)), exactly the scheme ServeEngine
// uses per request — results are a pure function of the config, identical at
// every thread count (cells shard over util::global_pool(); the GEMMs inside
// run inline on pool workers per the nesting rule). Pinned by test_roc.
//
// For wrap-overflow datapaths the per-trial detection events nest across
// widths (see sa/datapath.h), so every aggregate detection count is
// guaranteed monotone nondecreasing in width — the acceptance criterion the
// coverage_sweep tool asserts on every run.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "sa/datapath.h"
#include "util/table.h"

namespace realm::sa {

struct SweepShape {
  std::size_t m = 32, k = 128, n = 128;
};

struct SweepConfig {
  std::vector<SweepShape> shapes = {{32, 128, 128}};
  /// Checksum register widths to screen at (each becomes a DatapathConfig).
  std::vector<int> widths = {16, 24, 32, 64};
  Overflow overflow = Overflow::kWrap;
  /// Per-element probability of flipping the attacked bit (the
  /// SingleBitFlipInjector protocol: one pinned bit position per cell).
  std::vector<double> bers = {1e-4, 1e-3, 1e-2};
  /// Attacked accumulator bit positions (0 = LSB … 31 = sign).
  std::vector<int> bit_positions = {0, 8, 16, 24, 30};
  std::size_t trials = 16;  ///< protected GEMMs per cell
  std::uint64_t seed = 0x50c0;
  std::uint64_t msd_threshold = 0;
  bool two_sided = true;
};

/// Detection + correction tallies for one datapath within one cell (or
/// aggregated).
struct WidthTally {
  int bits = 0;
  std::size_t detected = 0;   ///< ground-truth faulty and flagged
  std::size_t missed = 0;     ///< ground-truth faulty, screened clean
  std::size_t false_pos = 0;  ///< ground-truth clean, flagged
  // Correction axis: the width-limited weighted-basis patch simulation
  // (sa::simulate_patch) run on every flagged faulty trial.
  std::size_t patched = 0;         ///< flagged trials the patch healed exactly
  std::size_t single_fault = 0;    ///< faulty trials corrupting exactly one element
  std::size_t single_patched = 0;  ///< single-fault trials the patch healed

  /// detected / faulty; 0 when no faulty trials (rates over an empty set
  /// stay finite so tables and JSON never carry NaN).
  [[nodiscard]] double detection_rate(std::size_t faulty) const noexcept {
    return faulty == 0 ? 0.0 : static_cast<double>(detected) / static_cast<double>(faulty);
  }
  /// patched / faulty — the fraction of injected faults healed in place.
  [[nodiscard]] double patch_rate(std::size_t faulty) const noexcept {
    return faulty == 0 ? 0.0 : static_cast<double>(patched) / static_cast<double>(faulty);
  }
  /// single_patched / single_fault — 1.0 at full width under wrap (the
  /// invariant coverage_sweep gates on).
  [[nodiscard]] double single_patch_rate() const noexcept {
    return single_fault == 0
               ? 0.0
               : static_cast<double>(single_patched) / static_cast<double>(single_fault);
  }

  bool operator==(const WidthTally&) const = default;
};

/// One sweep cell: a (shape, bit position, BER) triple screened at every
/// width over the same `trials` seeded fault draws.
struct CellResult {
  std::size_t shape_index = 0;
  int bit = 0;
  double ber = 0.0;
  std::size_t trials = 0;
  std::size_t faulty_trials = 0;  ///< injections whose net effect was nonzero
  WidthTally reference;           ///< the int64 exact screen (bits = 64)
  std::vector<WidthTally> widths;

  bool operator==(const CellResult&) const = default;
};

struct SweepResult {
  SweepConfig cfg;  ///< echo of what produced the cells
  /// Shape-major, then bit position, then BER (the cell at
  /// ((s * bits + b) * bers + e) covers shapes[s], bit_positions[b], bers[e]).
  std::vector<CellResult> cells;
};

/// Run the sweep, sharding cells over util::global_pool(). Throws
/// std::invalid_argument on an empty/degenerate config (no shapes, widths,
/// BERs, or bit positions; trials == 0; BER outside [0,1]; bit outside
/// [0,31]; k outside (0, tensor::kMaxK]).
[[nodiscard]] SweepResult run_sweep(const SweepConfig& cfg);

/// Aggregate totals across every cell — the coverage-vs-width curve.
struct CoverageSummary {
  std::size_t trials = 0;
  std::size_t faulty = 0;
  WidthTally reference;
  std::vector<WidthTally> widths;  ///< same order as cfg.widths
};
[[nodiscard]] CoverageSummary summarize(const SweepResult& r);

/// Critical-region map for one shape at one width: bit positions down, BERs
/// across, per-cell detection rate ("-" when a cell saw no faulty trial).
/// Pass bits == -1 for the int64 reference screen. Throws if shape_index or
/// bits does not name a swept cell/width.
[[nodiscard]] util::TablePrinter critical_region_table(const SweepResult& r,
                                                       std::size_t shape_index, int bits);

/// Long-format CSV through util::TablePrinter: one row per cell per datapath
/// (reference rows carry model "reference", reduced rows "wrap"/"saturate").
void write_csv(std::ostream& os, const SweepResult& r);

/// Machine-readable record mirroring the CSV, for CI artifacts.
void write_json(std::ostream& os, const SweepResult& r);

}  // namespace realm::sa
