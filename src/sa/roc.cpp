#include "sa/roc.h"

#include <algorithm>
#include <ostream>
#include <stdexcept>
#include <string>

#include "fault/memory.h"
#include "tensor/gemm.h"
#include "util/threadpool.h"

namespace realm::sa {

namespace {

/// Disjoint fork-tag spaces: cells take the low tags, per-shape weight
/// synthesis the high ones, so no cell stream can collide with a weight
/// stream however large the grid grows.
constexpr std::uint64_t kWeightTagBase = 0x77e1647'00000000ULL;

void validate(const SweepConfig& cfg) {
  if (cfg.shapes.empty() || cfg.widths.empty() || cfg.bers.empty() ||
      cfg.bit_positions.empty()) {
    throw std::invalid_argument("run_sweep: shapes/widths/bers/bit_positions must be non-empty");
  }
  if (cfg.components.empty()) {
    throw std::invalid_argument("run_sweep: components must be non-empty");
  }
  if (cfg.trials == 0) throw std::invalid_argument("run_sweep: trials must be >= 1");
  for (const auto& s : cfg.shapes) {
    if (s.m == 0 || s.n == 0 || s.k == 0 || s.k > tensor::kMaxK) {
      throw std::invalid_argument("run_sweep: shape dims must be > 0 with k <= 2^16");
    }
  }
  for (const double b : cfg.bers) {
    if (!(b >= 0.0 && b <= 1.0)) throw std::invalid_argument("run_sweep: BER must be in [0,1]");
  }
  for (const int b : cfg.bit_positions) {
    if (b < 0 || b > 31) throw std::invalid_argument("run_sweep: bit position must be in [0,31]");
  }
  // Width range is validated by the DatapathConfig/Reg construction below.
}

void tally(WidthTally& t, bool flagged, bool truth_faulty, bool patched, bool single_fault) {
  if (truth_faulty) {
    ++(flagged ? t.detected : t.missed);
    if (patched) ++t.patched;
    if (single_fault) {
      ++t.single_fault;
      if (patched) ++t.single_patched;
    }
  } else if (flagged) {
    ++t.false_pos;
  }
}

tensor::MatI8 random_i8(std::size_t rows, std::size_t cols, util::Rng& rng) {
  tensor::MatI8 m(rows, cols);
  for (auto& x : m.flat()) x = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
  return m;
}

std::string rate_cell(const WidthTally& t, std::size_t faulty) {
  return faulty == 0 ? "-" : util::TablePrinter::num(t.detection_rate(faulty), 3);
}

/// The load/rest weight scrub at one register width: recompute W's plain
/// row+col checksums from the corrupted image through `Reg`s of the
/// datapath's width and compare against the clean-captured bases at the same
/// width. At bits == 64 (wrap) this is the exact int64 scrub
/// detect::ProtectedGemm::verify_weight_integrity runs.
bool weight_scrub_catches(const tensor::MatI8& clean, const tensor::MatI8& corrupt,
                          const DatapathConfig& dp) {
  for (std::size_t i = 0; i < clean.rows(); ++i) {
    Reg base(dp.bits, dp.overflow), resident(dp.bits, dp.overflow);
    for (std::size_t j = 0; j < clean.cols(); ++j) {
      base.add(clean(i, j));
      resident.add(corrupt(i, j));
    }
    if (base.value() != resident.value()) return true;
  }
  for (std::size_t j = 0; j < clean.cols(); ++j) {
    Reg base(dp.bits, dp.overflow), resident(dp.bits, dp.overflow);
    for (std::size_t i = 0; i < clean.rows(); ++i) {
      base.add(clean(i, j));
      resident.add(corrupt(i, j));
    }
    if (base.value() != resident.value()) return true;
  }
  return false;
}

/// Per-cell fault model attacking exactly one component: BER from the cell,
/// pinned bit = cell.bit % 8 within every byte (the operand-image analogue of
/// the accumulator sweep's pinned-bit protocol).
fault::MemoryFaultModel cell_fault_model(const SweepConfig& cfg, fault::Component comp,
                                         double ber, int bit) {
  fault::MemoryFaultConfig mfc;
  mfc.seed = cfg.seed;
  fault::ComponentParams cp;
  cp.ber = ber;
  cp.bit_lo = cp.bit_hi = bit % 8;
  switch (comp) {
    case fault::Component::kWeights: mfc.weights = cp; break;
    case fault::Component::kPackedPanels: mfc.packed_panels = cp; break;
    case fault::Component::kActivations: mfc.activations = cp; break;
    case fault::Component::kAccumulator: break;  // not driven by this model
  }
  return fault::MemoryFaultModel(mfc);
}

}  // namespace

SweepResult run_sweep(const SweepConfig& cfg) {
  validate(cfg);

  std::vector<DatapathConfig> datapaths;
  datapaths.reserve(cfg.widths.size());
  for (const int w : cfg.widths) {
    datapaths.push_back({w, cfg.overflow, cfg.msd_threshold, cfg.two_sided});
  }

  const util::Rng base(cfg.seed);

  // One model per shape, weights synthesized from a shape-tagged stream and
  // resident (bases + SIMD panels) for every cell of that shape.
  std::vector<SaProtectedGemm> models;
  models.reserve(cfg.shapes.size());
  for (std::size_t s = 0; s < cfg.shapes.size(); ++s) {
    detect::DetectionConfig ref_cfg;
    ref_cfg.msd_threshold = cfg.msd_threshold;
    ref_cfg.mode = cfg.two_sided ? detect::CheckMode::kTwoSided : detect::CheckMode::kMsdOnly;
    models.emplace_back(datapaths, ref_cfg);
    util::Rng wrng = base.fork(kWeightTagBase + s);
    models[s].set_weights_quantized(random_i8(cfg.shapes[s].k, cfg.shapes[s].n, wrng),
                                    tensor::QuantParams{0.02f});
  }

  SweepResult result;
  result.cfg = cfg;
  const std::size_t num_e = cfg.bers.size();
  const std::size_t num_b = cfg.bit_positions.size();
  const std::size_t num_q = cfg.components.size();
  const std::size_t cell_count = cfg.shapes.size() * num_q * num_b * num_e;
  result.cells.resize(cell_count);

  // Exact reference datapath for the operand-corruption components: 64-bit
  // wrap is plain int64 arithmetic, so this screen/patch pair is what the
  // software reference concludes about the same truth/faulted accumulators.
  const DatapathConfig ref_dp{64, Overflow::kWrap, cfg.msd_threshold, cfg.two_sided};

  // Cells shard over the global pool; each owns its result slot and draws
  // from its own forked stream, so the sweep is bit-identical at any thread
  // count (the per-cell GEMMs run inline on the worker per the nesting rule).
  util::global_pool().parallel_for(cell_count, 1, [&](std::size_t c0, std::size_t c1) {
    SaRunResult run;
    SaRunScratch scratch;
    tensor::MatI8 w_corrupt, a_corrupt;
    tensor::MatI32 truth, faulted;
    for (std::size_t c = c0; c < c1; ++c) {
      const std::size_t e = c % num_e;
      const std::size_t b = (c / num_e) % num_b;
      const std::size_t q = (c / (num_e * num_b)) % num_q;
      const std::size_t s = c / (num_e * num_b * num_q);
      // Component-free stream index: equal to c under the default single-
      // component config (preserving the classic streams bit-for-bit), and
      // independent of WHICH components are swept — a cell's draws never
      // shift when components are added or removed around it.
      const std::size_t qfree = (s * num_b + b) * num_e + e;

      CellResult& cell = result.cells[c];
      cell.shape_index = s;
      cell.component = cfg.components[q];
      cell.bit = cfg.bit_positions[b];
      cell.ber = cfg.bers[e];
      cell.trials = cfg.trials;
      cell.reference.bits = 64;
      cell.widths.resize(cfg.widths.size());
      for (std::size_t w = 0; w < cfg.widths.size(); ++w) cell.widths[w].bits = cfg.widths[w];

      util::Rng rng = base.fork(qfree);
      if (cell.component == fault::Component::kAccumulator) {
        const fault::SingleBitFlipInjector injector(cell.ber, cell.bit);
        for (std::size_t t = 0; t < cfg.trials; ++t) {
          const tensor::MatI8 a8 = random_i8(cfg.shapes[s].m, cfg.shapes[s].k, rng);
          models[s].run_into(a8, injector, rng, run, scratch);
          if (run.truth_faulty) ++cell.faulty_trials;
          const bool single = run.faulty_elems == 1;
          tally(cell.reference, run.reference.faulty(), run.truth_faulty, run.reference_patched,
                single);
          for (std::size_t w = 0; w < run.by_width.size(); ++w) {
            tally(cell.widths[w], run.by_width[w].flagged, run.truth_faulty,
                  run.by_width[w].patched, single);
          }
        }
        continue;
      }

      // Operand-corruption components: strike the named image pre-GEMM from
      // its own counter-based stream, compare the corrupted product against
      // the clean one through every screen width, and (for the at-rest
      // components) tally whether the load/rest scrub would have caught the
      // image damage before the request even ran.
      const fault::MemoryFaultModel mem = cell_fault_model(cfg, cell.component, cell.ber,
                                                           cell.bit);
      const detect::ProtectedGemm& ref = models[s].reference();
      const tensor::MatI8& w8 = ref.weights();
      const tensor::kernels::PackedB& panels = ref.weight_panels();
      for (std::size_t t = 0; t < cfg.trials; ++t) {
        const tensor::MatI8 a8 = random_i8(cfg.shapes[s].m, cfg.shapes[s].k, rng);
        const std::uint64_t op = fault::compose_op(qfree, t);
        bool image_corrupted = false;
        tensor::gemm_i8_prepacked(a8, w8, panels, truth);
        switch (cell.component) {
          case fault::Component::kWeights: {
            w_corrupt = w8;
            mem.corrupt(fault::Component::kWeights, op, w_corrupt.flat());
            const auto cl = w8.flat();
            const auto co = w_corrupt.flat();
            image_corrupted = !std::equal(cl.begin(), cl.end(), co.begin());
            tensor::gemm_i8(a8, w_corrupt, faulted);
            break;
          }
          case fault::Component::kPackedPanels: {
            tensor::kernels::PackedB pb = panels;
            mem.corrupt16(fault::Component::kPackedPanels, op, pb.mutable_panels());
            const auto cl = panels.raw_panels();
            const auto co = pb.raw_panels();
            image_corrupted = !std::equal(cl.begin(), cl.end(), co.begin());
            tensor::gemm_i8_prepacked(a8, w8, pb, faulted);
            break;
          }
          case fault::Component::kActivations: {
            a_corrupt = a8;
            mem.corrupt(fault::Component::kActivations, op, a_corrupt.flat());
            tensor::gemm_i8_prepacked(a_corrupt, w8, panels, faulted);
            break;
          }
          case fault::Component::kAccumulator: break;  // handled above
        }

        const auto tf = truth.flat();
        const auto ff = faulted.flat();
        std::size_t faulty_elems = 0;
        for (std::size_t i = 0; i < tf.size(); ++i) {
          if (tf[i] != ff[i]) ++faulty_elems;
        }
        const bool truth_faulty = faulty_elems != 0;
        if (truth_faulty) ++cell.faulty_trials;
        const bool single = faulty_elems == 1;

        const ScreenResult ref_screen = screen_into(truth, faulted, ref_dp, scratch.screen);
        const bool ref_patched =
            ref_screen.flagged && truth_faulty && simulate_patch(truth, faulted, ref_dp);
        tally(cell.reference, ref_screen.flagged, truth_faulty, ref_patched, single);
        for (std::size_t w = 0; w < datapaths.size(); ++w) {
          const ScreenResult sr = screen_into(truth, faulted, datapaths[w], scratch.screen);
          const bool patched =
              sr.flagged && truth_faulty && simulate_patch(truth, faulted, datapaths[w]);
          tally(cell.widths[w], sr.flagged, truth_faulty, patched, single);
        }

        if (image_corrupted) {
          if (cell.component == fault::Component::kWeights) {
            ++(weight_scrub_catches(w8, w_corrupt, ref_dp) ? cell.reference.scrub_caught
                                                           : cell.reference.scrub_missed);
            for (std::size_t w = 0; w < datapaths.size(); ++w) {
              ++(weight_scrub_catches(w8, w_corrupt, datapaths[w]) ? cell.widths[w].scrub_caught
                                                                   : cell.widths[w].scrub_missed);
            }
          } else {
            // Panel scrub = repack-compare: byte-exact at every width, so a
            // net-corrupted panel image is always caught.
            ++cell.reference.scrub_caught;
            for (std::size_t w = 0; w < datapaths.size(); ++w) ++cell.widths[w].scrub_caught;
          }
        }
      }
    }
  });
  return result;
}

CoverageSummary summarize(const SweepResult& r) {
  CoverageSummary sum;
  sum.reference.bits = 64;
  sum.widths.resize(r.cfg.widths.size());
  for (std::size_t w = 0; w < r.cfg.widths.size(); ++w) sum.widths[w].bits = r.cfg.widths[w];
  for (const CellResult& cell : r.cells) {
    sum.trials += cell.trials;
    sum.faulty += cell.faulty_trials;
    sum.reference.detected += cell.reference.detected;
    sum.reference.missed += cell.reference.missed;
    sum.reference.false_pos += cell.reference.false_pos;
    sum.reference.patched += cell.reference.patched;
    sum.reference.single_fault += cell.reference.single_fault;
    sum.reference.single_patched += cell.reference.single_patched;
    sum.reference.scrub_caught += cell.reference.scrub_caught;
    sum.reference.scrub_missed += cell.reference.scrub_missed;
    for (std::size_t w = 0; w < cell.widths.size(); ++w) {
      sum.widths[w].detected += cell.widths[w].detected;
      sum.widths[w].missed += cell.widths[w].missed;
      sum.widths[w].false_pos += cell.widths[w].false_pos;
      sum.widths[w].patched += cell.widths[w].patched;
      sum.widths[w].single_fault += cell.widths[w].single_fault;
      sum.widths[w].single_patched += cell.widths[w].single_patched;
      sum.widths[w].scrub_caught += cell.widths[w].scrub_caught;
      sum.widths[w].scrub_missed += cell.widths[w].scrub_missed;
    }
  }
  return sum;
}

util::TablePrinter critical_region_table(const SweepResult& r, std::size_t shape_index,
                                         int bits) {
  return critical_region_table(r, shape_index, std::size_t{0}, bits);
}

util::TablePrinter critical_region_table(const SweepResult& r, std::size_t shape_index,
                                         std::size_t component_index, int bits) {
  if (shape_index >= r.cfg.shapes.size()) {
    throw std::invalid_argument("critical_region_table: shape_index out of range");
  }
  if (component_index >= r.cfg.components.size()) {
    throw std::invalid_argument("critical_region_table: component_index out of range");
  }
  std::size_t width_index = r.cfg.widths.size();
  if (bits != -1) {
    for (std::size_t w = 0; w < r.cfg.widths.size(); ++w) {
      if (r.cfg.widths[w] == bits) width_index = w;
    }
    if (width_index == r.cfg.widths.size()) {
      throw std::invalid_argument("critical_region_table: width not swept");
    }
  }

  const SweepShape& shape = r.cfg.shapes[shape_index];
  const fault::Component component = r.cfg.components[component_index];
  const std::string datapath =
      bits == -1 ? "int64 reference"
                 : std::to_string(bits) + "-bit " + to_string(r.cfg.overflow);
  util::TablePrinter table("critical region — detection rate, shape " + std::to_string(shape.m) +
                           "x" + std::to_string(shape.k) + "x" + std::to_string(shape.n) + ", " +
                           fault::to_string(component) + ", " + datapath);
  std::vector<std::string> header{"bit\\ber"};
  for (const double ber : r.cfg.bers) header.push_back(util::TablePrinter::sci(ber, 0));
  table.header(std::move(header));

  for (std::size_t b = 0; b < r.cfg.bit_positions.size(); ++b) {
    std::vector<std::string> row{std::to_string(r.cfg.bit_positions[b])};
    for (std::size_t e = 0; e < r.cfg.bers.size(); ++e) {
      const std::size_t c = ((shape_index * r.cfg.components.size() + component_index) *
                                 r.cfg.bit_positions.size() +
                             b) *
                                r.cfg.bers.size() +
                            e;
      const CellResult& cell = r.cells[c];
      const WidthTally& t = bits == -1 ? cell.reference : cell.widths[width_index];
      row.push_back(rate_cell(t, cell.faulty_trials));
    }
    table.row(std::move(row));
  }
  return table;
}

void write_csv(std::ostream& os, const SweepResult& r) {
  util::TablePrinter table;
  table.header({"shape", "m", "k", "n", "bit", "ber", "width", "model", "component", "trials",
                "faulty", "detected", "missed", "false_pos", "detection_rate", "patched",
                "single_fault", "single_patched", "patch_rate", "single_patch_rate",
                "scrub_caught", "scrub_missed"});
  const auto emit = [&](const CellResult& cell, const WidthTally& t, const char* model) {
    const SweepShape& shape = r.cfg.shapes[cell.shape_index];
    table.row({std::to_string(cell.shape_index), std::to_string(shape.m), std::to_string(shape.k),
               std::to_string(shape.n), std::to_string(cell.bit),
               util::TablePrinter::sci(cell.ber, 3), std::to_string(t.bits), model,
               fault::to_string(cell.component), std::to_string(cell.trials),
               std::to_string(cell.faulty_trials), std::to_string(t.detected),
               std::to_string(t.missed), std::to_string(t.false_pos),
               util::TablePrinter::num(t.detection_rate(cell.faulty_trials), 4),
               std::to_string(t.patched), std::to_string(t.single_fault),
               std::to_string(t.single_patched),
               util::TablePrinter::num(t.patch_rate(cell.faulty_trials), 4),
               util::TablePrinter::num(t.single_patch_rate(), 4),
               std::to_string(t.scrub_caught), std::to_string(t.scrub_missed)});
  };
  for (const CellResult& cell : r.cells) {
    emit(cell, cell.reference, "reference");
    for (const WidthTally& t : cell.widths) emit(cell, t, to_string(r.cfg.overflow));
  }
  table.print_csv(os);
}

void write_json(std::ostream& os, const SweepResult& r) {
  const auto tally_json = [&os](const WidthTally& t, std::size_t faulty) {
    os << "{\"bits\": " << t.bits << ", \"detected\": " << t.detected
       << ", \"missed\": " << t.missed << ", \"false_pos\": " << t.false_pos
       << ", \"detection_rate\": " << util::TablePrinter::num(t.detection_rate(faulty), 4)
       << ", \"patched\": " << t.patched << ", \"single_fault\": " << t.single_fault
       << ", \"single_patched\": " << t.single_patched
       << ", \"patch_rate\": " << util::TablePrinter::num(t.patch_rate(faulty), 4)
       << ", \"single_patch_rate\": " << util::TablePrinter::num(t.single_patch_rate(), 4)
       << ", \"scrub_caught\": " << t.scrub_caught << ", \"scrub_missed\": " << t.scrub_missed
       << "}";
  };
  os << "{\n  \"schema_version\": 1,\n";
  os << "  \"overflow\": \"" << to_string(r.cfg.overflow) << "\",\n";
  os << "  \"seed\": " << r.cfg.seed << ",\n";
  os << "  \"trials_per_cell\": " << r.cfg.trials << ",\n";
  os << "  \"msd_threshold\": " << r.cfg.msd_threshold << ",\n";
  os << "  \"two_sided\": " << (r.cfg.two_sided ? "true" : "false") << ",\n";
  os << "  \"shapes\": [";
  for (std::size_t s = 0; s < r.cfg.shapes.size(); ++s) {
    os << (s ? ", " : "") << "{\"m\": " << r.cfg.shapes[s].m << ", \"k\": " << r.cfg.shapes[s].k
       << ", \"n\": " << r.cfg.shapes[s].n << "}";
  }
  os << "],\n  \"widths\": [";
  for (std::size_t w = 0; w < r.cfg.widths.size(); ++w) {
    os << (w ? ", " : "") << r.cfg.widths[w];
  }
  os << "],\n  \"components\": [";
  for (std::size_t q = 0; q < r.cfg.components.size(); ++q) {
    os << (q ? ", " : "") << "\"" << fault::to_string(r.cfg.components[q]) << "\"";
  }
  os << "],\n  \"cells\": [\n";
  for (std::size_t c = 0; c < r.cells.size(); ++c) {
    const CellResult& cell = r.cells[c];
    os << "    {\"shape\": " << cell.shape_index << ", \"component\": \""
       << fault::to_string(cell.component) << "\", \"bit\": " << cell.bit
       << ", \"ber\": " << util::TablePrinter::sci(cell.ber, 3)
       << ", \"trials\": " << cell.trials << ", \"faulty\": " << cell.faulty_trials
       << ", \"reference\": ";
    tally_json(cell.reference, cell.faulty_trials);
    os << ", \"widths\": [";
    for (std::size_t w = 0; w < cell.widths.size(); ++w) {
      if (w) os << ", ";
      tally_json(cell.widths[w], cell.faulty_trials);
    }
    os << "]}" << (c + 1 < r.cells.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace realm::sa
