#include "serve/tile_grid.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>

#include "fault/memory.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/gemm.h"

namespace realm::serve {

namespace {

/// Severity order for the worst-wins merge: an uncorrected detection outranks
/// either certified correction, and the recompute replay (the latency cliff)
/// outranks the in-place patch, which outranks clean.
int severity(detect::Verdict v) noexcept {
  switch (v) {
    case detect::Verdict::kClean: return 0;
    case detect::Verdict::kPatched: return 1;
    case detect::Verdict::kRecomputed: return 2;
    case detect::Verdict::kDetected: return 3;
  }
  return 0;
}

}  // namespace

void BatchVerdict::reset() noexcept {
  verdict = detect::Verdict::kClean;
  tiles = tiles_clean = tiles_detected = tiles_patched = tiles_recomputed = 0;
  msd_abs_max = 0;
  max_dev_pow2 = 0;
  fault_cols.clear();
  fault_rows.clear();
  injection = {};
  component_flips = {};
}

void BatchVerdict::merge_tile(const detect::DetectionVerdict& v, std::size_t col_origin) {
  ++tiles;
  switch (v.verdict) {
    case detect::Verdict::kClean: ++tiles_clean; break;
    case detect::Verdict::kDetected: ++tiles_detected; break;
    case detect::Verdict::kPatched: ++tiles_patched; break;
    case detect::Verdict::kRecomputed: ++tiles_recomputed; break;
  }
  if (severity(v.verdict) > severity(verdict)) verdict = v.verdict;
  msd_abs_max = std::max(msd_abs_max, v.msd_abs);
  max_dev_pow2 = std::max(max_dev_pow2, v.max_dev_pow2);
  for (const std::size_t c : v.fault_cols) fault_cols.push_back(col_origin + c);
  fault_rows.insert(fault_rows.end(), v.fault_rows.begin(), v.fault_rows.end());
  injection.flipped_bits += v.injection.flipped_bits;
  injection.corrupted_values += v.injection.corrupted_values;
  for (std::size_t i = 0; i < fault::kComponentCount; ++i) {
    component_flips[i] += v.component_flips[i];
  }
}

void BatchVerdict::finalize() {
  std::sort(fault_rows.begin(), fault_rows.end());
  fault_rows.erase(std::unique(fault_rows.begin(), fault_rows.end()), fault_rows.end());
}

TileGrid::TileGrid(const tensor::MatI8& w8, tensor::QuantParams qw, TileGridConfig cfg)
    : cfg_(cfg) {
  build(w8, qw);
}

TileGrid::TileGrid(const tensor::MatF& w, TileGridConfig cfg) : cfg_(cfg) {
  // One scale for the whole matrix: per-tile calibration would give each
  // shard a different scale and break bit-identity with an unsharded run.
  const tensor::QuantParams qw = tensor::calibrate(w.flat());
  build(tensor::quantize(w, qw), qw);
}

void TileGrid::emit_instant(obs::SpanKind kind, std::size_t t) const {
  if constexpr (obs::kTraceCompiledIn) {
    if (cfg_.tracer == nullptr) return;
    obs::Event e;
    e.span_id = obs::span_id(0, static_cast<std::int32_t>(t), kind);
    e.t_start_ns = e.t_end_ns = cfg_.tracer->now_ns();
    e.tile = static_cast<std::int32_t>(t);
    e.kind = kind;
    cfg_.tracer->record_control(e);
  }
}

void TileGrid::build(const tensor::MatI8& w8, tensor::QuantParams qw) {
  if (w8.empty()) throw std::invalid_argument("TileGrid: empty weights");
  if (cfg_.tile_cols == 0) throw std::invalid_argument("TileGrid: tile_cols must be >= 1");
  if (cfg_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *cfg_.metrics;
    met_.swaps = &reg.counter("realm_grid_swaps_total", "Hot-swap tile installs (scrub passed).");
    met_.scrub_rejects = &reg.counter("realm_grid_scrub_rejects_total",
                                      "Hot-swap candidates rejected by the weight scrub.");
    met_.swap_epoch = &reg.gauge("realm_grid_swap_epoch", "Monotone swap-install epoch.");
    for (std::size_t i = 0; i < fault::kComponentCount; ++i) {
      const auto c = static_cast<fault::Component>(i);
      met_.memory_flips[i] =
          &reg.counter("realm_grid_memory_flips_total",
                       "Load/rest-time memory-fault bit flips by component.",
                       std::string("component=\"") + fault::to_string(c) + "\"");
    }
  }
  rows_ = w8.rows();
  cols_ = w8.cols();
  const std::size_t ntiles = (cols_ + cfg_.tile_cols - 1) / cfg_.tile_cols;
  tiles_.reserve(ntiles);
  origins_.reserve(ntiles);
  widths_.reserve(ntiles);
  for (std::size_t origin = 0; origin < cols_; origin += cfg_.tile_cols) {
    const std::size_t width = std::min(cfg_.tile_cols, cols_ - origin);
    tensor::MatI8 slice(rows_, width);
    for (std::size_t r = 0; r < rows_; ++r) {
      std::memcpy(slice.row(r).data(), w8.row(r).data() + origin, width);
    }
    auto tile = std::make_shared<detect::ProtectedGemm>(cfg_.detect);
    tile->set_weights_quantized(std::move(slice), qw);
    tiles_.push_back(std::move(tile));
    origins_.push_back(origin);
    widths_.push_back(width);
  }
}

TileGrid::TileHandle TileGrid::tile(std::size_t t) const {
  const std::lock_guard<std::mutex> lock(swap_mu_);
  return tiles_.at(t);
}

bool TileGrid::swap_tile(std::size_t t, tensor::MatI8 slice, tensor::QuantParams qw) {
  if (t >= widths_.size()) throw std::invalid_argument("TileGrid: swap_tile index out of range");
  if (slice.rows() != rows_ || slice.cols() != widths_[t]) {
    throw std::invalid_argument("TileGrid: swap_tile slice shape must match the tile");
  }
  // Build and scrub the candidate entirely off to the side: the slot keeps
  // serving the old tile until the new one is vouched end-to-end (panels
  // packed, bases captured, verify_weight_integrity green).
  auto candidate = std::make_shared<detect::ProtectedGemm>(cfg_.detect);
  candidate->set_weights_quantized(std::move(slice), qw);
  if (!candidate->verify_weight_integrity()) {
    if (met_.scrub_rejects != nullptr) met_.scrub_rejects->inc();
    emit_instant(obs::SpanKind::kScrubReject, t);
    return false;
  }
  const std::lock_guard<std::mutex> lock(swap_mu_);
  tiles_[t] = std::move(candidate);
  ++swap_epoch_;
  if (met_.swaps != nullptr) met_.swaps->inc();
  if (met_.swap_epoch != nullptr) met_.swap_epoch->set(static_cast<std::int64_t>(swap_epoch_));
  emit_instant(obs::SpanKind::kHotSwap, t);
  return true;
}

bool TileGrid::swap_tile(std::size_t t, tensor::MatI8 slice, tensor::QuantParams qw,
                         const fault::MemoryFaultModel& memory, std::uint64_t op) {
  if (t >= widths_.size()) throw std::invalid_argument("TileGrid: swap_tile index out of range");
  if (slice.rows() != rows_ || slice.cols() != widths_[t]) {
    throw std::invalid_argument("TileGrid: swap_tile slice shape must match the tile");
  }
  auto candidate = std::make_shared<detect::ProtectedGemm>(cfg_.detect);
  candidate->set_weights_quantized(std::move(slice), qw);
  // The load-time strike window: kWeights faults land on the candidate AFTER
  // its bases were captured (the bases model the known-good producer-side
  // checksums riding with the shard) and BEFORE the scrub vouches it. A net
  // fault therefore disagrees with the bases and the scrub rejects the load.
  const std::uint64_t flips =
      candidate->corrupt_weights(memory, fault::compose_op(op, t));
  if (flips > 0) {
    const auto c = static_cast<std::size_t>(fault::Component::kWeights);
    if (met_.memory_flips[c] != nullptr) met_.memory_flips[c]->inc(flips);
    emit_instant(obs::SpanKind::kInjectedFlips, t);
  }
  const bool ok = candidate->verify_weight_integrity();
  if (!ok) {
    if (met_.scrub_rejects != nullptr) met_.scrub_rejects->inc();
    emit_instant(obs::SpanKind::kScrubReject, t);
  }
  const std::lock_guard<std::mutex> lock(swap_mu_);
  memory_flips_[static_cast<std::size_t>(fault::Component::kWeights)] += flips;
  if (!ok) return false;
  tiles_[t] = std::move(candidate);
  ++swap_epoch_;
  if (met_.swaps != nullptr) met_.swaps->inc();
  if (met_.swap_epoch != nullptr) met_.swap_epoch->set(static_cast<std::int64_t>(swap_epoch_));
  emit_instant(obs::SpanKind::kHotSwap, t);
  return true;
}

std::uint64_t TileGrid::age_panels(const fault::MemoryFaultModel& memory, std::uint64_t epoch) {
  std::uint64_t total = 0;
  for (std::size_t t = 0; t < widths_.size(); ++t) {
    // Clone the current tile so in-flight readers of the old snapshot are
    // untouched, corrupt the clone's panels in place (it is exclusively
    // owned until installed), then publish. No scrub: at-rest corruption is
    // exactly what the scrub/screen must catch on the NEXT touch.
    auto aged = std::make_shared<detect::ProtectedGemm>(*tile(t));
    const std::uint64_t flipped = aged->corrupt_panels(memory, fault::compose_op(epoch, t));
    if (flipped > 0) emit_instant(obs::SpanKind::kInjectedFlips, t);
    total += flipped;
    const std::lock_guard<std::mutex> lock(swap_mu_);
    tiles_[t] = std::move(aged);
  }
  const auto c = static_cast<std::size_t>(fault::Component::kPackedPanels);
  if (total > 0 && met_.memory_flips[c] != nullptr) met_.memory_flips[c]->inc(total);
  const std::lock_guard<std::mutex> lock(swap_mu_);
  memory_flips_[c] += total;
  return total;
}

fault::ComponentFlips TileGrid::memory_flips() const {
  const std::lock_guard<std::mutex> lock(swap_mu_);
  return memory_flips_;
}

std::size_t TileGrid::swap_weights(const tensor::MatI8& w8, tensor::QuantParams qw) {
  if (w8.rows() != rows_ || w8.cols() != cols_) {
    throw std::invalid_argument("TileGrid: swap_weights shape must match the grid");
  }
  std::size_t installed = 0;
  for (std::size_t t = 0; t < widths_.size(); ++t) {
    tensor::MatI8 slice(rows_, widths_[t]);
    for (std::size_t r = 0; r < rows_; ++r) {
      std::memcpy(slice.row(r).data(), w8.row(r).data() + origins_[t], widths_[t]);
    }
    if (!swap_tile(t, std::move(slice), qw)) break;
    ++installed;
  }
  return installed;
}

std::uint64_t TileGrid::swap_epoch() const {
  const std::lock_guard<std::mutex> lock(swap_mu_);
  return swap_epoch_;
}

void TileGrid::run_into(const tensor::MatI8& a8, tensor::QuantParams qa,
                        const fault::FaultInjector& injector, const util::Rng& rng,
                        std::vector<detect::ProtectedGemmResult>& scratch, tensor::MatF& out,
                        BatchVerdict& verdict, const fault::MemoryFaultModel* memory,
                        std::uint64_t op) const {
  const fault::FaultInjector* const one = &injector;
  run_tiles(a8, qa, &one, 0, rng, scratch, out, verdict, memory, op);
}

void TileGrid::run_into(const tensor::MatI8& a8, tensor::QuantParams qa,
                        std::span<const fault::FaultInjector* const> tile_injectors,
                        const util::Rng& rng, std::vector<detect::ProtectedGemmResult>& scratch,
                        tensor::MatF& out, BatchVerdict& verdict,
                        const fault::MemoryFaultModel* memory, std::uint64_t op) const {
  if (tile_injectors.size() != tiles_.size()) {
    throw std::invalid_argument("TileGrid: need one injector per tile");
  }
  run_tiles(a8, qa, tile_injectors.data(), 1, rng, scratch, out, verdict, memory, op);
}

void TileGrid::run_tiles(const tensor::MatI8& a8, tensor::QuantParams qa,
                         const fault::FaultInjector* const* injectors, std::size_t stride,
                         const util::Rng& rng, std::vector<detect::ProtectedGemmResult>& scratch,
                         tensor::MatF& out, BatchVerdict& verdict,
                         const fault::MemoryFaultModel* memory, std::uint64_t op) const {
  const std::size_t m = a8.rows();
  scratch.resize(tiles_.size());
  if (out.rows() != m || out.cols() != cols_) out = tensor::MatF(m, cols_);
  verdict.reset();
  for (std::size_t t = 0; t < tiles_.size(); ++t) {
    // Snapshot the slot exactly once, right before running the tile: the
    // request computes against entirely-old or entirely-new weights for THIS
    // tile even if swap_tile lands mid-request (hot-swap contract above).
    const TileHandle tile = this->tile(t);
    // Tile span nests under the worker's request span via the thread-local
    // trace context (no-op outside a traced request).
    obs::ScopedSpan tile_span(obs::SpanKind::kTile, static_cast<std::int32_t>(t));
    // Forked per tile so the fault stream depends only on (seed, tile), never
    // on which worker ran the tile or in what order — the determinism the
    // 1/2/8-thread tests pin down.
    util::Rng tile_rng = rng.fork(t);
    // Each tile DMAs its own copy of A, so the activation exposure is an
    // independent stream per (op, tile) — compose_op keeps those streams
    // replayable regardless of worker count or tile order.
    tile->run_quantized_into(a8, qa, *injectors[t * stride], tile_rng, scratch[t], memory,
                             fault::compose_op(op, t));
    tile_span.set_verdict(static_cast<std::uint8_t>(scratch[t].report.verdict));
    verdict.merge_tile(scratch[t].report, origins_[t]);
    const std::size_t width = scratch[t].output.cols();
    for (std::size_t r = 0; r < m; ++r) {
      std::memcpy(out.row(r).data() + origins_[t], scratch[t].output.row(r).data(),
                  width * sizeof(float));
    }
  }
  verdict.finalize();
}

void TileGrid::run_raw_into(const tensor::MatI8& a8,
                            std::vector<tensor::MatI32>& scratch) const {
  scratch.resize(tiles_.size());
  for (std::size_t t = 0; t < tiles_.size(); ++t) {
    const TileHandle pg = tile(t);
    tensor::gemm_i8_prepacked(a8, pg->weights(), pg->weight_panels(), scratch[t]);
  }
}

bool TileGrid::verify_weight_integrity() const {
  for (std::size_t t = 0; t < widths_.size(); ++t) {
    if (!tile(t)->verify_weight_integrity()) return false;
  }
  return true;
}

}  // namespace realm::serve
