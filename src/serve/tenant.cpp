#include "serve/tenant.h"

#include <stdexcept>
#include <utility>

namespace realm::serve {

TenantBook::TenantBook(std::size_t window) : window_(window) {
  if (window == 0) throw std::invalid_argument("TenantBook: window must be >= 1");
}

TenantBook::State& TenantBook::state_locked(std::string_view tenant) {
  const auto it = book_.find(tenant);
  if (it != book_.end()) return it->second;
  return book_.emplace(std::string(tenant), State(window_)).first->second;
}

void TenantBook::record_submitted(std::string_view tenant) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++state_locked(tenant).submitted;
}

void TenantBook::record_rejected(std::string_view tenant) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++state_locked(tenant).rejected;
}

void TenantBook::record_expired(std::string_view tenant) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++state_locked(tenant).expired;
}

void TenantBook::record_failed(std::string_view tenant) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++state_locked(tenant).failed;
}

void TenantBook::record_completed(std::string_view tenant, double latency_ms,
                                  detect::Verdict verdict,
                                  const fault::ComponentFlips& component_flips,
                                  util::TimePoint now) {
  const std::lock_guard<std::mutex> lock(mu_);
  State& s = state_locked(tenant);
  ++s.completed;
  for (std::size_t i = 0; i < fault::kComponentCount; ++i) {
    s.component_flips[i] += component_flips[i];
  }
  if (verdict != detect::Verdict::kClean) ++s.requests_faulty;
  if (verdict == detect::Verdict::kPatched) ++s.requests_patched;
  if (verdict == detect::Verdict::kRecomputed) ++s.requests_recomputed;
  if (verdict == detect::Verdict::kDetected) ++s.requests_detected;
  s.latency_ms.add(latency_ms);
  s.latency_window.add(latency_ms);
  s.completed_at.push_back(now);
  while (s.completed_at.size() > window_) s.completed_at.pop_front();
}

void TenantBook::reset_windows() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& entry : book_) {
    State& s = entry.second;
    s.latency_window = util::SlidingWindow(window_);
    s.completed_at.clear();
  }
}

TenantStats TenantBook::stats(std::string_view tenant) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = book_.find(tenant);
  if (it == book_.end()) {
    throw std::invalid_argument("TenantBook: unknown tenant '" + std::string(tenant) + "'");
  }
  const State& s = it->second;
  TenantStats out;
  out.tenant = it->first;
  out.submitted = s.submitted;
  out.rejected = s.rejected;
  out.completed = s.completed;
  out.expired = s.expired;
  out.failed = s.failed;
  out.requests_faulty = s.requests_faulty;
  out.requests_patched = s.requests_patched;
  out.requests_recomputed = s.requests_recomputed;
  out.requests_detected = s.requests_detected;
  out.component_flips = s.component_flips;
  out.latency_ms = s.latency_ms;
  out.window_count = s.latency_window.count();
  if (out.window_count > 0) {
    out.window_p50_ms = s.latency_window.quantile(0.50);
    out.window_p99_ms = s.latency_window.quantile(0.99);
  }
  if (s.completed_at.size() >= 2) {
    const double span_s = util::seconds_between(s.completed_at.front(), s.completed_at.back());
    if (span_s > 0) {
      out.req_per_s = static_cast<double>(s.completed_at.size() - 1) / span_s;
    }
  }
  return out;
}

std::vector<std::string> TenantBook::tenants() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(book_.size());
  for (const auto& entry : book_) names.push_back(entry.first);
  return names;
}

}  // namespace realm::serve
