#include "serve/engine.h"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "util/threadpool.h"

namespace realm::serve {

namespace {

/// Latency is a measurement, not a scheduling input, so it always reads the
/// real steady clock — even when deadlines run against a ManualClock.
using LatencyClock = std::chrono::steady_clock;

double ms_since(LatencyClock::time_point t0) {
  return std::chrono::duration<double, std::milli>(LatencyClock::now() - t0).count();
}

/// Process-wide default time source when ServeConfig::clock is null.
const util::Clock& steady_clock_instance() {
  static const util::Clock clock;
  return clock;
}

bool terminal(TicketState s) noexcept {
  return s == TicketState::kDone || s == TicketState::kExpired || s == TicketState::kFailed;
}

}  // namespace

ServeEngine::ServeEngine(const TileGrid& grid, ServeConfig cfg)
    : grid_(grid),
      cfg_(cfg),
      clock_(cfg.clock ? cfg.clock : &steady_clock_instance()),
      sched_(cfg.queue_capacity),  // throws if the capacity is 0
      tenants_(cfg.stats_window),  // throws if the window is 0
      latency_window_(cfg.stats_window) {
  const std::size_t nworkers = cfg_.workers < 1 ? 1 : cfg_.workers;
  threads_.reserve(nworkers);
  try {
    for (std::size_t w = 0; w < nworkers; ++w) {
      threads_.emplace_back([this] { worker_loop(); });
    }
  } catch (...) {
    // A failed spawn must not unwind past joinable threads (std::terminate);
    // close the scheduler, join what started, surface the original error.
    sched_.close();
    for (auto& th : threads_) th.join();
    throw;
  }
}

ServeEngine::~ServeEngine() {
  // Graceful close: no new admissions, workers drain every queued ticket
  // (Scheduler::next keeps handing out work after close until empty).
  sched_.close();
  for (auto& th : threads_) th.join();
}

std::optional<Ticket> ServeEngine::enqueue(Request&& request, const SubmitOptions& options,
                                           bool blocking) {
  if (request.activation() == nullptr) {
    throw std::invalid_argument("ServeEngine: request with null activation");
  }
  const std::string tenant(options.tenant);
  Ticket ticket;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ticket.id = next_id_++;
    Slot& slot = slots_[ticket.id];
    slot.state = TicketState::kQueued;
    slot.request = std::move(request);
    slot.tenant = tenant;
    slot.deadline = options.deadline;
    // Default stream: the submission sequence (ticket id - 1), so a single
    // submitter gets the 0,1,2,... streams of the old batch engine; pin
    // options.stream for interleaving-independent replays.
    slot.stream = options.stream.value_or(ticket.id - 1);
    ++inflight_;
  }
  const bool admitted = blocking ? sched_.admit(ticket.id, options.priority)
                                 : sched_.try_admit(ticket.id, options.priority);
  if (!admitted) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      slots_.erase(ticket.id);
      --inflight_;
      ++counters_.rejected;
    }
    tenants_.record_rejected(tenant);
    done_cv_.notify_all();  // a parked drain() must re-check its predicate
    if (blocking) {
      // admit() only fails once the scheduler is closed — submitting into a
      // destructing engine is a caller bug worth throwing about.
      throw std::runtime_error("ServeEngine: submit after shutdown");
    }
    return std::nullopt;
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++counters_.submitted;
  }
  tenants_.record_submitted(tenant);
  return ticket;
}

Ticket ServeEngine::submit(Request request, SubmitOptions options) {
  return *enqueue(std::move(request), options, /*blocking=*/true);
}

std::optional<Ticket> ServeEngine::try_submit(Request request, SubmitOptions options) {
  return enqueue(std::move(request), options, /*blocking=*/false);
}

void ServeEngine::process(WorkerScratch& scratch, const Request& request, std::uint64_t stream,
                          Response& response) {
  static const fault::NullInjector kGolden;
  const fault::FaultInjector& inj = request.injector ? *request.injector : kGolden;
  const auto t0 = LatencyClock::now();
  // Deterministic fault stream: the stream tag (not worker id, not pop order)
  // selects it; the grid forks it again per tile.
  const util::Rng rng = util::Rng(cfg_.seed).fork(stream);
  const tensor::MatI8& a8 = *request.activation();
  // Shape-keyed scratch: mixed shapes in flight each recycle their own
  // buffer set instead of thrashing one set through reallocation.
  auto& tile_scratch = scratch.by_rows[a8.rows()];
  // The stream tag doubles as the memory-model op: activation strike streams
  // are keyed by (memory seed, stream, tile), replayable like the injector's.
  grid_.run_into(a8, request.qa, inj, rng, tile_scratch, response.output, response.verdict,
                 request.memory, stream);
  response.latency_ms = ms_since(t0);
}

void ServeEngine::worker_loop() {
  // Nesting marker: every parallel_for reached from this thread (the GEMM
  // macro-loop) runs inline here — one request is one worker's work.
  util::mark_thread_as_pool_worker();
  WorkerScratch scratch;
  std::uint64_t id = 0;
  while (sched_.next(id)) {
    Request request;
    std::string tenant;
    std::uint64_t stream = 0;
    bool expired = false;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      Slot& slot = slots_.at(id);
      tenant = slot.tenant;
      if (slot.deadline && clock_->now() > *slot.deadline) {
        // Retired at the deadline: the GEMM never runs, the output stays
        // empty, and the request's fault stream is simply never drawn (other
        // requests' streams are independent forks, so nothing shifts).
        slot.state = TicketState::kExpired;
        slot.response.expired = true;
        expired = true;
        ++counters_.expired;
        --inflight_;
      } else {
        slot.state = TicketState::kRunning;
        request = slot.request;  // pointers + shared_ptr: cheap, lock stays short
        stream = slot.stream;
      }
    }
    if (expired) {
      tenants_.record_expired(tenant);
      done_cv_.notify_all();
      continue;
    }

    Response response;
    std::exception_ptr error;
    try {
      process(scratch, request, stream, response);
    } catch (...) {
      error = std::current_exception();
    }
    const double latency_ms = response.latency_ms;
    const detect::Verdict verdict = response.verdict.verdict;
    const fault::ComponentFlips component_flips = response.verdict.component_flips;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      Slot& slot = slots_.at(id);
      if (error) {
        slot.state = TicketState::kFailed;
        slot.error = error;
        ++counters_.failed;
      } else {
        slot.state = TicketState::kDone;
        ++counters_.completed;
        counters_.tiles_screened += response.verdict.tiles;
        counters_.tiles_detected += response.verdict.tiles_detected;
        counters_.tiles_patched += response.verdict.tiles_patched;
        counters_.tiles_recomputed += response.verdict.tiles_recomputed;
        for (std::size_t i = 0; i < fault::kComponentCount; ++i) {
          counters_.component_flips[i] += component_flips[i];
        }
        counters_.latency_ms.add(latency_ms);
        latency_window_.add(latency_ms);
        slot.response = std::move(response);
      }
      --inflight_;
    }
    if (error) {
      tenants_.record_failed(tenant);
    } else {
      tenants_.record_completed(tenant, latency_ms, verdict, component_flips, clock_->now());
    }
    done_cv_.notify_all();
  }
}

TicketState ServeEngine::poll(Ticket ticket) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = slots_.find(ticket.id);
  if (it == slots_.end()) {
    throw std::invalid_argument("ServeEngine: unknown or already-consumed ticket");
  }
  return it->second.state;
}

Response ServeEngine::wait(Ticket ticket) {
  Slot slot;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (slots_.find(ticket.id) == slots_.end()) {
      throw std::invalid_argument("ServeEngine: unknown or already-consumed ticket");
    }
    // Re-look-up per check: concurrent submits may rehash the table.
    done_cv_.wait(lock, [&] { return terminal(slots_.at(ticket.id).state); });
    const auto it = slots_.find(ticket.id);
    slot = std::move(it->second);
    slots_.erase(it);
  }
  if (slot.error) std::rethrow_exception(slot.error);
  return std::move(slot.response);
}

void ServeEngine::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return inflight_ == 0; });
}

void ServeEngine::serve(std::span<const Request> requests, std::vector<Response>& responses) {
  // Validate up front so malformed batches fail before anything is admitted.
  for (const Request& rq : requests) {
    if (rq.activation() == nullptr) {
      throw std::invalid_argument("ServeEngine: request with null activation");
    }
  }
  responses.resize(requests.size());
  if (requests.empty()) return;

  std::vector<Ticket> tickets;
  tickets.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    SubmitOptions options;
    options.stream = i;  // the old per-batch fork(i) streams, bit-identical
    tickets.push_back(submit(requests[i], options));
  }
  // Retire the whole batch even if a request failed: every ticket must be
  // consumed before the first error is rethrown, or the engine would carry
  // orphaned slots across serve() calls.
  std::exception_ptr first_error;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    try {
      responses[i] = wait(tickets[i]);
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

std::vector<Response> ServeEngine::serve(std::span<const Request> requests) {
  std::vector<Response> responses;
  serve(requests, responses);
  return responses;
}

ServeStats ServeEngine::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  ServeStats out = counters_;
  out.window_count = latency_window_.count();
  if (out.window_count > 0) {
    out.window_p50_ms = latency_window_.quantile(0.50);
    out.window_p99_ms = latency_window_.quantile(0.99);
  }
  return out;
}

void ServeEngine::reset_stats() {
  const std::lock_guard<std::mutex> lock(mu_);
  counters_ = ServeStats{};
  latency_window_ = util::SlidingWindow(cfg_.stats_window);
}

TenantStats ServeEngine::tenant_stats(std::string_view tenant) const {
  return tenants_.stats(tenant);
}

std::vector<std::string> ServeEngine::tenants() const { return tenants_.tenants(); }

}  // namespace realm::serve
