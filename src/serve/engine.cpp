#include "serve/engine.h"

#include <stdexcept>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/threadpool.h"

namespace realm::serve {

namespace {

/// Process-wide default time source when ServeConfig::clock is null.
const util::Clock& steady_clock_instance() {
  static const util::Clock clock;
  return clock;
}

bool terminal(TicketState s) noexcept {
  return s == TicketState::kDone || s == TicketState::kExpired || s == TicketState::kFailed;
}

/// Point event on the tracer's control lane (submit-side paths: any thread).
void emit_instant_control(obs::Tracer* tracer, obs::SpanKind kind, std::uint64_t stream,
                          std::uint16_t tenant) {
  if constexpr (obs::kTraceCompiledIn) {
    if (tracer == nullptr) return;
    obs::Event e;
    e.span_id = obs::span_id(stream, -1, kind);
    e.t_start_ns = e.t_end_ns = tracer->now_ns();
    e.tenant = tenant;
    e.kind = kind;
    tracer->record_control(e);
  }
}

/// Point event on a worker lane (the lane's single producer only).
void emit_instant_lane(obs::Tracer* tracer, std::size_t lane, obs::SpanKind kind,
                       std::uint64_t stream, std::uint16_t tenant, std::uint64_t parent = 0) {
  if constexpr (obs::kTraceCompiledIn) {
    if (tracer == nullptr) return;
    obs::Event e;
    e.span_id = obs::span_id(stream, -1, kind);
    e.parent = parent;
    e.t_start_ns = e.t_end_ns = tracer->now_ns();
    e.tenant = tenant;
    e.kind = kind;
    tracer->record(lane, e);
  }
}

}  // namespace

ServeEngine::ServeEngine(const TileGrid& grid, ServeConfig cfg)
    : grid_(grid),
      cfg_(cfg),
      clock_(cfg.clock ? cfg.clock : &steady_clock_instance()),
      sched_(cfg.queue_capacity),  // throws if the capacity is 0
      tenants_(cfg.stats_window),  // throws if the window is 0
      latency_window_(cfg.stats_window) {
  if (cfg_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *cfg_.metrics;
    const auto state_counter = [&reg](const char* state) {
      return &reg.counter("realm_serve_requests_total", "Requests by lifecycle state.",
                          std::string("state=\"") + state + "\"");
    };
    met_.submitted = state_counter("submitted");
    met_.rejected = state_counter("rejected");
    met_.completed = state_counter("completed");
    met_.expired = state_counter("expired");
    met_.failed = state_counter("failed");
    const auto tile_counter = [&reg](const char* outcome) {
      return &reg.counter("realm_serve_tiles_total", "Screened tiles by outcome.",
                          std::string("outcome=\"") + outcome + "\"");
    };
    met_.tiles_screened = tile_counter("screened");
    met_.tiles_detected = tile_counter("detected");
    met_.tiles_patched = tile_counter("patched");
    met_.tiles_recomputed = tile_counter("recomputed");
    for (std::size_t i = 0; i < fault::kComponentCount; ++i) {
      met_.component_flips[i] =
          &reg.counter("realm_serve_component_flips_total",
                       "Request-time memory-fault bit flips by component.",
                       std::string("component=\"") +
                           fault::to_string(static_cast<fault::Component>(i)) + "\"");
    }
    met_.latency_us = &reg.histogram("realm_serve_request_latency_us",
                                     "Request latency (worker claim to response), microseconds.");
    met_.queue_wait_us = &reg.histogram("realm_serve_queue_wait_us",
                                        "Admission-to-claim queue wait, microseconds.");
    met_.queue_depth = &reg.gauge("realm_serve_queue_depth", "Tickets currently queued.");
  }
  const std::size_t nworkers = cfg_.workers < 1 ? 1 : cfg_.workers;
  if (cfg_.tracer != nullptr && cfg_.tracer->lanes() < nworkers) {
    throw std::invalid_argument("ServeEngine: tracer needs one worker lane per engine worker");
  }
  threads_.reserve(nworkers);
  try {
    for (std::size_t w = 0; w < nworkers; ++w) {
      // Tracer lane w+1: lane 0 is the control lane for non-worker threads.
      threads_.emplace_back([this, w] { worker_loop(w + 1); });
    }
  } catch (...) {
    // A failed spawn must not unwind past joinable threads (std::terminate);
    // close the scheduler, join what started, surface the original error.
    sched_.close();
    for (auto& th : threads_) th.join();
    throw;
  }
}

ServeEngine::~ServeEngine() {
  // Graceful close: no new admissions, workers drain every queued ticket
  // (Scheduler::next keeps handing out work after close until empty).
  sched_.close();
  for (auto& th : threads_) th.join();
}

std::optional<Ticket> ServeEngine::enqueue(Request&& request, const SubmitOptions& options,
                                           bool blocking) {
  if (request.activation() == nullptr) {
    throw std::invalid_argument("ServeEngine: request with null activation");
  }
  const std::string tenant(options.tenant);
  Ticket ticket;
  std::uint64_t stream = 0;
  std::uint16_t tenant_id = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ticket.id = next_id_++;
    Slot& slot = slots_[ticket.id];
    slot.state = TicketState::kQueued;
    slot.request = std::move(request);
    slot.tenant = tenant;
    slot.tenant_id = tenant_id = tenant_id_locked(tenant);
    slot.deadline = options.deadline;
    slot.submitted_at = clock_->now();
    // Default stream: the submission sequence (ticket id - 1), so a single
    // submitter gets the 0,1,2,... streams of the old batch engine; pin
    // options.stream for interleaving-independent replays.
    slot.stream = stream = options.stream.value_or(ticket.id - 1);
    ++inflight_;
  }
  const bool admitted = blocking ? sched_.admit(ticket.id, options.priority)
                                 : sched_.try_admit(ticket.id, options.priority);
  if (!admitted) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      slots_.erase(ticket.id);
      --inflight_;
      ++counters_.rejected;
    }
    if (met_.rejected != nullptr) met_.rejected->inc();
    emit_instant_control(cfg_.tracer, obs::SpanKind::kLoadShed, stream, tenant_id);
    tenants_.record_rejected(tenant);
    done_cv_.notify_all();  // a parked drain() must re-check its predicate
    if (blocking) {
      // admit() only fails once the scheduler is closed — submitting into a
      // destructing engine is a caller bug worth throwing about.
      throw std::runtime_error("ServeEngine: submit after shutdown");
    }
    return std::nullopt;
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++counters_.submitted;
  }
  if (met_.submitted != nullptr) met_.submitted->inc();
  if (met_.queue_depth != nullptr) met_.queue_depth->add(1);
  tenants_.record_submitted(tenant);
  return ticket;
}

std::uint16_t ServeEngine::tenant_id_locked(const std::string& tenant) {
  const auto it = tenant_ids_.find(tenant);
  if (it != tenant_ids_.end()) return it->second;
  // Ids wrap past 65535 tenants — they tag trace events only; accounting is
  // keyed by name.
  const auto id = static_cast<std::uint16_t>(tenant_ids_.size());
  tenant_ids_.emplace(tenant, id);
  return id;
}

Ticket ServeEngine::submit(Request request, SubmitOptions options) {
  return *enqueue(std::move(request), options, /*blocking=*/true);
}

std::optional<Ticket> ServeEngine::try_submit(Request request, SubmitOptions options) {
  return enqueue(std::move(request), options, /*blocking=*/false);
}

void ServeEngine::process(WorkerScratch& scratch, const Request& request, std::uint64_t stream,
                          Response& response) {
  static const fault::NullInjector kGolden;
  const fault::FaultInjector& inj = request.injector ? *request.injector : kGolden;
  // Latency is a measurement, not a scheduling input, so it always reads the
  // real steady clock (util::now_ns) — even when deadlines run against a
  // ManualClock.
  const std::int64_t t0_ns = util::now_ns();
  // Deterministic fault stream: the stream tag (not worker id, not pop order)
  // selects it; the grid forks it again per tile.
  const util::Rng rng = util::Rng(cfg_.seed).fork(stream);
  const tensor::MatI8& a8 = *request.activation();
  // Shape-keyed scratch: mixed shapes in flight each recycle their own
  // buffer set instead of thrashing one set through reallocation.
  auto& tile_scratch = scratch.by_rows[a8.rows()];
  // The stream tag doubles as the memory-model op: activation strike streams
  // are keyed by (memory seed, stream, tile), replayable like the injector's.
  grid_.run_into(a8, request.qa, inj, rng, tile_scratch, response.output, response.verdict,
                 request.memory, stream);
  response.latency_ms = util::ms_since_ns(t0_ns);
}

void ServeEngine::worker_loop(std::size_t lane) {
  // Nesting marker: every parallel_for reached from this thread (the GEMM
  // macro-loop) runs inline here — one request is one worker's work.
  util::mark_thread_as_pool_worker();
  WorkerScratch scratch;
  std::uint64_t id = 0;
  while (sched_.next(id)) {
    if (met_.queue_depth != nullptr) met_.queue_depth->add(-1);
    Request request;
    std::string tenant;
    std::uint16_t tenant_id = 0;
    std::uint64_t stream = 0;
    util::TimePoint submitted_at{};
    bool expired = false;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      Slot& slot = slots_.at(id);
      tenant = slot.tenant;
      tenant_id = slot.tenant_id;
      stream = slot.stream;
      submitted_at = slot.submitted_at;
      if (slot.deadline && clock_->now() > *slot.deadline) {
        // Retired at the deadline: the GEMM never runs, the output stays
        // empty, and the request's fault stream is simply never drawn (other
        // requests' streams are independent forks, so nothing shifts).
        slot.state = TicketState::kExpired;
        slot.response.expired = true;
        expired = true;
        ++counters_.expired;
        --inflight_;
      } else {
        slot.state = TicketState::kRunning;
        request = slot.request;  // pointers + shared_ptr: cheap, lock stays short
      }
    }
    if (expired) {
      if (met_.expired != nullptr) met_.expired->inc();
      emit_instant_lane(cfg_.tracer, lane, obs::SpanKind::kExpired, stream, tenant_id);
      tenants_.record_expired(tenant);
      done_cv_.notify_all();
      continue;
    }
    if (met_.queue_wait_us != nullptr) {
      const std::int64_t wait_ns = util::to_ns(clock_->now()) - util::to_ns(submitted_at);
      met_.queue_wait_us->observe(wait_ns > 0 ? static_cast<std::uint64_t>(wait_ns) / 1000 : 0);
    }

    Response response;
    std::exception_ptr error;
    {
      // Installs this thread's trace context: the grid's per-tile spans and
      // the detect stage spans nest under this request span; the kQueued
      // child (submit → claim) is recorded by the constructor.
      obs::ScopedRequestTrace req_trace(cfg_.tracer, lane, stream, tenant_id,
                                        util::to_ns(submitted_at));
      try {
        process(scratch, request, stream, response);
      } catch (...) {
        error = std::current_exception();
      }
      if (!error) {
        req_trace.set_verdict(static_cast<std::uint8_t>(response.verdict.verdict));
        bool any_flips = response.verdict.injection.flipped_bits > 0;
        for (const std::uint64_t f : response.verdict.component_flips) {
          any_flips = any_flips || f > 0;
        }
        if (any_flips) {
          emit_instant_lane(cfg_.tracer, lane, obs::SpanKind::kInjectedFlips, stream, tenant_id,
                            obs::span_id(stream, -1, obs::SpanKind::kRequest));
        }
      }
    }
    const double latency_ms = response.latency_ms;
    const detect::Verdict verdict = response.verdict.verdict;
    const fault::ComponentFlips component_flips = response.verdict.component_flips;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      Slot& slot = slots_.at(id);
      if (error) {
        slot.state = TicketState::kFailed;
        slot.error = error;
        ++counters_.failed;
        if (met_.failed != nullptr) met_.failed->inc();
      } else {
        slot.state = TicketState::kDone;
        ++counters_.completed;
        counters_.tiles_screened += response.verdict.tiles;
        counters_.tiles_detected += response.verdict.tiles_detected;
        counters_.tiles_patched += response.verdict.tiles_patched;
        counters_.tiles_recomputed += response.verdict.tiles_recomputed;
        for (std::size_t i = 0; i < fault::kComponentCount; ++i) {
          counters_.component_flips[i] += component_flips[i];
        }
        counters_.latency_ms.add(latency_ms);
        latency_window_.add(latency_ms);
        if (met_.completed != nullptr) {
          met_.completed->inc();
          met_.tiles_screened->inc(response.verdict.tiles);
          met_.tiles_detected->inc(response.verdict.tiles_detected);
          met_.tiles_patched->inc(response.verdict.tiles_patched);
          met_.tiles_recomputed->inc(response.verdict.tiles_recomputed);
          for (std::size_t i = 0; i < fault::kComponentCount; ++i) {
            if (component_flips[i] > 0) met_.component_flips[i]->inc(component_flips[i]);
          }
          met_.latency_us->observe(
              latency_ms > 0 ? static_cast<std::uint64_t>(latency_ms * 1000.0) : 0);
        }
        slot.response = std::move(response);
      }
      --inflight_;
    }
    if (error) {
      tenants_.record_failed(tenant);
    } else {
      tenants_.record_completed(tenant, latency_ms, verdict, component_flips, clock_->now());
    }
    done_cv_.notify_all();
  }
}

TicketState ServeEngine::poll(Ticket ticket) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = slots_.find(ticket.id);
  if (it == slots_.end()) {
    throw std::invalid_argument("ServeEngine: unknown or already-consumed ticket");
  }
  return it->second.state;
}

Response ServeEngine::wait(Ticket ticket) {
  Slot slot;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (slots_.find(ticket.id) == slots_.end()) {
      throw std::invalid_argument("ServeEngine: unknown or already-consumed ticket");
    }
    // Re-look-up per check: concurrent submits may rehash the table.
    done_cv_.wait(lock, [&] { return terminal(slots_.at(ticket.id).state); });
    const auto it = slots_.find(ticket.id);
    slot = std::move(it->second);
    slots_.erase(it);
  }
  if (slot.error) std::rethrow_exception(slot.error);
  return std::move(slot.response);
}

void ServeEngine::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return inflight_ == 0; });
}

void ServeEngine::serve(std::span<const Request> requests, std::vector<Response>& responses) {
  // Validate up front so malformed batches fail before anything is admitted.
  for (const Request& rq : requests) {
    if (rq.activation() == nullptr) {
      throw std::invalid_argument("ServeEngine: request with null activation");
    }
  }
  responses.resize(requests.size());
  if (requests.empty()) return;

  std::vector<Ticket> tickets;
  tickets.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    SubmitOptions options;
    options.stream = i;  // the old per-batch fork(i) streams, bit-identical
    tickets.push_back(submit(requests[i], options));
  }
  // Retire the whole batch even if a request failed: every ticket must be
  // consumed before the first error is rethrown, or the engine would carry
  // orphaned slots across serve() calls.
  std::exception_ptr first_error;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    try {
      responses[i] = wait(tickets[i]);
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

std::vector<Response> ServeEngine::serve(std::span<const Request> requests) {
  std::vector<Response> responses;
  serve(requests, responses);
  return responses;
}

ServeStats ServeEngine::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  ServeStats out = counters_;
  out.window_count = latency_window_.count();
  if (out.window_count > 0) {
    out.window_p50_ms = latency_window_.quantile(0.50);
    out.window_p99_ms = latency_window_.quantile(0.99);
  }
  return out;
}

void ServeEngine::reset_stats() {
  // Three internally-consistent steps, each atomic under its own lock —
  // see the header contract (a concurrent reader interleaving between steps
  // sees old-or-new per surface, never a torn snapshot of any one of them).
  {
    const std::lock_guard<std::mutex> lock(mu_);
    counters_ = ServeStats{};
    latency_window_ = util::SlidingWindow(cfg_.stats_window);
  }
  tenants_.reset_windows();
  if (cfg_.metrics != nullptr) cfg_.metrics->reset();
}

TenantStats ServeEngine::tenant_stats(std::string_view tenant) const {
  return tenants_.stats(tenant);
}

std::vector<std::string> ServeEngine::tenants() const { return tenants_.tenants(); }

}  // namespace realm::serve
