#include "serve/engine.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "util/mpmc_queue.h"

namespace realm::serve {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

}  // namespace

ServeEngine::ServeEngine(const TileGrid& grid, ServeConfig cfg)
    : grid_(grid),
      cfg_(cfg),
      pool_(cfg.workers < 1 ? 1 : cfg.workers),
      workers_(cfg.workers < 1 ? 1 : cfg.workers) {
  if (cfg_.queue_capacity == 0) {
    throw std::invalid_argument("ServeEngine: queue_capacity must be >= 1");
  }
}

void ServeEngine::process(Worker& w, const Request& rq, std::size_t index, Response& rsp) {
  static const fault::NullInjector kGolden;
  const fault::FaultInjector& inj = rq.injector ? *rq.injector : kGolden;
  const auto t0 = Clock::now();
  // Deterministic fault stream: request index (not worker id, not pop order)
  // selects the stream; the grid forks it again per tile.
  const util::Rng rng = util::Rng(cfg_.seed).fork(index);
  grid_.run_into(*rq.a8, rq.qa, inj, rng, w.scratch, rsp.output, rsp.verdict);
  rsp.latency_ms = ms_since(t0);
}

void ServeEngine::serve(std::span<const Request> requests, std::vector<Response>& responses) {
  // Validate before any thread spawns so malformed batches fail on the
  // calling thread, not inside the parallel region.
  for (const Request& rq : requests) {
    if (rq.a8 == nullptr) {
      throw std::invalid_argument("ServeEngine: request with null activation");
    }
  }
  responses.resize(requests.size());
  if (requests.empty()) return;

  const std::size_t nworkers = std::min(workers_.size(), requests.size());
  if (nworkers <= 1) {
    for (std::size_t i = 0; i < requests.size(); ++i) {
      process(workers_[0], requests[i], i, responses[i]);
    }
  } else {
    // The queue carries request indices; bounded capacity gives the producer
    // backpressure exactly as a network front door would experience it. The
    // producer is a plain thread so every pool worker (calling thread
    // included) stays a consumer.
    util::MpmcQueue<std::size_t> queue(cfg_.queue_capacity);
    std::thread producer([&] {
      for (std::size_t i = 0; i < requests.size(); ++i) {
        if (!queue.push(i)) break;  // closed early — cannot happen today
      }
      queue.close();
    });
    try {
      pool_.parallel_for(nworkers, 1, [&](std::size_t begin, std::size_t end) {
        for (std::size_t w = begin; w < end; ++w) {
          std::size_t i = 0;
          while (queue.pop(i)) process(workers_[w], requests[i], i, responses[i]);
        }
      });
    } catch (...) {
      // A worker threw (parallel_for rethrows here after all chunks quiesce).
      // The producer may still be parked in push(); closing the queue
      // unblocks it, and it MUST be joined before the queue leaves scope —
      // destroying a joinable thread is std::terminate.
      queue.close();
      producer.join();
      throw;
    }
    producer.join();
  }

  // Aggregate AFTER the parallel region, from the (deterministic) responses:
  // counters are a pure function of the batch, so no worker-side atomics.
  std::vector<double> latencies(responses.size());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    const Response& r = responses[i];
    ++stats_.requests;
    stats_.tiles_screened += r.verdict.tiles;
    stats_.tiles_detected += r.verdict.tiles_detected;
    stats_.tiles_corrected += r.verdict.tiles_corrected;
    stats_.latency_ms.add(r.latency_ms);
    latencies[i] = r.latency_ms;
  }
  stats_.p50_ms = util::quantile(latencies, 0.50);
  stats_.p99_ms = util::quantile(latencies, 0.99);
}

std::vector<Response> ServeEngine::serve(std::span<const Request> requests) {
  std::vector<Response> responses;
  serve(requests, responses);
  return responses;
}

}  // namespace realm::serve
