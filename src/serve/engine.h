// Batched request-serving engine over a TileGrid — the layer that turns one
// protected GEMM into a traffic-serving system.
//
// Dataflow per serve() call:
//
//   requests ──> bounded MpmcQueue ──> worker 0 ─┐
//   (producer     (backpressure:      worker 1 ─┼─> per-request TileGrid
//    thread)       capacity bound)      ...     │    run + BatchVerdict
//                                    worker W-1 ─┘        │
//                                                         v
//                                      responses[i] (request order preserved)
//
// Workers are the existing util::ThreadPool primitive: serve() runs one
// parallel_for over worker indices and each worker drains the queue until it
// closes. Because pool workers set the thread-local nesting flag, the GEMMs
// inside each request run INLINE on that worker (threadpool.h nesting rule) —
// with 2+ effective workers, request-level parallelism and kernel-level
// parallelism never fight over the same cores, and the per-tile screen stays
// bit-exact. The single-worker path (workers == 1, or a batch of one) instead
// runs requests on the calling thread, where kernel-level threading
// (REALM_THREADS / set_global_threads) applies normally: workers == 1 is the
// latency mode (one request at a time, GEMMs may fan out), workers >= 2 the
// throughput mode (GEMMs pinned to their worker). Outputs and verdicts are
// bit-identical either way; latency/throughput numbers are only comparable
// across worker counts with the global pool pinned to 1, which is what the
// bench's --serve mode does.
//
// Per-worker state (the tile-result scratch) is recycled across requests and
// across serve() calls, so the steady-state hot path allocates nothing: every
// accumulator, output, and checksum buffer is reused via run_quantized_into.
//
// Determinism: request i draws its fault stream from seed fork(i) and tile t
// within it from fork(t) — verdicts and outputs are a pure function of
// (seed, requests), independent of worker count or scheduling. Latency stats
// are the only nondeterministic outputs.
//
// ServeEngine is externally synchronized: one serve() at a time (it owns its
// pool and per-worker buffers). Concurrency lives INSIDE serve, not across
// calls — the multi-session story is one engine per model replica.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "serve/tile_grid.h"
#include "util/stats.h"
#include "util/threadpool.h"

namespace realm::serve {

struct ServeConfig {
  /// Request-level workers (including the calling thread). Clamped to >= 1.
  std::size_t workers = 1;
  /// Bound of the request queue; producers park when it fills.
  std::size_t queue_capacity = 64;
  /// Base seed for per-request fault streams (forked per request, per tile).
  std::uint64_t seed = 0x5e44e;
};

/// One inference request. The engine does not copy the activation — the
/// pointed-to matrix and injector must outlive the serve() call.
struct Request {
  const tensor::MatI8* a8 = nullptr;
  tensor::QuantParams qa{};
  /// Fault model for this request (nullptr = golden/NullInjector).
  const fault::FaultInjector* injector = nullptr;
};

struct Response {
  tensor::MatF output;    ///< assembled [m x n] dequantized result
  BatchVerdict verdict;   ///< aggregated across tiles
  double latency_ms = 0;  ///< queue-pop to response-complete, this worker
};

/// Cumulative counters plus the latest batch's latency distribution.
struct ServeStats {
  std::uint64_t requests = 0;
  std::uint64_t tiles_screened = 0;
  std::uint64_t tiles_detected = 0;   ///< flagged, not certified corrected
  std::uint64_t tiles_corrected = 0;
  util::RunningStat latency_ms;  ///< cumulative across serve() calls
  double p50_ms = 0;             ///< most recent serve() batch
  double p99_ms = 0;             ///< most recent serve() batch
};

class ServeEngine {
 public:
  /// The grid must outlive the engine.
  explicit ServeEngine(const TileGrid& grid, ServeConfig cfg = {});

  /// Serve a batch: responses[i] always answers requests[i] regardless of
  /// which worker ran it. `responses` is resized and its buffers recycled —
  /// reusing one vector across calls makes the hot path allocation-free.
  void serve(std::span<const Request> requests, std::vector<Response>& responses);

  /// Allocating convenience overload.
  [[nodiscard]] std::vector<Response> serve(std::span<const Request> requests);

  [[nodiscard]] const ServeStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

  [[nodiscard]] const TileGrid& grid() const noexcept { return grid_; }
  [[nodiscard]] std::size_t workers() const noexcept { return workers_.size(); }

 private:
  struct Worker {
    std::vector<detect::ProtectedGemmResult> scratch;  ///< per-tile, recycled
  };

  void process(Worker& w, const Request& rq, std::size_t index, Response& rsp);

  const TileGrid& grid_;
  ServeConfig cfg_;
  util::ThreadPool pool_;
  std::vector<Worker> workers_;
  ServeStats stats_;
};

}  // namespace realm::serve
