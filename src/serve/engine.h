// Async continuous-batching serving engine over a TileGrid — the layer that
// turns one protected GEMM into a traffic-serving system.
//
// Lifecycle of a request:
//
//   submit(Request, {tenant, priority, deadline}) ──> Ticket
//        │  admission control: blocking submit() parks under backpressure
//        │  (bounded budget shared across lanes); try_submit() sheds load
//        v
//   Scheduler lanes  [interactive] > [normal] > [batch]   (strict priority)
//        │
//        v            persistent worker threads (ServeConfig::workers)
//   worker_loop: pop most-urgent ticket ──> deadline check ──> TileGrid run
//        │             (expired: retired as kExpired,     (per-request RNG
//        │              GEMM never runs)                   stream, per-tile
//        v                                                 fork)
//   poll(Ticket) -> TicketState;  wait(Ticket) -> Response (consumes ticket)
//
// Workers are plain threads marked with util::mark_thread_as_pool_worker, so
// each request's GEMMs run INLINE on the worker that claimed it (threadpool.h
// nesting rule): request-level parallelism and kernel-level parallelism never
// fight over the same cores, and the per-tile screen stays bit-exact. The
// corollary is that kernel-level threading (REALM_THREADS) does not compose
// with engine workers — a request is one worker's work, end to end.
//
// Mixed shapes in flight: per-worker scratch is keyed by the request's row
// count, so interleaving m=8 and m=64 traffic recycles one buffer set per
// shape instead of reallocating per request; steady-state traffic over a
// fixed shape mix allocates nothing.
//
// Determinism: a request's fault stream is seed→fork(stream)→fork(tile),
// where `stream` is SubmitOptions::stream if pinned, else the ticket's
// submission sequence. Verdicts and outputs are therefore a pure function of
// (seed, request, stream) — independent of worker count, queue depth,
// priorities, or completion order. The synchronous serve() shim pins
// stream = batch index i, making it bit-identical to the pre-async engine
// and to any async run that pins the same streams. Latency stats are the
// only nondeterministic outputs.
//
// Weight hot-swap: the engine reads tiles through TileGrid's per-tile
// snapshots, so the owner may call grid.swap_tile()/swap_weights() while
// traffic is in flight — requests complete against consistent per-tile
// weights (old or new, never half-swapped; see tile_grid.h for the state
// machine). drain() is the barrier for callers that want a strict epoch:
// drain, swap every tile, resume submitting.
//
// Thread safety: submit/try_submit/poll/wait/drain/stats/tenant_stats may be
// called concurrently from any number of threads. wait() consumes the
// ticket; polling a consumed or never-issued ticket throws.
#pragma once

#include <array>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/scheduler.h"
#include "serve/tenant.h"
#include "serve/ticket.h"
#include "serve/tile_grid.h"
#include "util/clock.h"
#include "util/stats.h"

namespace realm::obs {  // obs/trace.h, obs/metrics.h
class Tracer;
class MetricsRegistry;
class Counter;
class Gauge;
class LogHistogram;
}  // namespace realm::obs

namespace realm::serve {

struct ServeConfig {
  /// Dedicated worker threads draining the scheduler. Clamped to >= 1.
  std::size_t workers = 1;
  /// Admission budget: total queued tickets across all priority lanes.
  /// submit() parks when it fills; try_submit() rejects.
  std::size_t queue_capacity = 64;
  /// Base seed for per-request fault streams (forked per stream, per tile).
  std::uint64_t seed = 0x5e44e;
  /// Sliding-window span (samples) for the engine and per-tenant latency
  /// quantiles and the per-tenant req/s rate.
  std::size_t stats_window = 512;
  /// Deadline / rate-window time source; nullptr = real steady clock. Tests
  /// inject a util::ManualClock here to make expiry deterministic. Must
  /// outlive the engine.
  const util::Clock* clock = nullptr;
  /// Span tracer; nullptr = untraced. Worker w records on tracer lane w+1, so
  /// the tracer needs at least `workers` worker lanes. For coherent queue
  /// spans, configure the tracer with the same clock as the engine. Must
  /// outlive the engine.
  obs::Tracer* tracer = nullptr;
  /// Metrics registry for the realm_serve_* family; nullptr = unmetered.
  /// Must outlive the engine.
  obs::MetricsRegistry* metrics = nullptr;
};

/// One inference request. The activation is either BORROWED (`a8` — the
/// pointed-to matrix must stay alive until the ticket is waited on or the
/// engine is destroyed; under async serving that window is unbounded, so
/// borrow only what you own for the engine's lifetime) or OWNED (`owned` —
/// the request keeps the activation alive itself; the safe default for
/// fire-and-forget submission). The injector is always borrowed under the
/// same ticket-scoped contract (nullptr = golden/NullInjector).
struct Request {
  const tensor::MatI8* a8 = nullptr;  ///< borrowed activation (see above)
  tensor::QuantParams qa{};
  /// Fault model for this request (nullptr = golden/NullInjector).
  const fault::FaultInjector* injector = nullptr;
  /// Memory-hierarchy fault model for this request (nullptr = none): its
  /// kActivations stream strikes the request's activation image per tile,
  /// op-keyed by the request's fault stream — deterministic at any worker
  /// count. Borrowed under the same ticket-scoped lifetime contract as the
  /// injector.
  const fault::MemoryFaultModel* memory = nullptr;
  /// Owned activation; when set it wins over `a8`.
  std::shared_ptr<const tensor::MatI8> owned;

  /// Borrowing constructor-helper: caller guarantees `a8` outlives the ticket.
  [[nodiscard]] static Request borrow(const tensor::MatI8& a8, tensor::QuantParams qa,
                                      const fault::FaultInjector* injector = nullptr,
                                      const fault::MemoryFaultModel* memory = nullptr) {
    Request rq;
    rq.a8 = &a8;
    rq.qa = qa;
    rq.injector = injector;
    rq.memory = memory;
    return rq;
  }

  /// Owning helper: the request carries the activation; nothing to outlive.
  [[nodiscard]] static Request own(tensor::MatI8 a8, tensor::QuantParams qa,
                                   const fault::FaultInjector* injector = nullptr,
                                   const fault::MemoryFaultModel* memory = nullptr) {
    Request rq;
    rq.owned = std::make_shared<const tensor::MatI8>(std::move(a8));
    rq.qa = qa;
    rq.injector = injector;
    rq.memory = memory;
    return rq;
  }

  /// The activation actually served: owned if set, else the borrowed pointer
  /// (nullptr means a malformed request — submit() rejects it).
  [[nodiscard]] const tensor::MatI8* activation() const noexcept {
    return owned ? owned.get() : a8;
  }
};

struct Response {
  tensor::MatF output;    ///< assembled [m x n] dequantized result
  BatchVerdict verdict;   ///< aggregated across tiles
  double latency_ms = 0;  ///< worker-claim to response-complete
  bool expired = false;   ///< deadline passed while queued; output empty
};

/// Engine-wide accounting snapshot (see TenantStats for the per-tenant cut).
/// The latency quantiles are sliding-window over the most recent
/// `ServeConfig::stats_window` completions — NOT per-batch (there are no
/// batches under continuous batching) and NOT whole-history (which goes
/// stale); the `window_` prefix is deliberate so readers of the old
/// per-batch `p50_ms`/`p99_ms` fields cannot silently misread them.
struct ServeStats {
  std::uint64_t submitted = 0;  ///< admitted tickets
  std::uint64_t rejected = 0;   ///< try_submit refused at admission
  std::uint64_t completed = 0;  ///< computed to a verdict
  std::uint64_t expired = 0;    ///< retired at the deadline, never computed
  std::uint64_t failed = 0;     ///< worker threw (wait() rethrows)
  std::uint64_t tiles_screened = 0;
  std::uint64_t tiles_detected = 0;    ///< flagged, not certified corrected
  std::uint64_t tiles_patched = 0;     ///< healed by the in-place algebraic patch
  std::uint64_t tiles_recomputed = 0;  ///< healed by the full recompute replay
  /// Tiles healed by either correction mode.
  [[nodiscard]] std::uint64_t tiles_corrected() const noexcept {
    return tiles_patched + tiles_recomputed;
  }
  /// Memory-hierarchy fault exposure summed over completed requests (the
  /// request-time components; see BatchVerdict::component_flips).
  fault::ComponentFlips component_flips{};
  util::RunningStat latency_ms;  ///< cumulative over completed requests
  double window_p50_ms = 0;      ///< sliding window, last stats_window completions
  double window_p99_ms = 0;      ///< sliding window, last stats_window completions
  std::size_t window_count = 0;  ///< samples currently in the window
};

class ServeEngine {
 public:
  /// Spawns the worker threads. The grid (and cfg.clock, if set) must
  /// outlive the engine.
  explicit ServeEngine(const TileGrid& grid, ServeConfig cfg = {});

  /// Closes admission, drains every admitted ticket, joins the workers.
  /// Unclaimed responses are discarded.
  ~ServeEngine();

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  /// Admit one request. Blocks while the admission budget is exhausted
  /// (backpressure). Throws std::invalid_argument on a null activation.
  Ticket submit(Request request, SubmitOptions options = {});

  /// Non-blocking admission: nullopt (and a `rejected` tally for the tenant)
  /// when the budget is exhausted — the load-shedding front door.
  std::optional<Ticket> try_submit(Request request, SubmitOptions options = {});

  /// Lifecycle state of a live ticket. Throws std::invalid_argument for a
  /// ticket that was never issued or was already consumed by wait().
  [[nodiscard]] TicketState poll(Ticket ticket) const;

  /// Block until the ticket is terminal, then consume it. Returns the
  /// response (check Response::expired for deadline losses); rethrows the
  /// worker's exception for kFailed tickets. A ticket can be waited on
  /// exactly once.
  Response wait(Ticket ticket);

  /// Block until every admitted ticket has been retired (done, expired, or
  /// failed). New submissions during a drain extend it.
  void drain();

  /// Synchronous compatibility shim on submit+wait: responses[i] answers
  /// requests[i], with fault stream pinned to the batch index i — verdicts
  /// and outputs are bit-identical to the pre-async batch engine and to an
  /// async caller pinning the same streams, at any worker count. The first
  /// worker exception is rethrown after the whole batch retires.
  void serve(std::span<const Request> requests, std::vector<Response>& responses);

  /// Allocating convenience overload.
  [[nodiscard]] std::vector<Response> serve(std::span<const Request> requests);

  [[nodiscard]] ServeStats stats() const;
  /// Reset the rolling accounting surface in three internally-consistent
  /// steps: engine-wide counters + latency window (under the engine lock),
  /// every tenant's sliding windows (under the book's lock; cumulative
  /// per-tenant counters are append-only history and stay), and the metrics
  /// registry if configured (serialized against expose(), so a concurrent
  /// scrape sees the registry fully pre- or fully post-reset — never a torn
  /// mixture; see obs/metrics.h). Each step is atomic under its own lock;
  /// a reader interleaving between steps sees old-or-new per surface, which
  /// is the documented "atomically-enough" contract.
  void reset_stats();

  /// Snapshot one tenant's accounting; throws for a never-seen tenant.
  [[nodiscard]] TenantStats tenant_stats(std::string_view tenant) const;
  [[nodiscard]] std::vector<std::string> tenants() const;

  [[nodiscard]] const TileGrid& grid() const noexcept { return grid_; }
  [[nodiscard]] std::size_t workers() const noexcept { return threads_.size(); }
  [[nodiscard]] std::size_t queue_depth() const { return sched_.depth(); }

 private:
  /// Ticket-table entry; guarded by mu_.
  struct Slot {
    TicketState state = TicketState::kQueued;
    Request request;
    std::string tenant;
    std::uint16_t tenant_id = 0;  ///< trace-event tenant tag (first-seen order)
    std::optional<util::TimePoint> deadline;
    util::TimePoint submitted_at{};  ///< engine-clock admit time (queue wait)
    std::uint64_t stream = 0;
    Response response;
    std::exception_ptr error;
  };

  /// Per-worker recycled buffers, keyed by activation row count so mixed
  /// shapes in flight each reuse their own set (lives on the worker's stack).
  struct WorkerScratch {
    std::map<std::size_t, std::vector<detect::ProtectedGemmResult>> by_rows;
  };

  std::optional<Ticket> enqueue(Request&& request, const SubmitOptions& options, bool blocking);
  /// `lane` is the worker's tracer lane (worker index + 1; lane 0 is the
  /// tracer's control lane).
  void worker_loop(std::size_t lane);
  void process(WorkerScratch& scratch, const Request& request, std::uint64_t stream,
               Response& response);
  /// Stable small id for a tenant name (assigned in first-submission order);
  /// caller must hold mu_.
  std::uint16_t tenant_id_locked(const std::string& tenant);

  /// Metric handles resolved once at construction from cfg_.metrics (all
  /// nullptr when unmetered). Increments are relaxed-atomic — no lock needed
  /// beyond what the surrounding code already holds.
  struct Metrics {
    obs::Counter* submitted = nullptr;
    obs::Counter* rejected = nullptr;
    obs::Counter* completed = nullptr;
    obs::Counter* expired = nullptr;
    obs::Counter* failed = nullptr;
    obs::Counter* tiles_screened = nullptr;
    obs::Counter* tiles_detected = nullptr;
    obs::Counter* tiles_patched = nullptr;
    obs::Counter* tiles_recomputed = nullptr;
    std::array<obs::Counter*, fault::kComponentCount> component_flips{};
    obs::LogHistogram* latency_us = nullptr;
    obs::LogHistogram* queue_wait_us = nullptr;
    obs::Gauge* queue_depth = nullptr;
  };

  const TileGrid& grid_;
  const ServeConfig cfg_;
  const util::Clock* clock_;  ///< cfg_.clock or the process-wide steady clock
  Scheduler sched_;
  TenantBook tenants_;

  mutable std::mutex mu_;
  std::condition_variable done_cv_;  ///< state transitions; wait()/drain() park here
  std::unordered_map<std::uint64_t, Slot> slots_;
  std::unordered_map<std::string, std::uint16_t> tenant_ids_;  ///< guarded by mu_
  std::uint64_t next_id_ = 1;  ///< ticket ids; id-1 is the default stream tag
  std::size_t inflight_ = 0;   ///< queued + running (drain()'s predicate)
  Metrics met_{};              ///< resolved handles; pointees are atomic

  // Engine-wide accounting; guarded by mu_.
  ServeStats counters_;               ///< window_* fields unused here (see stats())
  util::SlidingWindow latency_window_;

  std::vector<std::thread> threads_;
};

}  // namespace realm::serve
