// Per-tenant accounting for the async serving engine: every submitted ticket
// is attributed to a tenant (SubmitOptions.tenant, default "default") and the
// TenantBook keeps the counters a multi-tenant operator actually pages on —
// admission outcomes, deadline losses, latency quantiles over a sliding
// window, sustained req/s, and fault/correction rates from the checksum
// screen's verdicts.
//
// Thread safety: TenantBook is internally synchronized (one mutex; every
// record_* is a counter bump plus at most a ring-buffer write, so it is noise
// next to the multi-millisecond GEMM each record represents). stats() returns
// a snapshot by value — the live State never escapes the lock.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "detect/detect.h"
#include "fault/fault.h"
#include "util/clock.h"
#include "util/stats.h"

namespace realm::serve {

/// Value snapshot of one tenant's accounting, taken under the book's lock.
struct TenantStats {
  std::string tenant;

  // Admission / lifecycle counters.
  std::uint64_t submitted = 0;  ///< admitted into the scheduler
  std::uint64_t rejected = 0;   ///< try_submit refused (budget exhausted)
  std::uint64_t completed = 0;  ///< computed to a verdict
  std::uint64_t expired = 0;    ///< deadline passed while queued
  std::uint64_t failed = 0;     ///< worker threw

  // Verdict counters over completed requests. The worst-wins merge means a
  // "patched" request healed every faulty tile via the cheap in-place patch,
  // while "recomputed" means at least one tile needed the full replay.
  std::uint64_t requests_faulty = 0;      ///< verdict != kClean
  std::uint64_t requests_patched = 0;     ///< verdict == kPatched
  std::uint64_t requests_recomputed = 0;  ///< verdict == kRecomputed
  std::uint64_t requests_detected = 0;    ///< verdict == kDetected (uncorrected)
  /// Requests healed by either correction mode.
  [[nodiscard]] std::uint64_t requests_corrected() const noexcept {
    return requests_patched + requests_recomputed;
  }

  /// Memory-hierarchy fault exposure over completed requests, indexed by
  /// fault::Component: kAccumulator/kActivations bits landed on this
  /// tenant's requests (load/rest-time weight and panel faults are grid
  /// state, not per-tenant — see TileGrid::memory_flips()).
  fault::ComponentFlips component_flips{};

  util::RunningStat latency_ms;  ///< cumulative over completed requests

  // Sliding-window views (window span = ServeConfig::stats_window).
  double window_p50_ms = 0;
  double window_p99_ms = 0;
  std::size_t window_count = 0;
  /// Completions per second over the completion-time window; 0 until two
  /// completions land in the window (and whenever the clock stands still).
  double req_per_s = 0;

  [[nodiscard]] double fault_rate() const noexcept {
    return completed ? static_cast<double>(requests_faulty) / static_cast<double>(completed) : 0.0;
  }
  [[nodiscard]] double correction_rate() const noexcept {
    return requests_faulty
               ? static_cast<double>(requests_corrected()) / static_cast<double>(requests_faulty)
               : 0.0;
  }
  /// Fraction of corrected requests healed by the cheap in-place patch (the
  /// latency-cliff avoidance rate the serving gate watches).
  [[nodiscard]] double patch_rate() const noexcept {
    return requests_corrected() ? static_cast<double>(requests_patched) /
                                      static_cast<double>(requests_corrected())
                                : 0.0;
  }
};

class TenantBook {
 public:
  /// @param window sliding-window span (samples) for latency quantiles and
  ///               the req/s rate; must be >= 1.
  explicit TenantBook(std::size_t window);

  void record_submitted(std::string_view tenant);
  void record_rejected(std::string_view tenant);
  void record_expired(std::string_view tenant);
  void record_failed(std::string_view tenant);
  /// One computed request: latency sample, screen verdict, per-component
  /// memory-fault tallies (BatchVerdict::component_flips), completion time
  /// (feeds the req/s window; pass the engine clock's now()).
  void record_completed(std::string_view tenant, double latency_ms, detect::Verdict verdict,
                        const fault::ComponentFlips& component_flips, util::TimePoint now);

  /// Reset every tenant's sliding-window state — the latency-quantile window
  /// and the req/s completion-time window — in one critical section; the
  /// cumulative counters and RunningStat are append-only history and stay.
  /// Part of ServeEngine::reset_stats()'s contract: a concurrent stats()
  /// observes the book either fully pre-reset or fully post-reset.
  void reset_windows();

  /// Snapshot one tenant. Throws std::invalid_argument for a tenant that has
  /// never been recorded — a typo'd dashboard key should fail loudly.
  [[nodiscard]] TenantStats stats(std::string_view tenant) const;

  /// Every tenant ever recorded, sorted.
  [[nodiscard]] std::vector<std::string> tenants() const;

 private:
  struct State {
    explicit State(std::size_t window) : latency_window(window) {}
    std::uint64_t submitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t completed = 0;
    std::uint64_t expired = 0;
    std::uint64_t failed = 0;
    std::uint64_t requests_faulty = 0;
    std::uint64_t requests_patched = 0;
    std::uint64_t requests_recomputed = 0;
    std::uint64_t requests_detected = 0;
    fault::ComponentFlips component_flips{};
    util::RunningStat latency_ms;
    util::SlidingWindow latency_window;
    std::deque<util::TimePoint> completed_at;  ///< bounded by the window span
  };

  /// Find-or-create; callers must hold mu_.
  State& state_locked(std::string_view tenant);

  const std::size_t window_;
  mutable std::mutex mu_;
  std::map<std::string, State, std::less<>> book_;
};

}  // namespace realm::serve
