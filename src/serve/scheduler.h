// Admission control + priority scheduling for the async serving engine: a
// thin, typed façade over util::PriorityMpmcQueue that maps Priority lanes
// and carries ticket ids (never payloads — request state lives in the
// engine's ticket table, so queue items stay trivially movable).
//
// Admission policy:
//  * admit() is the backpressure path — the submitting thread parks while the
//    shared budget (queue_capacity across ALL lanes) is exhausted, exactly
//    like a blocked accept() on a saturated front door.
//  * try_admit() is the load-shedding path — full or closed means "rejected",
//    and the caller surfaces that to the client instead of queueing unbounded
//    work it can never serve by the deadline anyway.
//
// Dispatch: next() hands workers the most urgent queued ticket (strict
// priority, FIFO within a lane) and keeps draining after close() until every
// lane is empty — close is graceful, admitted work is never dropped.
#pragma once

#include <cstddef>
#include <cstdint>

#include "serve/ticket.h"
#include "util/mpmc_queue.h"

namespace realm::serve {

class Scheduler {
 public:
  explicit Scheduler(std::size_t capacity) : queue_(capacity, kPriorityLanes) {}

  /// Blocking admission: park under backpressure, false once closed.
  bool admit(std::uint64_t ticket_id, Priority priority) {
    return queue_.push(ticket_id, lane_of(priority));
  }

  /// Non-blocking admission: false when the budget is exhausted or the
  /// scheduler is closed — the caller counts this as a rejection.
  bool try_admit(std::uint64_t ticket_id, Priority priority) {
    return queue_.try_push(ticket_id, lane_of(priority));
  }

  /// Worker side: blocks for the next most-urgent ticket; false once closed
  /// and fully drained.
  bool next(std::uint64_t& ticket_id) { return queue_.pop(ticket_id); }

  /// Stop admitting; workers drain what remains. Idempotent.
  void close() { queue_.close(); }

  [[nodiscard]] std::size_t depth() const { return queue_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return queue_.capacity(); }

 private:
  util::PriorityMpmcQueue<std::uint64_t> queue_;
};

}  // namespace realm::serve
