// Submission-side vocabulary of the async serving API: priorities, deadlines,
// tickets, and the ticket lifecycle states. Kept header-only and dependency-
// light so callers can talk about tickets without pulling in the engine.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

#include "util/clock.h"

namespace realm::serve {

/// Scheduling lane of a request. Lower is more urgent; the scheduler drains
/// lanes in strict priority order (kInteractive starves kBatch by design).
enum class Priority : std::uint8_t {
  kInteractive = 0,  ///< latency-sensitive foreground traffic
  kNormal = 1,       ///< default lane
  kBatch = 2,        ///< throughput traffic; yields to everything above
};

/// Number of scheduler lanes (one per Priority value).
inline constexpr std::size_t kPriorityLanes = 3;

[[nodiscard]] constexpr std::size_t lane_of(Priority p) noexcept {
  return static_cast<std::size_t>(p);
}

/// Tenant requests are accounted under when SubmitOptions names none.
inline constexpr std::string_view kDefaultTenant = "default";

/// Lifecycle of a submitted request. Terminal states are kDone, kExpired and
/// kFailed; poll() reports these, wait() additionally rethrows kFailed's
/// stored exception.
enum class TicketState : std::uint8_t {
  kQueued = 0,   ///< admitted, parked in a scheduler lane
  kRunning = 1,  ///< claimed by a worker, GEMM in flight
  kDone = 2,     ///< response ready (verdict may still be kDetected!)
  kExpired = 3,  ///< deadline passed before a worker claimed it; never computed
  kFailed = 4,   ///< worker threw; wait() rethrows the exception
};

/// Handle returned by submit(). Value type, trivially copyable; id 0 is the
/// invalid ticket (real ids start at 1).
struct Ticket {
  std::uint64_t id = 0;

  [[nodiscard]] constexpr bool valid() const noexcept { return id != 0; }
  friend constexpr bool operator==(Ticket a, Ticket b) noexcept { return a.id == b.id; }
};

/// Per-submission scheduling knobs. Everything defaults to "plain request":
/// default tenant, normal priority, no deadline, engine-chosen fault stream.
struct SubmitOptions {
  /// Accounting key; copied at submit, so the view need not outlive the call.
  std::string_view tenant = kDefaultTenant;
  Priority priority = Priority::kNormal;
  /// Expiry instant against the engine's clock: a request still queued when
  /// now() > deadline is retired as kExpired without touching the GEMM. A
  /// request already claimed by a worker runs to completion. nullopt = never.
  std::optional<util::TimePoint> deadline;
  /// Fault-stream tag: the request's RNG is seed-fork(stream), fork(tile).
  /// Defaults to the engine's submission sequence number (0, 1, 2, ...) —
  /// deterministic for a single-threaded submitter. Pin it explicitly to make
  /// outputs independent of submission interleaving across threads, or to
  /// replay a specific request.
  std::optional<std::uint64_t> stream;
};

}  // namespace realm::serve
