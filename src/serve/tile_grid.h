// Column-tiled protected weight grid — the multi-tile layer of the serving
// engine (paper Fig. 3/7 scaled out: one stationary accelerator tile per
// weight shard, each screening its own outputs with resident checksum bases).
//
// TileGrid shards a stationary weight matrix W[k x n] into column tiles of at
// most `tile_cols` columns. Each tile owns a detect::ProtectedGemm, so the
// expensive per-weight state — quantized slice, SIMD panels (kernels::PackedB),
// and both checksum bases (W·e and the Fig. 7 eᵀW row) — is computed once at
// construction and stays resident for every request the grid ever serves.
//
// A GEMM is column-separable: columns [origin, origin+width) of A·W are
// exactly A·W[:, origin:origin+width]. Sharding therefore changes nothing
// about the math — a multi-tile run's assembled accumulator and output are
// bit-identical to an unsharded ProtectedGemm on the same operands, and each
// tile's checksum screen is the same exact integer identity it was for the
// whole matrix. What sharding buys is serving granularity: faults localize to
// a tile before the column intersection even runs, verdicts aggregate per
// request (BatchVerdict), and a detected tile recomputes only its own
// O(m·k·width) slice instead of the full O(m·k·n) product.
//
// Thread safety: the grid's geometry (rows/cols/tile origins/widths) is
// immutable after construction. Tile CONTENTS are hot-swappable: each tile
// slot holds a shared_ptr<const ProtectedGemm>, readers snapshot the pointer
// per tile under a short lock and then run against the (immutable) snapshot,
// and swap_tile() replaces the pointer the same way. run_into/run_raw_into
// are const and may be called concurrently from any number of threads —
// including concurrently with swap_tile — PROVIDED each caller passes its own
// scratch/out buffers and its own Rng (the contract ServeEngine's per-worker
// buffers satisfy). Per-tile randomness is drawn from rng.fork(tile_index),
// so results depend only on the seed handed in — never on scheduling or
// thread count.
//
// Hot-swap state machine (per tile slot):
//
//     [serving old]──swap_tile(slice)──>[scrub candidate off to the side]
//          ^                                  │                │
//          │ scrub fails: candidate dropped,  │ scrub passes   │
//          └──────── old never stops serving ─┘                v
//                                             [pointer install: serving new]
//
// A request snapshots each tile pointer exactly once, immediately before
// running that tile — it computes against entirely-old or entirely-new tile
// weights, NEVER against a half-swapped tile (ProtectedGemm is immutable, so
// there is no such state to observe). Requests spanning a swap may mix old
// and new tiles across DIFFERENT column ranges; each tile's checksum screen
// still verifies its own slice exactly.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "detect/detect.h"
#include "fault/fault.h"
#include "tensor/quant.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace realm::fault {
class MemoryFaultModel;  // fault/memory.h
}

namespace realm::obs {  // obs/trace.h, obs/metrics.h
class Tracer;
class MetricsRegistry;
class Counter;
class Gauge;
enum class SpanKind : std::uint8_t;
}  // namespace realm::obs

namespace realm::serve {

struct TileGridConfig {
  /// Maximum columns per tile; the last tile takes the (possibly narrower)
  /// remainder. Must be >= 1.
  std::size_t tile_cols = 256;
  /// Detection config shared by every tile's ProtectedGemm.
  detect::DetectionConfig detect{};
  /// Span tracer for grid lifecycle instants (hot-swap installs, scrub
  /// rejections, injected memory flips); nullptr = untraced. Appended after
  /// `detect` so pre-observability aggregate initializers stay valid. Must
  /// outlive the grid.
  obs::Tracer* tracer = nullptr;
  /// Metrics registry for the realm_grid_* family; nullptr = unmetered.
  /// Must outlive the grid.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Aggregated verdict of one request across every tile of the grid.
///
/// Merge rules (merge_tile):
///  * verdict: worst wins, ordered kDetected > kRecomputed > kPatched >
///    kClean — one uncorrected tile poisons the request even if every other
///    tile healed, and a recompute (latency cliff) outranks the cheap patch.
///  * fault_cols: per-tile column indices shifted by the tile's origin, so
///    they index the assembled [m x n] output directly.
///  * fault_rows: union across tiles (finalize() sorts and dedups — the same
///    activation row feeds every tile, so row hits can repeat).
///  * injection: reports summed over tiles.
///  * msd_abs_max / max_dev_pow2: worst tile's statistic, the magnitude axis
///    of the paper's critical-region map at request granularity.
struct BatchVerdict {
  detect::Verdict verdict = detect::Verdict::kClean;
  std::size_t tiles = 0;
  std::size_t tiles_clean = 0;
  std::size_t tiles_detected = 0;   ///< flagged and NOT certified corrected
  std::size_t tiles_patched = 0;    ///< corrected by the in-place algebraic patch
  std::size_t tiles_recomputed = 0; ///< corrected by the full recompute replay

  /// Tiles corrected by either mode (patch + recompute).
  [[nodiscard]] std::size_t tiles_corrected() const noexcept {
    return tiles_patched + tiles_recomputed;
  }
  std::uint64_t msd_abs_max = 0;
  int max_dev_pow2 = 0;
  std::vector<std::size_t> fault_cols;  ///< global column indices, ascending
  std::vector<std::size_t> fault_rows;  ///< union over tiles, ascending after finalize()
  fault::InjectionReport injection;     ///< summed over tiles
  /// Per-component memory-fault bit-flip tallies, summed over tiles (the
  /// request-time components: kAccumulator mirrors injection.flipped_bits,
  /// kActivations counts pre-GEMM strikes; weight/panel faults happen at
  /// load/rest, outside any request — see TileGrid::memory_flips()).
  fault::ComponentFlips component_flips{};

  /// Clear to the all-clean state, keeping vector capacity (recycled buffers).
  void reset() noexcept;

  /// Fold one tile's verdict in; `col_origin` is the tile's first global
  /// column. Tiles merged in ascending origin order keep fault_cols sorted.
  void merge_tile(const detect::DetectionVerdict& v, std::size_t col_origin);

  /// Sort + dedup fault_rows (call once after the last merge_tile).
  void finalize();

  [[nodiscard]] bool faulty() const noexcept { return verdict != detect::Verdict::kClean; }
};

class TileGrid {
 public:
  /// Immutable snapshot of one tile's protected weights; holders keep the
  /// tile alive across a concurrent swap_tile of the same slot.
  using TileHandle = std::shared_ptr<const detect::ProtectedGemm>;

  /// Shard pre-quantized weights. Every tile shares `qw`, so the grid is
  /// numerically identical to an unsharded ProtectedGemm on the same matrix.
  TileGrid(const tensor::MatI8& w8, tensor::QuantParams qw, TileGridConfig cfg = {});

  /// Float weights: calibrate ONE scale over the whole matrix, then shard.
  /// (Per-tile calibration would give tiles different scales and break the
  /// bit-identity with an unsharded run.)
  explicit TileGrid(const tensor::MatF& w, TileGridConfig cfg = {});

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }  ///< k
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }  ///< n
  [[nodiscard]] std::size_t tile_count() const noexcept { return widths_.size(); }
  [[nodiscard]] std::size_t tile_origin(std::size_t t) const { return origins_.at(t); }
  [[nodiscard]] std::size_t tile_width(std::size_t t) const { return widths_.at(t); }
  [[nodiscard]] TileHandle tile(std::size_t t) const;
  [[nodiscard]] const TileGridConfig& config() const noexcept { return cfg_; }

  /// Zero-downtime weight update for one tile: builds a fresh ProtectedGemm
  /// from `slice` (must be rows() x tile_width(t); same-shape swaps only —
  /// the grid's geometry is immutable), scrubs the candidate with
  /// verify_weight_integrity BEFORE it takes any traffic, and atomically
  /// installs the pointer. Returns false (old tile keeps serving, candidate
  /// dropped) if the scrub fails; throws std::invalid_argument on a shape
  /// mismatch or bad tile index. Requests in flight keep their snapshots of
  /// the old tile and complete against it.
  ///
  /// Tiles swapped with a different `qw` than their neighbours dequantize
  /// their own columns with their own scale — numerically fine, but the grid
  /// then no longer matches an unsharded single-scale run bit-for-bit.
  bool swap_tile(std::size_t t, tensor::MatI8 slice, tensor::QuantParams qw);

  /// swap_tile under the memory-hierarchy fault model: the candidate's
  /// weights take kWeights strikes from `memory` (stream op
  /// compose_op(op, t), so rolling swaps reusing one `op` still expose each
  /// tile independently) between build and scrub, modelling a corrupted DMA
  /// of the new shard. The
  /// existing scrub-on-swap then vouches the candidate exactly as for a
  /// clean swap — a load whose net fault perturbs any row or column sum is
  /// rejected (returns false, old tile keeps serving). Flips are tallied in
  /// memory_flips()[kWeights] whether or not the candidate installs.
  bool swap_tile(std::size_t t, tensor::MatI8 slice, tensor::QuantParams qw,
                 const fault::MemoryFaultModel& memory, std::uint64_t op);

  /// Hot-swap the whole matrix tile by tile (the rolling-update loop):
  /// slices `w8` (must be rows() x cols()) along the existing tile
  /// boundaries and swap_tile()s each in ascending order. Returns the number
  /// of tiles installed — equal to tile_count() unless a candidate failed
  /// its scrub, in which case the roll-out stops there and every later tile
  /// keeps its old weights.
  std::size_t swap_weights(const tensor::MatI8& w8, tensor::QuantParams qw);

  /// Successful swap_tile installs so far (0 for a freshly built grid).
  [[nodiscard]] std::uint64_t swap_epoch() const;

  /// One at-rest retention epoch over every tile's resident SIMD panels:
  /// each tile's panels take kPackedPanels strikes from `memory` (stream
  /// op compose_op(epoch, tile_index), so epochs and tiles are independent
  /// replayable streams). Unlike swap_tile there is NO scrub here — at-rest
  /// corruption is precisely the fault the eᵀW scrub and per-request screen
  /// must catch later. Each faulted tile is rebuilt as a copy and installed
  /// atomically (in-flight requests keep their clean snapshots); the
  /// checksum BASES stay clean, so the corruption is detectable. Returns
  /// total bits flipped (also tallied in memory_flips()[kPackedPanels]).
  /// Vacuous (returns 0) on the portable tier, which holds no panels.
  std::uint64_t age_panels(const fault::MemoryFaultModel& memory, std::uint64_t epoch);

  /// Cumulative load/rest-time memory-fault tallies (kWeights from faulted
  /// swap_tile loads, kPackedPanels from age_panels); request-time slots
  /// stay zero — those live in BatchVerdict::component_flips.
  [[nodiscard]] fault::ComponentFlips memory_flips() const;

  /// One request through every tile: per-tile protected GEMM (injector drawn
  /// against rng.fork(tile_index)) into recycled `scratch` (resized to
  /// tile_count() on first use), per-tile outputs assembled into `out`
  /// [m x n], verdicts merged into `verdict`. Steady-state zero-alloc when
  /// the caller recycles all three buffers across requests.
  ///
  /// Non-null `memory` puts the request under the memory-hierarchy fault
  /// model: each tile consumes a kActivations stream at op
  /// compose_op(op, tile_index) — every tile DMAs its own copy of A, an
  /// independent exposure — and tallies land in verdict.component_flips.
  /// Streams depend only on (memory seed, op, tile_index), never on thread
  /// count or scheduling.
  void run_into(const tensor::MatI8& a8, tensor::QuantParams qa,
                const fault::FaultInjector& injector, const util::Rng& rng,
                std::vector<detect::ProtectedGemmResult>& scratch, tensor::MatF& out,
                BatchVerdict& verdict, const fault::MemoryFaultModel* memory = nullptr,
                std::uint64_t op = 0) const;

  /// Per-tile injector variant (tests drive a fault into exactly one tile
  /// with NullInjector elsewhere). `tile_injectors` must have tile_count()
  /// entries, none null.
  void run_into(const tensor::MatI8& a8, tensor::QuantParams qa,
                std::span<const fault::FaultInjector* const> tile_injectors, const util::Rng& rng,
                std::vector<detect::ProtectedGemmResult>& scratch, tensor::MatF& out,
                BatchVerdict& verdict, const fault::MemoryFaultModel* memory = nullptr,
                std::uint64_t op = 0) const;

  /// Unprotected baseline over the same tiles and resident panels: per-tile
  /// prepacked GEMM only — no screen, no dequantize. The raw side of the
  /// serve bench's per-request overhead measurement.
  void run_raw_into(const tensor::MatI8& a8, std::vector<tensor::MatI32>& scratch) const;

  /// Scrub every tile's stationary weights against its resident bases.
  [[nodiscard]] bool verify_weight_integrity() const;

 private:
  void build(const tensor::MatI8& w8, tensor::QuantParams qw);

  /// Control-lane instant on the configured tracer (no-op when untraced or
  /// when tracing is compiled out).
  void emit_instant(obs::SpanKind kind, std::size_t t) const;

  /// Handles resolved once at build() from cfg_.metrics; nullptr when
  /// unmetered. Increments are relaxed-atomic — safe from any thread.
  struct GridMetrics {
    obs::Counter* swaps = nullptr;
    obs::Counter* scrub_rejects = nullptr;
    obs::Gauge* swap_epoch = nullptr;
    std::array<obs::Counter*, fault::kComponentCount> memory_flips{};
  };

  /// Shared tile loop. `injectors[t * stride]` is tile t's injector: stride 0
  /// broadcasts one injector to every tile without materializing a per-tile
  /// pointer array (the zero-alloc serving hot path), stride 1 walks the
  /// per-tile span.
  void run_tiles(const tensor::MatI8& a8, tensor::QuantParams qa,
                 const fault::FaultInjector* const* injectors, std::size_t stride,
                 const util::Rng& rng, std::vector<detect::ProtectedGemmResult>& scratch,
                 tensor::MatF& out, BatchVerdict& verdict, const fault::MemoryFaultModel* memory,
                 std::uint64_t op) const;

  TileGridConfig cfg_;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  /// Tile slots; pointer reads/writes guarded by swap_mu_, pointees immutable.
  std::vector<TileHandle> tiles_;
  std::vector<std::size_t> origins_;
  std::vector<std::size_t> widths_;
  mutable std::mutex swap_mu_;
  std::uint64_t swap_epoch_ = 0;             ///< guarded by swap_mu_
  fault::ComponentFlips memory_flips_{};     ///< guarded by swap_mu_
  GridMetrics met_{};
};

}  // namespace realm::serve
