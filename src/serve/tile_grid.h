// Column-tiled protected weight grid — the multi-tile layer of the serving
// engine (paper Fig. 3/7 scaled out: one stationary accelerator tile per
// weight shard, each screening its own outputs with resident checksum bases).
//
// TileGrid shards a stationary weight matrix W[k x n] into column tiles of at
// most `tile_cols` columns. Each tile owns a detect::ProtectedGemm, so the
// expensive per-weight state — quantized slice, SIMD panels (kernels::PackedB),
// and both checksum bases (W·e and the Fig. 7 eᵀW row) — is computed once at
// construction and stays resident for every request the grid ever serves.
//
// A GEMM is column-separable: columns [origin, origin+width) of A·W are
// exactly A·W[:, origin:origin+width]. Sharding therefore changes nothing
// about the math — a multi-tile run's assembled accumulator and output are
// bit-identical to an unsharded ProtectedGemm on the same operands, and each
// tile's checksum screen is the same exact integer identity it was for the
// whole matrix. What sharding buys is serving granularity: faults localize to
// a tile before the column intersection even runs, verdicts aggregate per
// request (BatchVerdict), and a detected tile recomputes only its own
// O(m·k·width) slice instead of the full O(m·k·n) product.
//
// Thread safety: after construction TileGrid is immutable; run_into and
// run_raw_into are const and may be called concurrently from any number of
// threads PROVIDED each caller passes its own scratch/out buffers and its own
// Rng (the contract ServeEngine's per-worker buffers satisfy). Per-tile
// randomness is drawn from rng.fork(tile_index), so results depend only on
// the seed handed in — never on scheduling or thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "detect/detect.h"
#include "fault/fault.h"
#include "tensor/quant.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace realm::serve {

struct TileGridConfig {
  /// Maximum columns per tile; the last tile takes the (possibly narrower)
  /// remainder. Must be >= 1.
  std::size_t tile_cols = 256;
  /// Detection config shared by every tile's ProtectedGemm.
  detect::DetectionConfig detect{};
};

/// Aggregated verdict of one request across every tile of the grid.
///
/// Merge rules (merge_tile):
///  * verdict: worst wins, ordered kDetected > kCorrected > kClean — one
///    uncorrected tile poisons the request even if every other tile healed.
///  * fault_cols: per-tile column indices shifted by the tile's origin, so
///    they index the assembled [m x n] output directly.
///  * fault_rows: union across tiles (finalize() sorts and dedups — the same
///    activation row feeds every tile, so row hits can repeat).
///  * injection: reports summed over tiles.
///  * msd_abs_max / max_dev_pow2: worst tile's statistic, the magnitude axis
///    of the paper's critical-region map at request granularity.
struct BatchVerdict {
  detect::Verdict verdict = detect::Verdict::kClean;
  std::size_t tiles = 0;
  std::size_t tiles_clean = 0;
  std::size_t tiles_detected = 0;  ///< flagged and NOT certified corrected
  std::size_t tiles_corrected = 0;
  std::uint64_t msd_abs_max = 0;
  int max_dev_pow2 = 0;
  std::vector<std::size_t> fault_cols;  ///< global column indices, ascending
  std::vector<std::size_t> fault_rows;  ///< union over tiles, ascending after finalize()
  fault::InjectionReport injection;     ///< summed over tiles

  /// Clear to the all-clean state, keeping vector capacity (recycled buffers).
  void reset() noexcept;

  /// Fold one tile's verdict in; `col_origin` is the tile's first global
  /// column. Tiles merged in ascending origin order keep fault_cols sorted.
  void merge_tile(const detect::DetectionVerdict& v, std::size_t col_origin);

  /// Sort + dedup fault_rows (call once after the last merge_tile).
  void finalize();

  [[nodiscard]] bool faulty() const noexcept { return verdict != detect::Verdict::kClean; }
};

class TileGrid {
 public:
  /// Shard pre-quantized weights. Every tile shares `qw`, so the grid is
  /// numerically identical to an unsharded ProtectedGemm on the same matrix.
  TileGrid(const tensor::MatI8& w8, tensor::QuantParams qw, TileGridConfig cfg = {});

  /// Float weights: calibrate ONE scale over the whole matrix, then shard.
  /// (Per-tile calibration would give tiles different scales and break the
  /// bit-identity with an unsharded run.)
  explicit TileGrid(const tensor::MatF& w, TileGridConfig cfg = {});

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }  ///< k
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }  ///< n
  [[nodiscard]] std::size_t tile_count() const noexcept { return tiles_.size(); }
  [[nodiscard]] std::size_t tile_origin(std::size_t t) const { return origins_.at(t); }
  [[nodiscard]] std::size_t tile_width(std::size_t t) const;
  [[nodiscard]] const detect::ProtectedGemm& tile(std::size_t t) const { return tiles_.at(t); }
  [[nodiscard]] const TileGridConfig& config() const noexcept { return cfg_; }

  /// One request through every tile: per-tile protected GEMM (injector drawn
  /// against rng.fork(tile_index)) into recycled `scratch` (resized to
  /// tile_count() on first use), per-tile outputs assembled into `out`
  /// [m x n], verdicts merged into `verdict`. Steady-state zero-alloc when
  /// the caller recycles all three buffers across requests.
  void run_into(const tensor::MatI8& a8, tensor::QuantParams qa,
                const fault::FaultInjector& injector, const util::Rng& rng,
                std::vector<detect::ProtectedGemmResult>& scratch, tensor::MatF& out,
                BatchVerdict& verdict) const;

  /// Per-tile injector variant (tests drive a fault into exactly one tile
  /// with NullInjector elsewhere). `tile_injectors` must have tile_count()
  /// entries, none null.
  void run_into(const tensor::MatI8& a8, tensor::QuantParams qa,
                std::span<const fault::FaultInjector* const> tile_injectors, const util::Rng& rng,
                std::vector<detect::ProtectedGemmResult>& scratch, tensor::MatF& out,
                BatchVerdict& verdict) const;

  /// Unprotected baseline over the same tiles and resident panels: per-tile
  /// prepacked GEMM only — no screen, no dequantize. The raw side of the
  /// serve bench's per-request overhead measurement.
  void run_raw_into(const tensor::MatI8& a8, std::vector<tensor::MatI32>& scratch) const;

  /// Scrub every tile's stationary weights against its resident bases.
  [[nodiscard]] bool verify_weight_integrity() const;

 private:
  void build(const tensor::MatI8& w8, tensor::QuantParams qw);

  /// Shared tile loop. `injectors[t * stride]` is tile t's injector: stride 0
  /// broadcasts one injector to every tile without materializing a per-tile
  /// pointer array (the zero-alloc serving hot path), stride 1 walks the
  /// per-tile span.
  void run_tiles(const tensor::MatI8& a8, tensor::QuantParams qa,
                 const fault::FaultInjector* const* injectors, std::size_t stride,
                 const util::Rng& rng, std::vector<detect::ProtectedGemmResult>& scratch,
                 tensor::MatF& out, BatchVerdict& verdict) const;

  TileGridConfig cfg_;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<detect::ProtectedGemm> tiles_;
  std::vector<std::size_t> origins_;
};

}  // namespace realm::serve
