// ABFT checksum primitives (Fig. 3 of the paper).
//
// For Y = A·B, the column-checksum identity is eᵀY = (eᵀA)·B and the
// row-checksum identity is Y·e = A·(B·e). Classical ABFT checks both sides;
// one-sided / MSD schemes check only columns; ReaLM's statistical unit
// consumes the per-column deviation vector d and its sum (the matrix-sum
// deviation, MSD = eᵀY·e − eᵀA·B·e).
//
// All checksum arithmetic is int64 here; reduced hardware widths (16-bit eᵀW
// row, 32-bit accumulator buses) are modeled separately in realm::sa, which
// reuses these exact functions with clamping.
//
// Every reduction routes through the tiered SIMD layer in
// checksum_kernels.{h,cpp} (avx512/avx2/portable, picked by the same runtime
// dispatch as the GEMM — kernels::active_tier()) and is row- or
// column-sharded across util::global_pool(); results are bit-identical to the
// int64 scalar reference at every tier and thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace realm::tensor {

/// eᵀM: per-column sums (length = cols).
[[nodiscard]] std::vector<std::int64_t> col_sums(const MatI8& m);
[[nodiscard]] std::vector<std::int64_t> col_sums(const MatI32& m);

/// M·e: per-row sums (length = rows).
[[nodiscard]] std::vector<std::int64_t> row_sums(const MatI8& m);
[[nodiscard]] std::vector<std::int64_t> row_sums(const MatI32& m);

/// Weighted checksum bases for the multi-fault ABFT solve (see
/// src/detect/correct.h): uᵀM with u = [1,2,3,…] and M·v with v = [1,2,3,…].
/// The ratio of weighted to plain deviation recovers the faulty row (column
/// solve) or column (row solve) index plus one.
[[nodiscard]] std::vector<std::int64_t> weighted_col_sums(const MatI8& m);
[[nodiscard]] std::vector<std::int64_t> weighted_col_sums(const MatI32& m);
[[nodiscard]] std::vector<std::int64_t> weighted_row_sums(const MatI8& m);
[[nodiscard]] std::vector<std::int64_t> weighted_row_sums(const MatI32& m);

/// Predicted column checksum of A·B, i.e. (eᵀA)·B, computed from the inputs.
[[nodiscard]] std::vector<std::int64_t> predict_col_checksum(const MatI8& a, const MatI8& b);

/// Predicted row checksum of A·B, i.e. A·(B·e).
[[nodiscard]] std::vector<std::int64_t> predict_row_checksum(const MatI8& a, const MatI8& b);

/// Same, from a precomputed weight basis B·e (= row_sums(b)); the hardware
/// keeps this resident with the stationary weights so the per-GEMM row-side
/// cost is O(m·k) instead of O(k·n + m·k).
[[nodiscard]] std::vector<std::int64_t> predict_row_checksum(
    const MatI8& a, const std::vector<std::int64_t>& b_row_basis);

/// Per-column deviations and their aggregates for an (possibly faulty)
/// output C of A·B. diff[j] = (eᵀC)_j − ((eᵀA)·B)_j, which equals the sum of
/// all error values injected into column j.
struct ColumnDeviation {
  std::vector<std::int64_t> diff;  ///< per-column signed deviation
  std::int64_t msd_signed = 0;     ///< Σ diff (what the Fig. 7c accumulator computes)
  std::uint64_t msd_abs = 0;       ///< |Σ diff|
  std::uint64_t l1 = 0;            ///< Σ |diff| (ablation alternative; see DESIGN.md §6)

  [[nodiscard]] bool any_nonzero() const noexcept {
    for (const auto d : diff) {
      if (d != 0) return true;
    }
    return false;
  }
};

[[nodiscard]] ColumnDeviation column_deviation(const MatI8& a, const MatI8& b, const MatI32& c);

/// Deviation computed from a precomputed predicted checksum (the hardware
/// keeps eᵀW resident with the stationary weights, so prediction cost is paid
/// once per weight tile, not once per GEMM).
[[nodiscard]] ColumnDeviation column_deviation_from_predicted(
    const std::vector<std::int64_t>& predicted, const MatI32& c);

/// Row-side deviation for two-sided (classical) ABFT.
[[nodiscard]] std::vector<std::int64_t> row_deviation(const MatI8& a, const MatI8& b,
                                                      const MatI32& c);

}  // namespace realm::tensor
