// Tiered INT8 GEMM kernels with runtime CPU dispatch.
//
// Three implementations of the same bit-exact contract, best one picked per
// process by probing CPUID at first use (overridable for tests and A/B runs):
//
//  * kAvx512 — 512-bit madd_epi16 microkernel (8 rows x 32 cols of int32
//    accumulators), for CPUs with AVX-512F + AVX-512BW.
//  * kAvx2   — 256-bit madd_epi16 microkernel (4 rows x 16 cols).
//  * kPortable — the blocked scalar i-k-j loop (autovectorizable), always
//    available; the reference the SIMD tiers are cross-checked against.
//
// The SIMD tiers share one data layout: B is packed once per call into
// column panels of kNr int16 pairs — pair (b[2kp][j], b[2kp+1][j]) sits
// contiguously so a vpmaddwd against a broadcast A pair (a[i][2kp], a[i][2kp+1])
// accumulates two k-steps per instruction, int8 -> int16 -> int32 with no
// saturation anywhere: |a*b| <= 2^14, a pair sums to <= 2^15, and k <= 2^16
// keeps the int32 accumulator within 2^30 (see tensor::kMaxK).
//
// Every tier produces bit-identical results to every other tier and at every
// thread count: integer addition is associative, each output element's
// k-reduction is computed in full by exactly one thread, and row shards are
// disjoint. The macro-loop is row-sharded across util::global_pool().
//
// C is FULLY OVERWRITTEN and never read — callers need not (and should not)
// zero it first. This is the contract both tensor::gemm_i8 and
// tensor::gemm_i8_bt expose.
//
// Fused eᵀC reduction: every entry point takes an optional `col_sums` buffer
// (length n). When non-null it is fully overwritten with the per-column int64
// sums of the C this call writes, accumulated in the microkernel store phase
// from the register tiles — the checksum screen's observed/predicted column
// reduction without a second pass over C. Row shards accumulate into private
// partials merged under a lock; int64 addition is associative and
// commutative, so the fused sums are bit-identical to col_sums(C) at every
// tier, thread count, and merge order.
//
// Each entry point also takes an optional `wcol_sums` buffer (length n): the
// WEIGHTED column reduction uᵀC with u = [1,2,3,…] — the second checksum
// basis of the multi-fault ABFT construction (src/detect/correct.h). It is
// folded per row shard right after the shard's C rows are stored (the rows
// are still cache-hot), merged under the same lock, and carries the same
// bit-identity guarantee.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace realm::tensor::kernels {

enum class Tier : std::uint8_t {
  kPortable = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

[[nodiscard]] const char* to_string(Tier t) noexcept;

/// Best tier the running CPU (and OS state-save support) can execute,
/// probed once via CPUID/XGETBV. Always at least kPortable.
[[nodiscard]] Tier best_supported_tier() noexcept;

/// Tier used by gemm_i8/gemm_i8_bt. Defaults to best_supported_tier(); the
/// REALM_KERNEL environment variable (portable|avx2|avx512) overrides the
/// default at first use.
[[nodiscard]] Tier active_tier() noexcept;

/// Force a tier (tests cross-checking SIMD vs scalar drive this). Throws
/// std::invalid_argument if the CPU cannot execute it.
void set_active_tier(Tier t);

/// c[m x n] = a[m x k] * b[k x n], all row-major, int8 inputs, int32
/// accumulation. c is fully overwritten. Dimension/overflow validation is the
/// caller's job (tensor::gemm_i8 enforces kMaxK). Non-null `col_sums`
/// (length n) receives the fused eᵀC reduction; non-null `wcol_sums`
/// (length n) the fused weighted uᵀC reduction (see file comment).
void gemm_i8(const std::int8_t* a, const std::int8_t* b, std::int32_t* c, std::size_t m,
             std::size_t k, std::size_t n, std::int64_t* col_sums = nullptr,
             std::int64_t* wcol_sums = nullptr);

/// Pre-packed SIMD panels of a stationary B operand (the accelerator's
/// weight-resident model: pay the O(k*n) pack once per weight tile, not once
/// per GEMM). Opaque; tied to the tier it was packed for — a tier or shape
/// mismatch at use time simply falls back to packing fresh. Cheap to move,
/// empty (and always a fallback) on the portable tier.
///
/// Immutability contract (load-bearing for realm::serve): pack_b is the only
/// writer — once returned, a PackedB is never mutated by any gemm_i8_*
/// call, so any number of concurrent GEMMs (every worker of a serving
/// engine, plus recompute replays) may read the same panels with no
/// synchronization. Destroying or reassigning it while a GEMM reads it is,
/// of course, a race — ProtectedGemm keeps panels alive with the weights.
class PackedB {
 public:
  PackedB() = default;

  [[nodiscard]] bool valid_for(Tier t, std::size_t k, std::size_t n) const noexcept {
    return !panels_.empty() && tier_ == t && k_ == k && n_ == n;
  }

  /// Raw panel words, for the memory-hierarchy fault model (at-rest panel
  /// corruption) and the repack-compare scrub. Empty on the portable tier,
  /// which consumes B directly.
  [[nodiscard]] std::span<const std::int16_t> raw_panels() const noexcept { return panels_; }

  /// Mutable view for fault injection ONLY. Writing through this view on a
  /// PackedB that concurrent GEMMs read violates the immutability contract
  /// above — callers must hold an exclusively-owned copy (ProtectedGemm::
  /// corrupt_panels mutates its own member before the tile is shared).
  [[nodiscard]] std::span<std::int16_t> mutable_panels() noexcept { return panels_; }

 private:
  friend PackedB pack_b(const std::int8_t* b, std::size_t k, std::size_t n);
  friend void gemm_i8_prepacked(const std::int8_t* a, const std::int8_t* b, const PackedB& pb,
                                std::int32_t* c, std::size_t m, std::size_t k, std::size_t n,
                                std::int64_t* col_sums, std::int64_t* wcol_sums);

  Tier tier_ = Tier::kPortable;
  std::size_t k_ = 0;
  std::size_t n_ = 0;
  std::vector<std::int16_t> panels_;
};

/// Pack b[k x n] (row-major) for the active tier.
[[nodiscard]] PackedB pack_b(const std::int8_t* b, std::size_t k, std::size_t n);

/// gemm_i8 that reuses pre-packed panels when `pb` matches the active tier
/// and shape; otherwise identical to gemm_i8(a, b, c, ...). Bit-exact with
/// the non-prepacked path in every case.
void gemm_i8_prepacked(const std::int8_t* a, const std::int8_t* b, const PackedB& pb,
                       std::int32_t* c, std::size_t m, std::size_t k, std::size_t n,
                       std::int64_t* col_sums = nullptr, std::int64_t* wcol_sums = nullptr);

/// c[m x n] = a[m x k] * bt^T where bt is stored [n x k] row-major.
void gemm_i8_bt(const std::int8_t* a, const std::int8_t* bt, std::int32_t* c, std::size_t m,
                std::size_t k, std::size_t n, std::int64_t* col_sums = nullptr,
                std::int64_t* wcol_sums = nullptr);

}  // namespace realm::tensor::kernels
