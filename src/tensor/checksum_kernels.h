// Tiered SIMD reductions for the ABFT checksum screen.
//
// Mirrors the gemm_kernels architecture: one bit-exact contract, three
// implementations (avx512 / avx2 / portable) selected by the SAME runtime
// dispatch — kernels::active_tier() — so REALM_KERNEL and set_active_tier()
// steer the GEMM and its checksum screen together. Every function produces
// results identical to the int64 scalar reference at every tier and every
// thread count: all arithmetic is exact integer math (associative and
// commutative), and work is sharded so each output element is owned by
// exactly one chunk (rows for row-indexed outputs, column bands for
// column-indexed outputs — no cross-chunk merge anywhere).
//
// Widening strategy per kernel (the scalar loops these replace accumulated
// int64 one element at a time):
//  * col_sums_i8  — rows are added into int16 lane accumulators in blocks of
//    ≤256 rows (256·|−128| = 32768 exactly saturates nothing: int16 min is
//    −32768), then flushed into the int64 output; ~32 columns per vector op.
//  * col_sums_i32 — int32 lanes sign-extended to int64 and added directly.
//  * row_sums_i8  — the vpsadbw trick: bias to uint8 (xor 0x80), sum absolute
//    differences against zero into 64-bit lanes, subtract 128·cols once.
//  * row_sums_i32 — sign-extend + add, horizontal reduce per row.
//  * predict_*    — 32×32→64-bit vpmuldq products (the multiplier eᵀA / W·e
//    entries are bounded by 128·rows, so they fit int32 for every matrix
//    smaller than 2^24 rows; the unreachable huge case falls back to scalar).
//
// All pointers are to dense row-major data; `out` buffers are fully
// overwritten. Shapes with rows == 0 or cols == 0 write zeros.
#pragma once

#include <cstddef>
#include <cstdint>

namespace realm::tensor::kernels {

/// out[j] = Σ_r m[r][j]  (length cols).
void col_sums_i8(const std::int8_t* m, std::size_t rows, std::size_t cols, std::int64_t* out);
void col_sums_i32(const std::int32_t* m, std::size_t rows, std::size_t cols, std::int64_t* out);

/// out[r] = Σ_j m[r][j]  (length rows).
void row_sums_i8(const std::int8_t* m, std::size_t rows, std::size_t cols, std::int64_t* out);
void row_sums_i32(const std::int32_t* m, std::size_t rows, std::size_t cols, std::int64_t* out);

/// Weighted-basis reductions for the multi-fault ABFT solve (correction path
/// only — cold, portable scalar bodies behind the same sharding as the exact
/// kernels, so they stay bit-identical at every tier and thread count).
///
/// uᵀM with u = [1,2,3,…]: out[j] = Σ_r (r+1)·m[r][j]  (length cols).
void weighted_col_sums_i8(const std::int8_t* m, std::size_t rows, std::size_t cols,
                          std::int64_t* out);
void weighted_col_sums_i32(const std::int32_t* m, std::size_t rows, std::size_t cols,
                           std::int64_t* out);

/// M·v with v = [1,2,3,…]: out[r] = Σ_j (j+1)·m[r][j]  (length rows).
void weighted_row_sums_i8(const std::int8_t* m, std::size_t rows, std::size_t cols,
                          std::int64_t* out);
void weighted_row_sums_i32(const std::int32_t* m, std::size_t rows, std::size_t cols,
                           std::int64_t* out);

/// Width-truncated i32 reductions, modeling `bits`-wide checksum registers
/// (the realm::sa reduced-width datapath; bits is clamped to [0, 64] by the
/// wrap/clamp helpers — 64 reproduces the exact kernels above).
///
///  * Wrap (saturate == false): carries out of the register drop — additions
///    are exact mod 2^bits, which is associative, so the register equals the
///    exact int64 sum reduced once. These ride the SIMD reductions above and
///    truncate per output element; bit-accurate at every tier/thread count.
///  * Saturate (saturate == true): every add clamps at the register rails.
///    Order-dependent, so the model pins the accumulation order a
///    weight-stationary array drains partial sums in — ascending row index
///    for column registers, ascending column index for row registers — and
///    runs a scalar loop, sharded like the exact kernels (each output element
///    owned by one chunk, so still deterministic at any thread count).
void col_sums_i32_width(const std::int32_t* m, std::size_t rows, std::size_t cols, int bits,
                        bool saturate, std::int64_t* out);
void row_sums_i32_width(const std::int32_t* m, std::size_t rows, std::size_t cols, int bits,
                        bool saturate, std::int64_t* out);

/// out[j] = Σ_k ea[k] · b[k][j]  (length n): the predicted column checksum
/// (eᵀA)·B from a precomputed activation basis ea = col_sums(A) and row-major
/// b[k x n].
void predict_col_checksum(const std::int64_t* ea, const std::int8_t* b, std::size_t k,
                          std::size_t n, std::int64_t* out);

/// out[i] = Σ_k a[i][k] · basis[k]  (length m): the predicted row checksum
/// A·(B·e) from the weight-resident basis = row_sums(B).
void predict_row_checksum(const std::int8_t* a, std::size_t m, std::size_t k,
                          const std::int64_t* basis, std::int64_t* out);

}  // namespace realm::tensor::kernels
