#include "tensor/gemm.h"

#include <stdexcept>

#include "tensor/gemm_kernels.h"

namespace realm::tensor {

namespace {

void check_gemm_dims(std::size_t ak, std::size_t bk) {
  if (ak != bk) throw std::invalid_argument("gemm: inner dimensions disagree");
}

// Int8 paths only — the float reference accumulates in float and has no such
// bound. Worst-case |dot| = 128*128*k = 2^14*k (raw MatI8 can hold -128, not
// just the quantizer's ±127); 2^14 * 2^16 = 2^30 fits int32, 2^14 * 2^17 =
// 2^31 does not. Enforced in release builds too: a silently wrapped
// accumulator is indistinguishable from the faults this repo exists to detect.
void check_i8_k_bound(std::size_t k) {
  if (k > kMaxK) {
    throw std::invalid_argument("gemm: k exceeds 2^16, int32 accumulation could overflow");
  }
}

}  // namespace

namespace {

std::int64_t* fused_buffer(std::vector<std::int64_t>* fused, std::size_t n) {
  if (!fused) return nullptr;
  fused->resize(n);
  return fused->data();
}

}  // namespace

void gemm_i8(const MatI8& a, const MatI8& b, MatI32& c,
             std::vector<std::int64_t>* fused_col_sums,
             std::vector<std::int64_t>* fused_wcol_sums) {
  check_gemm_dims(a.cols(), b.rows());
  check_i8_k_bound(a.cols());
  const std::size_t m = a.rows();
  const std::size_t n = b.cols();
  if (c.rows() != m || c.cols() != n) c = MatI32(m, n);
  kernels::gemm_i8(a.data(), b.data(), c.data(), m, a.cols(), n,
                   fused_buffer(fused_col_sums, n), fused_buffer(fused_wcol_sums, n));
}

MatI32 gemm_i8(const MatI8& a, const MatI8& b) {
  MatI32 c(a.rows(), b.cols());
  gemm_i8(a, b, c);
  return c;
}

void gemm_i8_prepacked(const MatI8& a, const MatI8& b, const kernels::PackedB& pb, MatI32& c,
                       std::vector<std::int64_t>* fused_col_sums,
                       std::vector<std::int64_t>* fused_wcol_sums) {
  check_gemm_dims(a.cols(), b.rows());
  check_i8_k_bound(a.cols());
  const std::size_t m = a.rows();
  const std::size_t n = b.cols();
  if (c.rows() != m || c.cols() != n) c = MatI32(m, n);
  kernels::gemm_i8_prepacked(a.data(), b.data(), pb, c.data(), m, a.cols(), n,
                             fused_buffer(fused_col_sums, n), fused_buffer(fused_wcol_sums, n));
}

void gemm_i8_bt(const MatI8& a, const MatI8& bt, MatI32& c,
                std::vector<std::int64_t>* fused_col_sums,
                std::vector<std::int64_t>* fused_wcol_sums) {
  check_gemm_dims(a.cols(), bt.cols());
  check_i8_k_bound(a.cols());
  const std::size_t m = a.rows();
  const std::size_t n = bt.rows();
  if (c.rows() != m || c.cols() != n) c = MatI32(m, n);
  kernels::gemm_i8_bt(a.data(), bt.data(), c.data(), m, a.cols(), n,
                      fused_buffer(fused_col_sums, n), fused_buffer(fused_wcol_sums, n));
}

MatI32 gemm_i8_bt(const MatI8& a, const MatI8& bt) {
  MatI32 c(a.rows(), bt.rows());
  gemm_i8_bt(a, bt, c);
  return c;
}

MatF gemm_f32(const MatF& a, const MatF& b) {
  check_gemm_dims(a.cols(), b.rows());
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  MatF c(m, n, 0.0f);
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a.data() + i * k;
    float* crow = c.data() + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      const float* brow = b.data() + kk * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

}  // namespace realm::tensor
