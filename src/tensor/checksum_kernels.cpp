#include "tensor/checksum_kernels.h"

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "tensor/gemm_kernels.h"
#include "util/bitmath.h"
#include "util/compiler.h"
#include "util/threadpool.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define REALM_X86 1
#else
#define REALM_X86 0
#endif

namespace realm::tensor::kernels {

namespace {

// Sharding grains. Column bands are at least a cache line of the narrowest
// element type so no line is touched by two chunks; row grains keep per-chunk
// work in the tens of microseconds even on small matrices.
constexpr std::size_t kColGrain = 64;
constexpr std::size_t kRowGrain = 32;

/// Rows accumulated into int16 lanes before flushing to int64. 256 is the
/// exact safe bound: 256·(−128) = −32768 = INT16_MIN and 256·127 = 32512.
constexpr std::size_t kI16Block = 256;

/// The predict kernels do their multiplies as 32×32→64 (vpmuldq), so the
/// int64 multiplier must fit int32. Checksum bases are bounded by 128·rows,
/// which only exceeds this for matrices over 2^24 rows; such calls (and any
/// adversarial caller-supplied basis) take the scalar reference path instead.
bool all_fit_i32(const std::int64_t* v, std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) {
    if (v[i] < INT32_MIN || v[i] > INT32_MAX) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Portable tier: the int64 scalar loops every SIMD tier is cross-checked
// against (these are the bodies checksum.cpp used before this layer existed).
// ---------------------------------------------------------------------------

template <typename T>
void col_sums_portable(const T* m, std::size_t rows, std::size_t cols, std::size_t j0,
                       std::size_t j1, std::int64_t* out) {
  for (std::size_t j = j0; j < j1; ++j) out[j] = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    const T* row = m + r * cols;
    for (std::size_t j = j0; j < j1; ++j) out[j] += static_cast<std::int64_t>(row[j]);
  }
}

template <typename T>
void row_sums_portable(const T* m, std::size_t cols, std::size_t r0, std::size_t r1,
                       std::int64_t* out) {
  for (std::size_t r = r0; r < r1; ++r) {
    const T* row = m + r * cols;
    std::int64_t acc = 0;
    for (std::size_t j = 0; j < cols; ++j) acc += static_cast<std::int64_t>(row[j]);
    out[r] = acc;
  }
}

// Weighted-basis reductions (uᵀM and M·v with weights [1,2,3,…]). Correction
// path only — runs on detected tiles, never in the clean hot loop — so
// portable scalar bodies behind the standard sharding are plenty; exact int64
// keeps them bit-identical at every tier and thread count.

template <typename T>
void weighted_col_sums_portable(const T* m, std::size_t rows, std::size_t cols, std::size_t j0,
                                std::size_t j1, std::int64_t* out) {
  for (std::size_t j = j0; j < j1; ++j) out[j] = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    const T* row = m + r * cols;
    const auto w = static_cast<std::int64_t>(r + 1);
    for (std::size_t j = j0; j < j1; ++j) out[j] += w * static_cast<std::int64_t>(row[j]);
  }
}

template <typename T>
void weighted_row_sums_portable(const T* m, std::size_t cols, std::size_t r0, std::size_t r1,
                                std::int64_t* out) {
  for (std::size_t r = r0; r < r1; ++r) {
    const T* row = m + r * cols;
    std::int64_t acc = 0;
    for (std::size_t j = 0; j < cols; ++j) {
      acc += static_cast<std::int64_t>(j + 1) * static_cast<std::int64_t>(row[j]);
    }
    out[r] = acc;
  }
}

void predict_col_portable(const std::int64_t* ea, const std::int8_t* b, std::size_t k,
                          std::size_t n, std::size_t j0, std::size_t j1, std::int64_t* out) {
  for (std::size_t j = j0; j < j1; ++j) out[j] = 0;
  for (std::size_t kk = 0; kk < k; ++kk) {
    const std::int64_t av = ea[kk];
    if (av == 0) continue;
    const std::int8_t* brow = b + kk * n;
    for (std::size_t j = j0; j < j1; ++j) out[j] += av * static_cast<std::int64_t>(brow[j]);
  }
}

/// Saturating `bits`-wide column registers, rows ascending — the pinned
/// accumulation order of the reduced-width datapath model. Register values
/// stay inside the `bits` rails, so sat_add_i64 never saturates at int64
/// itself (|reg| + |int32| < 2^63 for every bits <= 64).
void col_sums_sat_portable(const std::int32_t* m, std::size_t rows, std::size_t cols, int bits,
                           std::size_t j0, std::size_t j1, std::int64_t* out) {
  for (std::size_t j = j0; j < j1; ++j) out[j] = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    const std::int32_t* row = m + r * cols;
    for (std::size_t j = j0; j < j1; ++j) {
      out[j] = util::clamp_to_bits(
          util::sat_add_i64(out[j], static_cast<std::int64_t>(row[j])), bits);
    }
  }
}

/// Saturating `bits`-wide row registers, columns ascending.
void row_sums_sat_portable(const std::int32_t* m, std::size_t cols, int bits, std::size_t r0,
                           std::size_t r1, std::int64_t* out) {
  for (std::size_t r = r0; r < r1; ++r) {
    const std::int32_t* row = m + r * cols;
    std::int64_t acc = 0;
    for (std::size_t j = 0; j < cols; ++j) {
      acc = util::clamp_to_bits(util::sat_add_i64(acc, static_cast<std::int64_t>(row[j])), bits);
    }
    out[r] = acc;
  }
}

void predict_row_portable(const std::int8_t* a, std::size_t k, const std::int64_t* basis,
                          std::size_t r0, std::size_t r1, std::int64_t* out) {
  for (std::size_t r = r0; r < r1; ++r) {
    const std::int8_t* arow = a + r * k;
    std::int64_t acc = 0;
    for (std::size_t kk = 0; kk < k; ++kk) {
      acc += static_cast<std::int64_t>(arow[kk]) * basis[kk];
    }
    out[r] = acc;
  }
}

#if REALM_X86

// ---------------------------------------------------------------------------
// AVX2 tier.
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) void col_sums_i8_avx2(const std::int8_t* m, std::size_t rows,
                                                      std::size_t cols, std::size_t j0,
                                                      std::size_t j1, std::int64_t* out) {
  std::size_t j = j0;
  for (; j + 16 <= j1; j += 16) {
    __m256i a0 = _mm256_setzero_si256(), a1 = a0, a2 = a0, a3 = a0;  // 4x4 int64
    std::size_t r = 0;
    while (r < rows) {
      const std::size_t re = std::min(rows, r + kI16Block);
      __m256i acc16 = _mm256_setzero_si256();  // 16 int16 lanes
      for (; r < re; ++r) {
        const __m128i v8 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(m + r * cols + j));
        acc16 = _mm256_add_epi16(acc16, _mm256_cvtepi8_epi16(v8));
      }
      const __m128i lo = _mm256_castsi256_si128(acc16);
      const __m128i hi = _mm256_extracti128_si256(acc16, 1);
      a0 = _mm256_add_epi64(a0, _mm256_cvtepi16_epi64(lo));
      a1 = _mm256_add_epi64(a1, _mm256_cvtepi16_epi64(_mm_srli_si128(lo, 8)));
      a2 = _mm256_add_epi64(a2, _mm256_cvtepi16_epi64(hi));
      a3 = _mm256_add_epi64(a3, _mm256_cvtepi16_epi64(_mm_srli_si128(hi, 8)));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + j), a0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + j + 4), a1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + j + 8), a2);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + j + 12), a3);
  }
  if (j < j1) col_sums_portable(m, rows, cols, j, j1, out);
}

__attribute__((target("avx2"))) void col_sums_i32_avx2(const std::int32_t* m, std::size_t rows,
                                                       std::size_t cols, std::size_t j0,
                                                       std::size_t j1, std::int64_t* out) {
  std::size_t j = j0;
  for (; j + 8 <= j1; j += 8) {
    __m256i a0 = _mm256_setzero_si256(), a1 = a0;
    for (std::size_t r = 0; r < rows; ++r) {
      const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(m + r * cols + j));
      a0 = _mm256_add_epi64(a0, _mm256_cvtepi32_epi64(_mm256_castsi256_si128(v)));
      a1 = _mm256_add_epi64(a1, _mm256_cvtepi32_epi64(_mm256_extracti128_si256(v, 1)));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + j), a0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + j + 4), a1);
  }
  if (j < j1) col_sums_portable(m, rows, cols, j, j1, out);
}

__attribute__((target("avx2"))) std::int64_t hsum_i64_avx2(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  const __m128i s = _mm_add_epi64(lo, hi);
  return _mm_cvtsi128_si64(s) + _mm_extract_epi64(s, 1);
}

__attribute__((target("avx2"))) void row_sums_i8_avx2(const std::int8_t* m, std::size_t cols,
                                                      std::size_t r0, std::size_t r1,
                                                      std::int64_t* out) {
  const __m256i bias = _mm256_set1_epi8(static_cast<char>(0x80));
  const __m256i zero = _mm256_setzero_si256();
  for (std::size_t r = r0; r < r1; ++r) {
    const std::int8_t* row = m + r * cols;
    __m256i acc = zero;  // 4 uint64 lanes of biased byte sums
    std::size_t j = 0;
    for (; j + 32 <= cols; j += 32) {
      const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + j));
      acc = _mm256_add_epi64(acc, _mm256_sad_epu8(_mm256_xor_si256(v, bias), zero));
    }
    std::int64_t sum = hsum_i64_avx2(acc) - 128 * static_cast<std::int64_t>(j);
    for (; j < cols; ++j) sum += row[j];
    out[r] = sum;
  }
}

__attribute__((target("avx2"))) void row_sums_i32_avx2(const std::int32_t* m, std::size_t cols,
                                                       std::size_t r0, std::size_t r1,
                                                       std::int64_t* out) {
  for (std::size_t r = r0; r < r1; ++r) {
    const std::int32_t* row = m + r * cols;
    __m256i acc = _mm256_setzero_si256();
    std::size_t j = 0;
    for (; j + 8 <= cols; j += 8) {
      const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + j));
      acc = _mm256_add_epi64(acc, _mm256_cvtepi32_epi64(_mm256_castsi256_si128(v)));
      acc = _mm256_add_epi64(acc, _mm256_cvtepi32_epi64(_mm256_extracti128_si256(v, 1)));
    }
    std::int64_t sum = hsum_i64_avx2(acc);
    for (; j < cols; ++j) sum += row[j];
    out[r] = sum;
  }
}

__attribute__((target("avx2"))) void predict_col_avx2(const std::int64_t* ea,
                                                      const std::int8_t* b, std::size_t k,
                                                      std::size_t n, std::size_t j0,
                                                      std::size_t j1, std::int64_t* out) {
  std::size_t j = j0;
  for (; j + 8 <= j1; j += 8) {
    __m256i acc_e = _mm256_setzero_si256();  // columns j+0,2,4,6
    __m256i acc_o = _mm256_setzero_si256();  // columns j+1,3,5,7
    for (std::size_t kk = 0; kk < k; ++kk) {
      const std::int64_t av = ea[kk];
      if (av == 0) continue;
      // vpmuldq sign-extends the low dword of each 64-bit lane; park av there.
      const __m256i avv = _mm256_set1_epi64x(
          static_cast<std::int64_t>(static_cast<std::uint32_t>(static_cast<std::int32_t>(av))));
      const __m128i b8 = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(b + kk * n + j));
      const __m256i b32 = _mm256_cvtepi8_epi32(b8);
      acc_e = _mm256_add_epi64(acc_e, _mm256_mul_epi32(b32, avv));
      acc_o = _mm256_add_epi64(acc_o, _mm256_mul_epi32(_mm256_srli_epi64(b32, 32), avv));
    }
    alignas(32) std::int64_t te[4], to[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(te), acc_e);
    _mm256_store_si256(reinterpret_cast<__m256i*>(to), acc_o);
    for (std::size_t t = 0; t < 4; ++t) {
      out[j + 2 * t] = te[t];
      out[j + 2 * t + 1] = to[t];
    }
  }
  if (j < j1) predict_col_portable(ea, b, k, n, j, j1, out);
}

__attribute__((target("avx2"))) void predict_row_avx2(const std::int8_t* a, std::size_t k,
                                                      const std::int32_t* basis32,
                                                      std::size_t r0, std::size_t r1,
                                                      std::int64_t* out) {
  for (std::size_t r = r0; r < r1; ++r) {
    const std::int8_t* arow = a + r * k;
    __m256i acc_e = _mm256_setzero_si256();
    __m256i acc_o = _mm256_setzero_si256();
    std::size_t kk = 0;
    for (; kk + 8 <= k; kk += 8) {
      const __m128i a8 = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(arow + kk));
      const __m256i a32 = _mm256_cvtepi8_epi32(a8);
      const __m256i b32 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(basis32 + kk));
      acc_e = _mm256_add_epi64(acc_e, _mm256_mul_epi32(a32, b32));
      acc_o = _mm256_add_epi64(
          acc_o, _mm256_mul_epi32(_mm256_srli_epi64(a32, 32), _mm256_srli_epi64(b32, 32)));
    }
    std::int64_t sum = hsum_i64_avx2(_mm256_add_epi64(acc_e, acc_o));
    for (; kk < k; ++kk) sum += static_cast<std::int64_t>(arow[kk]) * basis32[kk];
    out[r] = sum;
  }
}

// ---------------------------------------------------------------------------
// AVX-512 tier: same schemes at double width.
// ---------------------------------------------------------------------------

// Suppresses the GCC PR105593 -Wmaybe-uninitialized false positive from
// _mm512_mul_epi32's undefined-passthrough form; see src/util/compiler.h.
REALM_BEGIN_AVX512_SECTION

__attribute__((target("avx512f,avx512bw"))) void col_sums_i8_avx512(
    const std::int8_t* m, std::size_t rows, std::size_t cols, std::size_t j0, std::size_t j1,
    std::int64_t* out) {
  std::size_t j = j0;
  for (; j + 32 <= j1; j += 32) {
    __m512i a0 = _mm512_setzero_si512(), a1 = a0, a2 = a0, a3 = a0;  // 4x8 int64
    std::size_t r = 0;
    while (r < rows) {
      const std::size_t re = std::min(rows, r + kI16Block);
      __m512i acc16 = _mm512_setzero_si512();  // 32 int16 lanes
      for (; r < re; ++r) {
        const __m256i v8 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(m + r * cols + j));
        acc16 = _mm512_add_epi16(acc16, _mm512_cvtepi8_epi16(v8));
      }
      a0 = _mm512_add_epi64(a0, _mm512_cvtepi16_epi64(_mm512_extracti32x4_epi32(acc16, 0)));
      a1 = _mm512_add_epi64(a1, _mm512_cvtepi16_epi64(_mm512_extracti32x4_epi32(acc16, 1)));
      a2 = _mm512_add_epi64(a2, _mm512_cvtepi16_epi64(_mm512_extracti32x4_epi32(acc16, 2)));
      a3 = _mm512_add_epi64(a3, _mm512_cvtepi16_epi64(_mm512_extracti32x4_epi32(acc16, 3)));
    }
    _mm512_storeu_si512(out + j, a0);
    _mm512_storeu_si512(out + j + 8, a1);
    _mm512_storeu_si512(out + j + 16, a2);
    _mm512_storeu_si512(out + j + 24, a3);
  }
  if (j < j1) col_sums_i8_avx2(m, rows, cols, j, j1, out);
}

__attribute__((target("avx512f"))) void col_sums_i32_avx512(const std::int32_t* m,
                                                            std::size_t rows, std::size_t cols,
                                                            std::size_t j0, std::size_t j1,
                                                            std::int64_t* out) {
  std::size_t j = j0;
  for (; j + 16 <= j1; j += 16) {
    __m512i a0 = _mm512_setzero_si512(), a1 = a0;
    for (std::size_t r = 0; r < rows; ++r) {
      const __m512i v = _mm512_loadu_si512(m + r * cols + j);
      a0 = _mm512_add_epi64(a0, _mm512_cvtepi32_epi64(_mm512_castsi512_si256(v)));
      a1 = _mm512_add_epi64(a1, _mm512_cvtepi32_epi64(_mm512_extracti64x4_epi64(v, 1)));
    }
    _mm512_storeu_si512(out + j, a0);
    _mm512_storeu_si512(out + j + 8, a1);
  }
  if (j < j1) col_sums_i32_avx2(m, rows, cols, j, j1, out);
}

__attribute__((target("avx512f,avx512bw"))) void row_sums_i8_avx512(const std::int8_t* m,
                                                                    std::size_t cols,
                                                                    std::size_t r0,
                                                                    std::size_t r1,
                                                                    std::int64_t* out) {
  const __m512i bias = _mm512_set1_epi8(static_cast<char>(0x80));
  const __m512i zero = _mm512_setzero_si512();
  for (std::size_t r = r0; r < r1; ++r) {
    const std::int8_t* row = m + r * cols;
    __m512i acc = zero;  // 8 uint64 lanes of biased byte sums
    std::size_t j = 0;
    for (; j + 64 <= cols; j += 64) {
      const __m512i v = _mm512_loadu_si512(row + j);
      acc = _mm512_add_epi64(acc, _mm512_sad_epu8(_mm512_xor_si512(v, bias), zero));
    }
    std::int64_t sum = _mm512_reduce_add_epi64(acc) - 128 * static_cast<std::int64_t>(j);
    for (; j < cols; ++j) sum += row[j];
    out[r] = sum;
  }
}

__attribute__((target("avx512f"))) void row_sums_i32_avx512(const std::int32_t* m,
                                                            std::size_t cols, std::size_t r0,
                                                            std::size_t r1, std::int64_t* out) {
  for (std::size_t r = r0; r < r1; ++r) {
    const std::int32_t* row = m + r * cols;
    __m512i acc = _mm512_setzero_si512();
    std::size_t j = 0;
    for (; j + 16 <= cols; j += 16) {
      const __m512i v = _mm512_loadu_si512(row + j);
      acc = _mm512_add_epi64(acc, _mm512_cvtepi32_epi64(_mm512_castsi512_si256(v)));
      acc = _mm512_add_epi64(acc, _mm512_cvtepi32_epi64(_mm512_extracti64x4_epi64(v, 1)));
    }
    std::int64_t sum = _mm512_reduce_add_epi64(acc);
    for (; j < cols; ++j) sum += row[j];
    out[r] = sum;
  }
}

__attribute__((target("avx512f"))) void predict_col_avx512(const std::int64_t* ea,
                                                           const std::int8_t* b, std::size_t k,
                                                           std::size_t n, std::size_t j0,
                                                           std::size_t j1, std::int64_t* out) {
  std::size_t j = j0;
  for (; j + 16 <= j1; j += 16) {
    __m512i acc_e = _mm512_setzero_si512();  // columns j+0,2,...,14
    __m512i acc_o = _mm512_setzero_si512();  // columns j+1,3,...,15
    for (std::size_t kk = 0; kk < k; ++kk) {
      const std::int64_t av = ea[kk];
      if (av == 0) continue;
      const __m512i avv = _mm512_set1_epi64(
          static_cast<std::int64_t>(static_cast<std::uint32_t>(static_cast<std::int32_t>(av))));
      const __m128i b8 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + kk * n + j));
      const __m512i b32 = _mm512_cvtepi8_epi32(b8);
      acc_e = _mm512_add_epi64(acc_e, _mm512_mul_epi32(b32, avv));
      acc_o = _mm512_add_epi64(acc_o, _mm512_mul_epi32(_mm512_srli_epi64(b32, 32), avv));
    }
    alignas(64) std::int64_t te[8], to[8];
    _mm512_store_si512(te, acc_e);
    _mm512_store_si512(to, acc_o);
    for (std::size_t t = 0; t < 8; ++t) {
      out[j + 2 * t] = te[t];
      out[j + 2 * t + 1] = to[t];
    }
  }
  if (j < j1) predict_col_avx2(ea, b, k, n, j, j1, out);
}

__attribute__((target("avx512f"))) void predict_row_avx512(const std::int8_t* a, std::size_t k,
                                                           const std::int32_t* basis32,
                                                           std::size_t r0, std::size_t r1,
                                                           std::int64_t* out) {
  for (std::size_t r = r0; r < r1; ++r) {
    const std::int8_t* arow = a + r * k;
    __m512i acc_e = _mm512_setzero_si512();
    __m512i acc_o = _mm512_setzero_si512();
    std::size_t kk = 0;
    for (; kk + 16 <= k; kk += 16) {
      const __m128i a8 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(arow + kk));
      const __m512i a32 = _mm512_cvtepi8_epi32(a8);
      const __m512i b32 = _mm512_loadu_si512(basis32 + kk);
      acc_e = _mm512_add_epi64(acc_e, _mm512_mul_epi32(a32, b32));
      acc_o = _mm512_add_epi64(
          acc_o, _mm512_mul_epi32(_mm512_srli_epi64(a32, 32), _mm512_srli_epi64(b32, 32)));
    }
    std::int64_t sum = _mm512_reduce_add_epi64(_mm512_add_epi64(acc_e, acc_o));
    for (; kk < k; ++kk) sum += static_cast<std::int64_t>(arow[kk]) * basis32[kk];
    out[r] = sum;
  }
}

REALM_END_AVX512_SECTION

#endif  // REALM_X86

}  // namespace

// ---------------------------------------------------------------------------
// Public entry points: pick the tier once, shard, dispatch per chunk. Column
// reductions shard over column bands and row reductions over row ranges, so
// every output element is written by exactly one chunk — determinism at any
// thread count needs no merge step.
// ---------------------------------------------------------------------------

void col_sums_i8(const std::int8_t* m, std::size_t rows, std::size_t cols, std::int64_t* out) {
  if (cols == 0) return;
  const Tier t = active_tier();
  util::global_pool().parallel_for(cols, kColGrain, [&](std::size_t j0, std::size_t j1) {
#if REALM_X86
    if (t == Tier::kAvx512) {
      col_sums_i8_avx512(m, rows, cols, j0, j1, out);
      return;
    }
    if (t == Tier::kAvx2) {
      col_sums_i8_avx2(m, rows, cols, j0, j1, out);
      return;
    }
#else
    (void)t;
#endif
    col_sums_portable(m, rows, cols, j0, j1, out);
  });
}

void col_sums_i32(const std::int32_t* m, std::size_t rows, std::size_t cols,
                  std::int64_t* out) {
  if (cols == 0) return;
  const Tier t = active_tier();
  util::global_pool().parallel_for(cols, kColGrain, [&](std::size_t j0, std::size_t j1) {
#if REALM_X86
    if (t == Tier::kAvx512) {
      col_sums_i32_avx512(m, rows, cols, j0, j1, out);
      return;
    }
    if (t == Tier::kAvx2) {
      col_sums_i32_avx2(m, rows, cols, j0, j1, out);
      return;
    }
#else
    (void)t;
#endif
    col_sums_portable(m, rows, cols, j0, j1, out);
  });
}

void row_sums_i8(const std::int8_t* m, std::size_t rows, std::size_t cols, std::int64_t* out) {
  if (rows == 0) return;
  const Tier t = active_tier();
  util::global_pool().parallel_for(rows, kRowGrain, [&](std::size_t r0, std::size_t r1) {
#if REALM_X86
    if (t == Tier::kAvx512) {
      row_sums_i8_avx512(m, cols, r0, r1, out);
      return;
    }
    if (t == Tier::kAvx2) {
      row_sums_i8_avx2(m, cols, r0, r1, out);
      return;
    }
#else
    (void)t;
#endif
    row_sums_portable(m, cols, r0, r1, out);
  });
}

void row_sums_i32(const std::int32_t* m, std::size_t rows, std::size_t cols,
                  std::int64_t* out) {
  if (rows == 0) return;
  const Tier t = active_tier();
  util::global_pool().parallel_for(rows, kRowGrain, [&](std::size_t r0, std::size_t r1) {
#if REALM_X86
    if (t == Tier::kAvx512) {
      row_sums_i32_avx512(m, cols, r0, r1, out);
      return;
    }
    if (t == Tier::kAvx2) {
      row_sums_i32_avx2(m, cols, r0, r1, out);
      return;
    }
#else
    (void)t;
#endif
    row_sums_portable(m, cols, r0, r1, out);
  });
}

void weighted_col_sums_i8(const std::int8_t* m, std::size_t rows, std::size_t cols,
                          std::int64_t* out) {
  if (cols == 0) return;
  util::global_pool().parallel_for(cols, kColGrain, [&](std::size_t j0, std::size_t j1) {
    weighted_col_sums_portable(m, rows, cols, j0, j1, out);
  });
}

void weighted_col_sums_i32(const std::int32_t* m, std::size_t rows, std::size_t cols,
                           std::int64_t* out) {
  if (cols == 0) return;
  util::global_pool().parallel_for(cols, kColGrain, [&](std::size_t j0, std::size_t j1) {
    weighted_col_sums_portable(m, rows, cols, j0, j1, out);
  });
}

void weighted_row_sums_i8(const std::int8_t* m, std::size_t rows, std::size_t cols,
                          std::int64_t* out) {
  if (rows == 0) return;
  util::global_pool().parallel_for(rows, kRowGrain, [&](std::size_t r0, std::size_t r1) {
    weighted_row_sums_portable(m, cols, r0, r1, out);
  });
}

void weighted_row_sums_i32(const std::int32_t* m, std::size_t rows, std::size_t cols,
                           std::int64_t* out) {
  if (rows == 0) return;
  util::global_pool().parallel_for(rows, kRowGrain, [&](std::size_t r0, std::size_t r1) {
    weighted_row_sums_portable(m, cols, r0, r1, out);
  });
}

void col_sums_i32_width(const std::int32_t* m, std::size_t rows, std::size_t cols, int bits,
                        bool saturate, std::int64_t* out) {
  if (cols == 0) return;
  if (!saturate) {
    // Wrap is associative (exact mod 2^bits): reduce exactly with the SIMD
    // kernels, truncate each register value once.
    col_sums_i32(m, rows, cols, out);
    for (std::size_t j = 0; j < cols; ++j) out[j] = util::wrap_to_bits(out[j], bits);
    return;
  }
  util::global_pool().parallel_for(cols, kColGrain, [&](std::size_t j0, std::size_t j1) {
    col_sums_sat_portable(m, rows, cols, bits, j0, j1, out);
  });
}

void row_sums_i32_width(const std::int32_t* m, std::size_t rows, std::size_t cols, int bits,
                        bool saturate, std::int64_t* out) {
  if (rows == 0) return;
  if (!saturate) {
    row_sums_i32(m, rows, cols, out);
    for (std::size_t r = 0; r < rows; ++r) out[r] = util::wrap_to_bits(out[r], bits);
    return;
  }
  util::global_pool().parallel_for(rows, kRowGrain, [&](std::size_t r0, std::size_t r1) {
    row_sums_sat_portable(m, cols, bits, r0, r1, out);
  });
}

void predict_col_checksum(const std::int64_t* ea, const std::int8_t* b, std::size_t k,
                          std::size_t n, std::int64_t* out) {
  if (n == 0) return;
  Tier t = active_tier();
  if (t != Tier::kPortable && !all_fit_i32(ea, k)) t = Tier::kPortable;
  util::global_pool().parallel_for(n, kColGrain, [&](std::size_t j0, std::size_t j1) {
#if REALM_X86
    if (t == Tier::kAvx512) {
      predict_col_avx512(ea, b, k, n, j0, j1, out);
      return;
    }
    if (t == Tier::kAvx2) {
      predict_col_avx2(ea, b, k, n, j0, j1, out);
      return;
    }
#endif
    predict_col_portable(ea, b, k, n, j0, j1, out);
  });
}

void predict_row_checksum(const std::int8_t* a, std::size_t m, std::size_t k,
                          const std::int64_t* basis, std::int64_t* out) {
  if (m == 0) return;
  Tier t = active_tier();
#if REALM_X86
  // Widen the basis to int32 once per call; the per-element products then run
  // as vpmuldq. A basis entry outside int32 (matrices over 2^24 columns, or
  // an adversarial caller-supplied basis) forces the scalar path.
  std::vector<std::int32_t> basis32;
  if (t != Tier::kPortable && all_fit_i32(basis, k)) {
    basis32.resize(k);
    for (std::size_t kk = 0; kk < k; ++kk) basis32[kk] = static_cast<std::int32_t>(basis[kk]);
  } else {
    t = Tier::kPortable;
  }
#else
  t = Tier::kPortable;
#endif
  util::global_pool().parallel_for(m, kRowGrain, [&](std::size_t r0, std::size_t r1) {
#if REALM_X86
    if (t == Tier::kAvx512) {
      predict_row_avx512(a, k, basis32.data(), r0, r1, out);
      return;
    }
    if (t == Tier::kAvx2) {
      predict_row_avx2(a, k, basis32.data(), r0, r1, out);
      return;
    }
#endif
    predict_row_portable(a, k, basis, r0, r1, out);
  });
}

}  // namespace realm::tensor::kernels
