#include "tensor/checksum.h"

#include <stdexcept>

#include "tensor/checksum_kernels.h"
#include "util/bitmath.h"

namespace realm::tensor {

std::vector<std::int64_t> col_sums(const MatI8& m) {
  std::vector<std::int64_t> sums(m.cols());
  kernels::col_sums_i8(m.data(), m.rows(), m.cols(), sums.data());
  return sums;
}

std::vector<std::int64_t> col_sums(const MatI32& m) {
  std::vector<std::int64_t> sums(m.cols());
  kernels::col_sums_i32(m.data(), m.rows(), m.cols(), sums.data());
  return sums;
}

std::vector<std::int64_t> row_sums(const MatI8& m) {
  std::vector<std::int64_t> sums(m.rows());
  kernels::row_sums_i8(m.data(), m.rows(), m.cols(), sums.data());
  return sums;
}

std::vector<std::int64_t> row_sums(const MatI32& m) {
  std::vector<std::int64_t> sums(m.rows());
  kernels::row_sums_i32(m.data(), m.rows(), m.cols(), sums.data());
  return sums;
}

std::vector<std::int64_t> weighted_col_sums(const MatI8& m) {
  std::vector<std::int64_t> sums(m.cols());
  kernels::weighted_col_sums_i8(m.data(), m.rows(), m.cols(), sums.data());
  return sums;
}

std::vector<std::int64_t> weighted_col_sums(const MatI32& m) {
  std::vector<std::int64_t> sums(m.cols());
  kernels::weighted_col_sums_i32(m.data(), m.rows(), m.cols(), sums.data());
  return sums;
}

std::vector<std::int64_t> weighted_row_sums(const MatI8& m) {
  std::vector<std::int64_t> sums(m.rows());
  kernels::weighted_row_sums_i8(m.data(), m.rows(), m.cols(), sums.data());
  return sums;
}

std::vector<std::int64_t> weighted_row_sums(const MatI32& m) {
  std::vector<std::int64_t> sums(m.rows());
  kernels::weighted_row_sums_i32(m.data(), m.rows(), m.cols(), sums.data());
  return sums;
}

std::vector<std::int64_t> predict_col_checksum(const MatI8& a, const MatI8& b) {
  if (a.cols() != b.rows()) throw std::invalid_argument("predict_col_checksum: dim mismatch");
  const std::vector<std::int64_t> ea = col_sums(a);  // 1 x k
  std::vector<std::int64_t> out(b.cols());
  kernels::predict_col_checksum(ea.data(), b.data(), b.rows(), b.cols(), out.data());
  return out;
}

std::vector<std::int64_t> predict_row_checksum(const MatI8& a,
                                               const std::vector<std::int64_t>& b_row_basis) {
  if (a.cols() != b_row_basis.size()) {
    throw std::invalid_argument("predict_row_checksum: basis length mismatch");
  }
  std::vector<std::int64_t> out(a.rows());
  kernels::predict_row_checksum(a.data(), a.rows(), a.cols(), b_row_basis.data(), out.data());
  return out;
}

std::vector<std::int64_t> predict_row_checksum(const MatI8& a, const MatI8& b) {
  if (a.cols() != b.rows()) throw std::invalid_argument("predict_row_checksum: dim mismatch");
  return predict_row_checksum(a, row_sums(b));
}

ColumnDeviation column_deviation_from_predicted(const std::vector<std::int64_t>& predicted,
                                                const MatI32& c) {
  if (predicted.size() != c.cols()) {
    throw std::invalid_argument("column_deviation: checksum length mismatch");
  }
  ColumnDeviation dev;
  dev.diff.resize(c.cols());
  const std::vector<std::int64_t> observed = col_sums(c);
  // Saturating arithmetic throughout: a wrapped accumulator would alias a
  // huge deviation to a small one and mask exactly the bursts the MSD
  // statistic exists to expose (see bitmath.h).
  std::int64_t signed_sum = 0;
  std::uint64_t l1 = 0;
  for (std::size_t j = 0; j < c.cols(); ++j) {
    const std::int64_t d = util::sat_sub_i64(observed[j], predicted[j]);
    dev.diff[j] = d;
    signed_sum = util::sat_add_i64(signed_sum, d);
    l1 = util::sat_add_u64(l1, util::abs_u64(d));
  }
  dev.msd_signed = signed_sum;
  dev.msd_abs = util::abs_u64(signed_sum);
  dev.l1 = l1;
  return dev;
}

ColumnDeviation column_deviation(const MatI8& a, const MatI8& b, const MatI32& c) {
  return column_deviation_from_predicted(predict_col_checksum(a, b), c);
}

std::vector<std::int64_t> row_deviation(const MatI8& a, const MatI8& b, const MatI32& c) {
  const std::vector<std::int64_t> predicted = predict_row_checksum(a, b);
  const std::vector<std::int64_t> observed = row_sums(c);
  std::vector<std::int64_t> diff(predicted.size());
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    diff[i] = util::sat_sub_i64(observed[i], predicted[i]);
  }
  return diff;
}

}  // namespace realm::tensor
