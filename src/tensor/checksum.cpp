#include "tensor/checksum.h"

#include <stdexcept>

#include "util/bitmath.h"

namespace realm::tensor {

namespace {

template <typename T>
std::vector<std::int64_t> col_sums_impl(const Mat<T>& m) {
  std::vector<std::int64_t> sums(m.cols(), 0);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const T* row = m.data() + r * m.cols();
    for (std::size_t c = 0; c < m.cols(); ++c) sums[c] += static_cast<std::int64_t>(row[c]);
  }
  return sums;
}

template <typename T>
std::vector<std::int64_t> row_sums_impl(const Mat<T>& m) {
  std::vector<std::int64_t> sums(m.rows(), 0);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const T* row = m.data() + r * m.cols();
    std::int64_t acc = 0;
    for (std::size_t c = 0; c < m.cols(); ++c) acc += static_cast<std::int64_t>(row[c]);
    sums[r] = acc;
  }
  return sums;
}

}  // namespace

std::vector<std::int64_t> col_sums(const MatI8& m) { return col_sums_impl(m); }
std::vector<std::int64_t> col_sums(const MatI32& m) { return col_sums_impl(m); }
std::vector<std::int64_t> row_sums(const MatI8& m) { return row_sums_impl(m); }
std::vector<std::int64_t> row_sums(const MatI32& m) { return row_sums_impl(m); }

std::vector<std::int64_t> predict_col_checksum(const MatI8& a, const MatI8& b) {
  if (a.cols() != b.rows()) throw std::invalid_argument("predict_col_checksum: dim mismatch");
  const std::vector<std::int64_t> ea = col_sums(a);  // 1 x k
  std::vector<std::int64_t> out(b.cols(), 0);
  for (std::size_t kk = 0; kk < b.rows(); ++kk) {
    const std::int64_t av = ea[kk];
    if (av == 0) continue;
    const std::int8_t* brow = b.data() + kk * b.cols();
    for (std::size_t j = 0; j < b.cols(); ++j) out[j] += av * static_cast<std::int64_t>(brow[j]);
  }
  return out;
}

std::vector<std::int64_t> predict_row_checksum(const MatI8& a,
                                               const std::vector<std::int64_t>& b_row_basis) {
  if (a.cols() != b_row_basis.size()) {
    throw std::invalid_argument("predict_row_checksum: basis length mismatch");
  }
  std::vector<std::int64_t> out(a.rows(), 0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const std::int8_t* arow = a.data() + i * a.cols();
    std::int64_t acc = 0;
    for (std::size_t kk = 0; kk < a.cols(); ++kk) {
      acc += static_cast<std::int64_t>(arow[kk]) * b_row_basis[kk];
    }
    out[i] = acc;
  }
  return out;
}

std::vector<std::int64_t> predict_row_checksum(const MatI8& a, const MatI8& b) {
  if (a.cols() != b.rows()) throw std::invalid_argument("predict_row_checksum: dim mismatch");
  return predict_row_checksum(a, row_sums(b));
}

ColumnDeviation column_deviation_from_predicted(const std::vector<std::int64_t>& predicted,
                                                const MatI32& c) {
  if (predicted.size() != c.cols()) {
    throw std::invalid_argument("column_deviation: checksum length mismatch");
  }
  ColumnDeviation dev;
  dev.diff.resize(c.cols());
  const std::vector<std::int64_t> observed = col_sums(c);
  // Saturating arithmetic throughout: a wrapped accumulator would alias a
  // huge deviation to a small one and mask exactly the bursts the MSD
  // statistic exists to expose (see bitmath.h).
  std::int64_t signed_sum = 0;
  std::uint64_t l1 = 0;
  for (std::size_t j = 0; j < c.cols(); ++j) {
    const std::int64_t d = util::sat_sub_i64(observed[j], predicted[j]);
    dev.diff[j] = d;
    signed_sum = util::sat_add_i64(signed_sum, d);
    l1 = util::sat_add_u64(l1, util::abs_u64(d));
  }
  dev.msd_signed = signed_sum;
  dev.msd_abs = util::abs_u64(signed_sum);
  dev.l1 = l1;
  return dev;
}

ColumnDeviation column_deviation(const MatI8& a, const MatI8& b, const MatI32& c) {
  return column_deviation_from_predicted(predict_col_checksum(a, b), c);
}

std::vector<std::int64_t> row_deviation(const MatI8& a, const MatI8& b, const MatI32& c) {
  const std::vector<std::int64_t> predicted = predict_row_checksum(a, b);
  const std::vector<std::int64_t> observed = row_sums(c);
  std::vector<std::int64_t> diff(predicted.size());
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    diff[i] = util::sat_sub_i64(observed[i], predicted[i]);
  }
  return diff;
}

}  // namespace realm::tensor
