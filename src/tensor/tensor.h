// Minimal dense row-major matrix types used by the whole stack.
//
// The inference engine only ever needs rank-2 data (sequence x feature,
// feature x feature); a dedicated Mat<T> keeps indexing trivial and lets the
// GEMM kernels stay cache-friendly without a general strided-tensor layer.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace realm::tensor {

/// Dense row-major matrix. Throws on out-of-range construction; element
/// access is unchecked in release builds (hot path) but bounds-checked via
/// at().
template <typename T>
class Mat {
 public:
  Mat() = default;

  Mat(std::size_t rows, std::size_t cols, T fill = T{})
      : rows_(rows), cols_(cols), data_(checked_size(rows, cols), fill) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  T& operator()(std::size_t r, std::size_t c) noexcept { return data_[r * cols_ + c]; }
  const T& operator()(std::size_t r, std::size_t c) const noexcept { return data_[r * cols_ + c]; }

  T& at(std::size_t r, std::size_t c) {
    check(r, c);
    return data_[r * cols_ + c];
  }
  const T& at(std::size_t r, std::size_t c) const {
    check(r, c);
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<T> row(std::size_t r) noexcept {
    return std::span<T>(data_.data() + r * cols_, cols_);
  }
  [[nodiscard]] std::span<const T> row(std::size_t r) const noexcept {
    return std::span<const T>(data_.data() + r * cols_, cols_);
  }

  [[nodiscard]] std::span<T> flat() noexcept { return std::span<T>(data_); }
  [[nodiscard]] std::span<const T> flat() const noexcept { return std::span<const T>(data_); }

  T* data() noexcept { return data_.data(); }
  const T* data() const noexcept { return data_.data(); }

  void fill(T v) noexcept { std::fill(data_.begin(), data_.end(), v); }

  bool operator==(const Mat&) const = default;

 private:
  // Validated before data_ is constructed: the wrapped product must never
  // reach the allocator (a wrapped rows*cols would size a tiny buffer that
  // unchecked operator() then overruns).
  static std::size_t checked_size(std::size_t rows, std::size_t cols) {
    if (cols != 0 && rows > std::numeric_limits<std::size_t>::max() / cols) {
      throw std::invalid_argument("Mat: size overflow");
    }
    return rows * cols;
  }

  void check(std::size_t r, std::size_t c) const {
    if (r >= rows_ || c >= cols_) {
      throw std::out_of_range("Mat::at(" + std::to_string(r) + "," + std::to_string(c) +
                              ") of " + std::to_string(rows_) + "x" + std::to_string(cols_));
    }
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using MatF = Mat<float>;
using MatI8 = Mat<std::int8_t>;
using MatI32 = Mat<std::int32_t>;
using MatI64 = Mat<std::int64_t>;

/// Transpose (used for weight pre-packing and checksum identities in tests).
template <typename T>
[[nodiscard]] Mat<T> transpose(const Mat<T>& m) {
  Mat<T> out(m.cols(), m.rows());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) out(c, r) = m(r, c);
  }
  return out;
}

}  // namespace realm::tensor
