#include "tensor/gemm_kernels.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/compiler.h"
#include "util/threadpool.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define REALM_X86 1
#else
#define REALM_X86 0
#endif

namespace realm::tensor::kernels {

namespace {

// Microkernel footprints. The register budget drives the shapes: AVX-512 has
// 32 zmm registers, so an 8x32 tile holds 16 accumulators plus temporaries;
// AVX2's 16 ymm registers fit a 4x16 tile (8 accumulators).
constexpr std::size_t kMr512 = 8, kNr512 = 32;
constexpr std::size_t kMr256 = 4, kNr256 = 16;
/// Rows of A converted to int16 at a time; keeps the packed block L2-resident
/// even at the kMaxK inner dimension (64 rows x 2^16 x 2B = 8 MiB worst case,
/// 64 KiB for typical k).
constexpr std::size_t kRowBlock = 64;
/// parallel_for grain: at least one full microkernel tile of rows per chunk.
constexpr std::size_t kRowGrain = 8;

#if REALM_X86

std::size_t nr_for(Tier t) noexcept { return t == Tier::kAvx512 ? kNr512 : kNr256; }

// ---------------------------------------------------------------------------
// Packing. Both SIMD tiers consume the same layout: B split into column
// panels of width nr; within a panel, k-step pairs are interleaved and
// sign-extended to int16 so one vpmaddwd consumes two k-steps:
//   panel[kp][2*j]   = b(2kp,   j0+j)
//   panel[kp][2*j+1] = b(2kp+1, j0+j)   (0 past the k or n edge)
// ---------------------------------------------------------------------------

void pack_b_panels(const std::int8_t* b, std::size_t k, std::size_t n, std::size_t nr,
                   std::int16_t* out) {
  const std::size_t kpairs = (k + 1) / 2;
  const std::size_t panels = (n + nr - 1) / nr;
  for (std::size_t p = 0; p < panels; ++p) {
    const std::size_t j0 = p * nr;
    const std::size_t jw = std::min(nr, n - j0);
    std::int16_t* po = out + p * kpairs * 2 * nr;
    for (std::size_t kp = 0; kp < kpairs; ++kp) {
      const std::size_t k0 = 2 * kp;
      const std::int8_t* r0 = b + k0 * n;
      const std::int8_t* r1 = (k0 + 1 < k) ? r0 + n : nullptr;
      std::int16_t* dst = po + kp * 2 * nr;
      for (std::size_t j = 0; j < jw; ++j) {
        dst[2 * j] = r0[j0 + j];
        dst[2 * j + 1] = r1 ? r1[j0 + j] : std::int16_t{0};
      }
      for (std::size_t j = jw; j < nr; ++j) {
        dst[2 * j] = 0;
        dst[2 * j + 1] = 0;
      }
    }
  }
}

/// Same layout from B^T stored [n x k] row-major (gemm_i8_bt). Reads stream
/// along bt rows, writes stride through the panel.
void pack_bt_panels(const std::int8_t* bt, std::size_t k, std::size_t n, std::size_t nr,
                    std::int16_t* out) {
  const std::size_t kpairs = (k + 1) / 2;
  const std::size_t panels = (n + nr - 1) / nr;
  for (std::size_t p = 0; p < panels; ++p) {
    const std::size_t j0 = p * nr;
    const std::size_t jw = std::min(nr, n - j0);
    std::int16_t* po = out + p * kpairs * 2 * nr;
    for (std::size_t j = 0; j < jw; ++j) {
      const std::int8_t* row = bt + (j0 + j) * k;
      for (std::size_t kp = 0; kp < kpairs; ++kp) {
        std::int16_t* dst = po + kp * 2 * nr + 2 * j;
        dst[0] = row[2 * kp];
        dst[1] = (2 * kp + 1 < k) ? row[2 * kp + 1] : std::int16_t{0};
      }
    }
    for (std::size_t j = jw; j < nr; ++j) {
      for (std::size_t kp = 0; kp < kpairs; ++kp) {
        std::int16_t* dst = po + kp * 2 * nr + 2 * j;
        dst[0] = 0;
        dst[1] = 0;
      }
    }
  }
}

/// Sign-extend rows [i0, i1) of A to int16, zero-padding odd k to kpad.
void pack_a_i16(const std::int8_t* a, std::size_t k, std::size_t kpad, std::size_t i0,
                std::size_t i1, std::int16_t* out) {
  for (std::size_t i = i0; i < i1; ++i) {
    std::int16_t* dst = out + (i - i0) * kpad;
    const std::int8_t* src = a + i * k;
    for (std::size_t kk = 0; kk < k; ++kk) dst[kk] = src[kk];
    for (std::size_t kk = k; kk < kpad; ++kk) dst[kk] = 0;
  }
}

/// Broadcastable A pair (two adjacent int16 values) read without alignment or
/// aliasing UB; compiles to a single 32-bit load.
inline std::int32_t a_pair(const std::int16_t* p) noexcept {
  std::int32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

#endif  // REALM_X86

// ---------------------------------------------------------------------------
// Portable tier: the blocked scalar i-k-j loop (gcc/clang autovectorize the
// inner j loop). Also the reference the SIMD tiers are cross-checked against.
// ---------------------------------------------------------------------------

/// Fused eᵀC for the portable tier and the SIMD edge cases that already
/// spilled the tile to memory: fold finished C rows into the shard's partial
/// column sums (the rows are still cache-hot from the store).
void csum_rows(const std::int32_t* c, std::size_t n, std::size_t i0, std::size_t i1,
               std::int64_t* csum) {
  for (std::size_t i = i0; i < i1; ++i) {
    const std::int32_t* crow = c + i * n;
    for (std::size_t j = 0; j < n; ++j) csum[j] += crow[j];
  }
}

void portable_rows(const std::int8_t* a, const std::int8_t* b, std::int32_t* c, std::size_t k,
                   std::size_t n, std::size_t i0, std::size_t i1, std::int64_t* csum) {
  constexpr std::size_t kBlock = 64;
  std::memset(c + i0 * n, 0, (i1 - i0) * n * sizeof(std::int32_t));
  for (std::size_t kb = 0; kb < k; kb += kBlock) {
    const std::size_t ke = std::min(k, kb + kBlock);
    for (std::size_t i = i0; i < i1; ++i) {
      const std::int8_t* arow = a + i * k;
      std::int32_t* crow = c + i * n;
      for (std::size_t kk = kb; kk < ke; ++kk) {
        const std::int32_t av = arow[kk];
        if (av == 0) continue;
        const std::int8_t* brow = b + kk * n;
        for (std::size_t j = 0; j < n; ++j) crow[j] += av * static_cast<std::int32_t>(brow[j]);
      }
    }
  }
  if (csum) csum_rows(c, n, i0, i1, csum);
}

void portable_bt_rows(const std::int8_t* a, const std::int8_t* bt, std::int32_t* c,
                      std::size_t k, std::size_t n, std::size_t i0, std::size_t i1,
                      std::int64_t* csum) {
  // Dot-product form: both operands stream contiguously along k.
  for (std::size_t i = i0; i < i1; ++i) {
    const std::int8_t* arow = a + i * k;
    std::int32_t* crow = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const std::int8_t* brow = bt + j * k;
      std::int32_t acc = 0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc += static_cast<std::int32_t>(arow[kk]) * static_cast<std::int32_t>(brow[kk]);
      }
      crow[j] = acc;
    }
  }
  if (csum) csum_rows(c, n, i0, i1, csum);
}

#if REALM_X86

// ---------------------------------------------------------------------------
// AVX2 tier: 4x16 int32 accumulator tile, two vpmaddwd per A pair.
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) void kern_avx2_full(const std::int16_t* a16, std::size_t lda,
                                                    const std::int16_t* pb, std::size_t kpairs,
                                                    std::int32_t* c, std::size_t ldc,
                                                    std::int64_t* csum) {
  __m256i acc[kMr256][2];
  for (std::size_t r = 0; r < kMr256; ++r) {
    acc[r][0] = _mm256_setzero_si256();
    acc[r][1] = _mm256_setzero_si256();
  }
  for (std::size_t kp = 0; kp < kpairs; ++kp) {
    const __m256i b0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pb + kp * 2 * kNr256));
    const __m256i b1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pb + kp * 2 * kNr256 + 16));
    for (std::size_t r = 0; r < kMr256; ++r) {
      const __m256i av = _mm256_set1_epi32(a_pair(a16 + r * lda + 2 * kp));
      acc[r][0] = _mm256_add_epi32(acc[r][0], _mm256_madd_epi16(av, b0));
      acc[r][1] = _mm256_add_epi32(acc[r][1], _mm256_madd_epi16(av, b1));
    }
  }
  for (std::size_t r = 0; r < kMr256; ++r) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + r * ldc), acc[r][0]);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + r * ldc + 8), acc[r][1]);
  }
  if (csum) {
    // Fused eᵀC: fold the tile's rows into per-column int64 sums straight
    // from the accumulator registers (int32 row sums could overflow: four
    // values of magnitude 2^30 exceed int32, so widen before the row fold).
    for (std::size_t h = 0; h < 2; ++h) {
      __m256i lo = _mm256_setzero_si256(), hi = _mm256_setzero_si256();
      for (std::size_t r = 0; r < kMr256; ++r) {
        lo = _mm256_add_epi64(lo, _mm256_cvtepi32_epi64(_mm256_castsi256_si128(acc[r][h])));
        hi = _mm256_add_epi64(hi,
                              _mm256_cvtepi32_epi64(_mm256_extracti128_si256(acc[r][h], 1)));
      }
      std::int64_t* cs = csum + h * 8;
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(cs),
          _mm256_add_epi64(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(cs)), lo));
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(cs + 4),
          _mm256_add_epi64(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(cs + 4)), hi));
    }
  }
}

__attribute__((target("avx2"))) void kern_avx2_edge(const std::int16_t* a16, std::size_t lda,
                                                    const std::int16_t* pb, std::size_t kpairs,
                                                    std::int32_t* c, std::size_t ldc,
                                                    std::size_t mr, std::size_t jw,
                                                    std::int64_t* csum) {
  __m256i acc[kMr256][2];
  for (std::size_t r = 0; r < mr; ++r) {
    acc[r][0] = _mm256_setzero_si256();
    acc[r][1] = _mm256_setzero_si256();
  }
  for (std::size_t kp = 0; kp < kpairs; ++kp) {
    const __m256i b0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pb + kp * 2 * kNr256));
    const __m256i b1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pb + kp * 2 * kNr256 + 16));
    for (std::size_t r = 0; r < mr; ++r) {
      const __m256i av = _mm256_set1_epi32(a_pair(a16 + r * lda + 2 * kp));
      acc[r][0] = _mm256_add_epi32(acc[r][0], _mm256_madd_epi16(av, b0));
      acc[r][1] = _mm256_add_epi32(acc[r][1], _mm256_madd_epi16(av, b1));
    }
  }
  alignas(32) std::int32_t tmp[kNr256];
  for (std::size_t r = 0; r < mr; ++r) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), acc[r][0]);
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp + 8), acc[r][1]);
    std::memcpy(c + r * ldc, tmp, jw * sizeof(std::int32_t));
    if (csum) {
      for (std::size_t j = 0; j < jw; ++j) csum[j] += tmp[j];
    }
  }
}

__attribute__((target("avx2"))) void avx2_rows(const std::int8_t* a, const std::int16_t* pb,
                                               std::int32_t* c, std::size_t k, std::size_t n,
                                               std::size_t i0, std::size_t i1,
                                               std::int64_t* csum) {
  const std::size_t kpairs = (k + 1) / 2;
  const std::size_t kpad = 2 * kpairs;
  const std::size_t panels = (n + kNr256 - 1) / kNr256;
  std::vector<std::int16_t> a16(std::min(kRowBlock, i1 - i0) * kpad);
  for (std::size_t ib = i0; ib < i1; ib += kRowBlock) {
    const std::size_t ie = std::min(i1, ib + kRowBlock);
    pack_a_i16(a, k, kpad, ib, ie, a16.data());
    for (std::size_t p = 0; p < panels; ++p) {
      const std::size_t j0 = p * kNr256;
      const std::size_t jw = std::min(kNr256, n - j0);
      const std::int16_t* pbp = pb + p * kpairs * 2 * kNr256;
      for (std::size_t i = ib; i < ie; i += kMr256) {
        const std::size_t mr = std::min(kMr256, ie - i);
        const std::int16_t* arows = a16.data() + (i - ib) * kpad;
        std::int32_t* crows = c + i * n + j0;
        std::int64_t* cs = csum ? csum + j0 : nullptr;
        if (mr == kMr256 && jw == kNr256) {
          kern_avx2_full(arows, kpad, pbp, kpairs, crows, n, cs);
        } else {
          kern_avx2_edge(arows, kpad, pbp, kpairs, crows, n, mr, jw, cs);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// AVX-512 tier: 8x32 tile, same scheme at double width.
// ---------------------------------------------------------------------------

// Suppresses the GCC PR105593 -Wmaybe-uninitialized false positive from the
// vpmovsxdq widening in the fused store phase; see src/util/compiler.h.
REALM_BEGIN_AVX512_SECTION

__attribute__((target("avx512f,avx512bw"))) void kern_avx512_full(
    const std::int16_t* a16, std::size_t lda, const std::int16_t* pb, std::size_t kpairs,
    std::int32_t* c, std::size_t ldc, std::int64_t* csum) {
  __m512i acc[kMr512][2];
  for (std::size_t r = 0; r < kMr512; ++r) {
    acc[r][0] = _mm512_setzero_si512();
    acc[r][1] = _mm512_setzero_si512();
  }
  for (std::size_t kp = 0; kp < kpairs; ++kp) {
    const __m512i b0 = _mm512_loadu_si512(pb + kp * 2 * kNr512);
    const __m512i b1 = _mm512_loadu_si512(pb + kp * 2 * kNr512 + 32);
#pragma GCC unroll 8
    for (std::size_t r = 0; r < kMr512; ++r) {
      const __m512i av = _mm512_set1_epi32(a_pair(a16 + r * lda + 2 * kp));
      acc[r][0] = _mm512_add_epi32(acc[r][0], _mm512_madd_epi16(av, b0));
      acc[r][1] = _mm512_add_epi32(acc[r][1], _mm512_madd_epi16(av, b1));
    }
  }
  for (std::size_t r = 0; r < kMr512; ++r) {
    _mm512_storeu_si512(c + r * ldc, acc[r][0]);
    _mm512_storeu_si512(c + r * ldc + 16, acc[r][1]);
  }
  if (csum) {
    // Fused eᵀC from the register tile; widen to int64 before the row fold
    // (eight int32 values of magnitude 2^30 overflow an int32 sum).
    for (std::size_t h = 0; h < 2; ++h) {
      __m512i lo = _mm512_setzero_si512(), hi = _mm512_setzero_si512();
      for (std::size_t r = 0; r < kMr512; ++r) {
        lo = _mm512_add_epi64(lo, _mm512_cvtepi32_epi64(_mm512_castsi512_si256(acc[r][h])));
        hi = _mm512_add_epi64(hi,
                              _mm512_cvtepi32_epi64(_mm512_extracti64x4_epi64(acc[r][h], 1)));
      }
      std::int64_t* cs = csum + h * 16;
      _mm512_storeu_si512(cs, _mm512_add_epi64(_mm512_loadu_si512(cs), lo));
      _mm512_storeu_si512(cs + 8, _mm512_add_epi64(_mm512_loadu_si512(cs + 8), hi));
    }
  }
}

__attribute__((target("avx512f,avx512bw"))) void kern_avx512_edge(
    const std::int16_t* a16, std::size_t lda, const std::int16_t* pb, std::size_t kpairs,
    std::int32_t* c, std::size_t ldc, std::size_t mr, std::size_t jw, std::int64_t* csum) {
  __m512i acc[kMr512][2];
  for (std::size_t r = 0; r < mr; ++r) {
    acc[r][0] = _mm512_setzero_si512();
    acc[r][1] = _mm512_setzero_si512();
  }
  for (std::size_t kp = 0; kp < kpairs; ++kp) {
    const __m512i b0 = _mm512_loadu_si512(pb + kp * 2 * kNr512);
    const __m512i b1 = _mm512_loadu_si512(pb + kp * 2 * kNr512 + 32);
    for (std::size_t r = 0; r < mr; ++r) {
      const __m512i av = _mm512_set1_epi32(a_pair(a16 + r * lda + 2 * kp));
      acc[r][0] = _mm512_add_epi32(acc[r][0], _mm512_madd_epi16(av, b0));
      acc[r][1] = _mm512_add_epi32(acc[r][1], _mm512_madd_epi16(av, b1));
    }
  }
  alignas(64) std::int32_t tmp[kNr512];
  for (std::size_t r = 0; r < mr; ++r) {
    _mm512_store_si512(tmp, acc[r][0]);
    _mm512_store_si512(tmp + 16, acc[r][1]);
    std::memcpy(c + r * ldc, tmp, jw * sizeof(std::int32_t));
    if (csum) {
      for (std::size_t j = 0; j < jw; ++j) csum[j] += tmp[j];
    }
  }
}

__attribute__((target("avx512f,avx512bw"))) void avx512_rows(const std::int8_t* a,
                                                             const std::int16_t* pb,
                                                             std::int32_t* c, std::size_t k,
                                                             std::size_t n, std::size_t i0,
                                                             std::size_t i1,
                                                             std::int64_t* csum) {
  const std::size_t kpairs = (k + 1) / 2;
  const std::size_t kpad = 2 * kpairs;
  const std::size_t panels = (n + kNr512 - 1) / kNr512;
  std::vector<std::int16_t> a16(std::min(kRowBlock, i1 - i0) * kpad);
  for (std::size_t ib = i0; ib < i1; ib += kRowBlock) {
    const std::size_t ie = std::min(i1, ib + kRowBlock);
    pack_a_i16(a, k, kpad, ib, ie, a16.data());
    for (std::size_t p = 0; p < panels; ++p) {
      const std::size_t j0 = p * kNr512;
      const std::size_t jw = std::min(kNr512, n - j0);
      const std::int16_t* pbp = pb + p * kpairs * 2 * kNr512;
      for (std::size_t i = ib; i < ie; i += kMr512) {
        const std::size_t mr = std::min(kMr512, ie - i);
        const std::int16_t* arows = a16.data() + (i - ib) * kpad;
        std::int32_t* crows = c + i * n + j0;
        std::int64_t* cs = csum ? csum + j0 : nullptr;
        if (mr == kMr512 && jw == kNr512) {
          kern_avx512_full(arows, kpad, pbp, kpairs, crows, n, cs);
        } else {
          kern_avx512_edge(arows, kpad, pbp, kpairs, crows, n, mr, jw, cs);
        }
      }
    }
  }
}

REALM_END_AVX512_SECTION

#endif  // REALM_X86

// ---------------------------------------------------------------------------
// Dispatch state.
// ---------------------------------------------------------------------------

Tier detect_best() noexcept {
#if REALM_X86
  // __builtin_cpu_supports consults libgcc's CPUID+XGETBV probe, so OS
  // state-save support for ymm/zmm is already folded in.
  if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512bw")) {
    return Tier::kAvx512;
  }
  if (__builtin_cpu_supports("avx2")) return Tier::kAvx2;
#endif
  return Tier::kPortable;
}

Tier initial_tier() noexcept {
  const Tier best = best_supported_tier();
  // NOLINTNEXTLINE(concurrency-mt-unsafe) — read once during tier_slot()'s static init
  if (const char* env = std::getenv("REALM_KERNEL")) {
    const std::string v(env);
    if (v == "portable") return Tier::kPortable;
    if (v == "avx2" && best >= Tier::kAvx2) return Tier::kAvx2;
    if (v == "avx512" && best >= Tier::kAvx512) return Tier::kAvx512;
    // An override that silently fell back would let a user attribute fast-path
    // numbers to the tier they typed; say what actually happens.
    std::fprintf(stderr,
                 "realm: REALM_KERNEL=%s %s; using \"%s\"\n", env,
                 (v == "portable" || v == "avx2" || v == "avx512")
                     ? "is not supported by this CPU"
                     : "is not a known tier (portable|avx2|avx512)",
                 to_string(best));
  }
  return best;
}

std::atomic<Tier>& tier_slot() {
  static std::atomic<Tier> slot{initial_tier()};
  return slot;
}

/// Row-shard `rows(i0, i1, shard_csum)` across the global pool. With a fused
/// `csum` requested, each shard reduces into a private partial merged under a
/// lock — int64 addition is associative and commutative, so the merged sums
/// are bit-identical at every thread count and merge order.
///
/// With `wcsum` also requested, the weighted reduction uᵀC (u = [1,2,3,…]) is
/// folded at shard granularity right after the shard's kernel finishes: the C
/// rows it just stored are still cache-hot, and the row weight (i+1) depends
/// only on the global row index, so shard partials merge exactly like the
/// plain sums — bit-identical at every tier and thread count.
template <typename Rows>
void shard_rows_fused(std::size_t m, std::size_t n, const std::int32_t* c, std::int64_t* csum,
                      std::int64_t* wcsum, const Rows& rows) {
  if (!csum && !wcsum) {
    util::global_pool().parallel_for(
        m, kRowGrain, [&](std::size_t i0, std::size_t i1) { rows(i0, i1, nullptr); });
    return;
  }
  std::mutex mu;
  util::global_pool().parallel_for(m, kRowGrain, [&](std::size_t i0, std::size_t i1) {
    std::vector<std::int64_t> local(csum ? n : 0, 0);
    rows(i0, i1, csum ? local.data() : nullptr);
    std::vector<std::int64_t> wlocal(wcsum ? n : 0, 0);
    if (wcsum) {
      for (std::size_t i = i0; i < i1; ++i) {
        const std::int32_t* crow = c + i * n;
        const auto w = static_cast<std::int64_t>(i + 1);
        for (std::size_t j = 0; j < n; ++j) wlocal[j] += w * static_cast<std::int64_t>(crow[j]);
      }
    }
    const std::lock_guard<std::mutex> lock(mu);
    if (csum) {
      for (std::size_t j = 0; j < n; ++j) csum[j] += local[j];
    }
    if (wcsum) {
      for (std::size_t j = 0; j < n; ++j) wcsum[j] += wlocal[j];
    }
  });
}

#if REALM_X86
/// Row-shard the macro-loop over already-packed panels.
void run_simd_rows(Tier t, const std::int8_t* a, const std::int16_t* pb, std::int32_t* c,
                   std::size_t m, std::size_t k, std::size_t n, std::int64_t* csum,
                   std::int64_t* wcsum) {
  shard_rows_fused(m, n, c, csum, wcsum, [&](std::size_t i0, std::size_t i1, std::int64_t* cs) {
    if (t == Tier::kAvx512) {
      avx512_rows(a, pb, c, k, n, i0, i1, cs);
    } else {
      avx2_rows(a, pb, c, k, n, i0, i1, cs);
    }
  });
}
#endif

/// Shared SIMD driver for both storage orders of B: pack B once (serial,
/// O(k*n)), then row-shard the macro-loop across the global pool.
void gemm_simd(Tier t, const std::int8_t* a, const std::int8_t* b, std::int32_t* c,
               std::size_t m, std::size_t k, std::size_t n, bool b_transposed,
               std::int64_t* csum, std::int64_t* wcsum) {
#if REALM_X86
  const std::size_t nr = nr_for(t);
  const std::size_t kpairs = (k + 1) / 2;
  const std::size_t panels = (n + nr - 1) / nr;
  std::vector<std::int16_t> pb(panels * kpairs * 2 * nr);
  if (b_transposed) {
    pack_bt_panels(b, k, n, nr, pb.data());
  } else {
    pack_b_panels(b, k, n, nr, pb.data());
  }
  run_simd_rows(t, a, pb.data(), c, m, k, n, csum, wcsum);
#else
  (void)t;
  shard_rows_fused(m, n, c, csum, wcsum, [&](std::size_t i0, std::size_t i1, std::int64_t* cs) {
    if (b_transposed) {
      portable_bt_rows(a, b, c, k, n, i0, i1, cs);
    } else {
      portable_rows(a, b, c, k, n, i0, i1, cs);
    }
  });
#endif
}

}  // namespace

const char* to_string(Tier t) noexcept {
  switch (t) {
    case Tier::kPortable: return "portable";
    case Tier::kAvx2: return "avx2";
    case Tier::kAvx512: return "avx512";
  }
  return "?";
}

Tier best_supported_tier() noexcept {
  static const Tier best = detect_best();
  return best;
}

Tier active_tier() noexcept { return tier_slot().load(std::memory_order_relaxed); }

void set_active_tier(Tier t) {
  if (t > best_supported_tier()) {
    throw std::invalid_argument(std::string("kernels: tier ") + to_string(t) +
                                " not supported by this CPU");
  }
  tier_slot().store(t, std::memory_order_relaxed);
}

void gemm_i8(const std::int8_t* a, const std::int8_t* b, std::int32_t* c, std::size_t m,
             std::size_t k, std::size_t n, std::int64_t* col_sums, std::int64_t* wcol_sums) {
  if (col_sums) std::fill_n(col_sums, n, std::int64_t{0});
  if (wcol_sums) std::fill_n(wcol_sums, n, std::int64_t{0});
  if (m == 0 || n == 0) return;
  if (k == 0) {
    std::memset(c, 0, m * n * sizeof(std::int32_t));
    return;
  }
  const Tier t = active_tier();
  if (t == Tier::kPortable) {
    shard_rows_fused(m, n, c, col_sums, wcol_sums,
                     [&](std::size_t i0, std::size_t i1, std::int64_t* cs) {
                       portable_rows(a, b, c, k, n, i0, i1, cs);
                     });
    return;
  }
  gemm_simd(t, a, b, c, m, k, n, /*b_transposed=*/false, col_sums, wcol_sums);
}

PackedB pack_b(const std::int8_t* b, std::size_t k, std::size_t n) {
  PackedB p;
  p.tier_ = active_tier();
  p.k_ = k;
  p.n_ = n;
#if REALM_X86
  if (p.tier_ != Tier::kPortable && k > 0 && n > 0) {
    const std::size_t nr = nr_for(p.tier_);
    const std::size_t kpairs = (k + 1) / 2;
    const std::size_t panels = (n + nr - 1) / nr;
    p.panels_.resize(panels * kpairs * 2 * nr);
    pack_b_panels(b, k, n, nr, p.panels_.data());
  }
#else
  (void)b;
#endif
  return p;
}

void gemm_i8_prepacked(const std::int8_t* a, const std::int8_t* b, const PackedB& pb,
                       std::int32_t* c, std::size_t m, std::size_t k, std::size_t n,
                       std::int64_t* col_sums, std::int64_t* wcol_sums) {
  if (m == 0 || n == 0) {
    if (col_sums) std::fill_n(col_sums, n, std::int64_t{0});
    if (wcol_sums) std::fill_n(wcol_sums, n, std::int64_t{0});
    return;
  }
#if REALM_X86
  const Tier t = active_tier();
  if (k > 0 && t != Tier::kPortable && pb.valid_for(t, k, n)) {
    if (col_sums) std::fill_n(col_sums, n, std::int64_t{0});
    if (wcol_sums) std::fill_n(wcol_sums, n, std::int64_t{0});
    run_simd_rows(t, a, pb.panels_.data(), c, m, k, n, col_sums, wcol_sums);
    return;
  }
#else
  (void)pb;
#endif
  gemm_i8(a, b, c, m, k, n, col_sums, wcol_sums);
}

void gemm_i8_bt(const std::int8_t* a, const std::int8_t* bt, std::int32_t* c, std::size_t m,
                std::size_t k, std::size_t n, std::int64_t* col_sums,
                std::int64_t* wcol_sums) {
  if (col_sums) std::fill_n(col_sums, n, std::int64_t{0});
  if (wcol_sums) std::fill_n(wcol_sums, n, std::int64_t{0});
  if (m == 0 || n == 0) return;
  if (k == 0) {
    std::memset(c, 0, m * n * sizeof(std::int32_t));
    return;
  }
  const Tier t = active_tier();
  if (t == Tier::kPortable) {
    shard_rows_fused(m, n, c, col_sums, wcol_sums,
                     [&](std::size_t i0, std::size_t i1, std::int64_t* cs) {
                       portable_bt_rows(a, bt, c, k, n, i0, i1, cs);
                     });
    return;
  }
  gemm_simd(t, a, bt, c, m, k, n, /*b_transposed=*/true, col_sums, wcol_sums);
}

}  // namespace realm::tensor::kernels
