// Symmetric per-tensor INT8 quantization, following the SmoothQuant-style W8A8
// scheme the paper adopts (Sec. II-A): GEMM inputs are INT8, accumulators are
// INT32, nonlinearities run in float.
//
// Scales are *static* (calibrated on a fault-free run) rather than dynamic.
// This is both what production W8A8 serving does and load-bearing for the
// paper's bit-wise resilience insight (Q1.2): a corrupted activation cannot
// inflate its own scale, so high-bit errors saturate at clamp on
// re-quantization.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <stdexcept>

#include "tensor/tensor.h"

namespace realm::tensor {

/// Scale for symmetric quantization: real = q * scale, q in [-127, 127].
struct QuantParams {
  float scale = 1.0f;

  [[nodiscard]] std::int8_t quantize(float x) const noexcept {
    const float q = std::nearbyint(x / scale);
    if (q > 127.0f) return 127;
    if (q < -127.0f) return -127;
    return static_cast<std::int8_t>(q);
  }

  [[nodiscard]] float dequantize(std::int8_t q) const noexcept {
    return static_cast<float>(q) * scale;
  }
};

/// Calibrate a symmetric scale from the max absolute value of a sample.
/// A floor avoids degenerate zero scales for all-zero tensors.
[[nodiscard]] QuantParams calibrate(std::span<const float> sample, float max_abs_floor = 1e-6f);

/// Quantize a float matrix with the given (pre-calibrated) parameters.
[[nodiscard]] MatI8 quantize(const MatF& x, QuantParams qp);

/// Dequantize an INT32 accumulator matrix: real = acc * (scale_a * scale_b).
[[nodiscard]] MatF dequantize_acc(const MatI32& acc, QuantParams a, QuantParams b);

/// Into-variant for steady-state serving: `out` is resized if mis-shaped and
/// fully overwritten, so a recycled buffer pays no allocation or page-fault
/// cost per call.
void dequantize_acc(const MatI32& acc, QuantParams a, QuantParams b, MatF& out);

/// Dequantize an INT8 matrix.
[[nodiscard]] MatF dequantize(const MatI8& q, QuantParams qp);

/// Requantize an INT32 GEMM result directly to INT8 with an output scale,
/// i.e. round(acc * (sa*sb) / s_out) clamped to [-127,127]. This models the
/// accelerator's output-stage requantizer, the saturation point of Q1.2.
[[nodiscard]] MatI8 requantize_acc(const MatI32& acc, QuantParams a, QuantParams b,
                                   QuantParams out);

}  // namespace realm::tensor
