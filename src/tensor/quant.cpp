#include "tensor/quant.h"

#include <algorithm>

namespace realm::tensor {

QuantParams calibrate(std::span<const float> sample, float max_abs_floor) {
  float max_abs = max_abs_floor;
  for (const float x : sample) max_abs = std::max(max_abs, std::abs(x));
  return QuantParams{max_abs / 127.0f};
}

MatI8 quantize(const MatF& x, QuantParams qp) {
  MatI8 out(x.rows(), x.cols());
  const auto src = x.flat();
  const auto dst = out.flat();
  for (std::size_t i = 0; i < src.size(); ++i) dst[i] = qp.quantize(src[i]);
  return out;
}

MatF dequantize(const MatI8& q, QuantParams qp) {
  MatF out(q.rows(), q.cols());
  const auto src = q.flat();
  const auto dst = out.flat();
  for (std::size_t i = 0; i < src.size(); ++i) dst[i] = qp.dequantize(src[i]);
  return out;
}

MatF dequantize_acc(const MatI32& acc, QuantParams a, QuantParams b) {
  MatF out;
  dequantize_acc(acc, a, b, out);
  return out;
}

void dequantize_acc(const MatI32& acc, QuantParams a, QuantParams b, MatF& out) {
  if (out.rows() != acc.rows() || out.cols() != acc.cols()) out = MatF(acc.rows(), acc.cols());
  const float s = a.scale * b.scale;
  const auto src = acc.flat();
  const auto dst = out.flat();
  for (std::size_t i = 0; i < src.size(); ++i) dst[i] = static_cast<float>(src[i]) * s;
}

MatI8 requantize_acc(const MatI32& acc, QuantParams a, QuantParams b, QuantParams out_qp) {
  MatI8 out(acc.rows(), acc.cols());
  const float s = a.scale * b.scale / out_qp.scale;
  const auto src = acc.flat();
  const auto dst = out.flat();
  for (std::size_t i = 0; i < src.size(); ++i) {
    const float q = std::nearbyint(static_cast<float>(src[i]) * s);
    dst[i] = static_cast<std::int8_t>(std::clamp(q, -127.0f, 127.0f));
  }
  return out;
}

}  // namespace realm::tensor
