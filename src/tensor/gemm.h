// GEMM kernels: INT8 x INT8 -> INT32 (the accelerator datapath under test)
// plus an FP32 reference. The integer kernel is the single hot loop of the
// repository; it is blocked for L1 reuse but deliberately scalar — results
// must be bit-exact and deterministic across machines because fault-injection
// compares accumulators bit by bit.
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace realm::tensor {

/// C[m x n] = A[m x k] * B[k x n], int8 inputs, int32 accumulation.
/// INT32 cannot overflow for k <= 2^17 with int8 operands (127*127*k < 2^31),
/// which every model configuration in this repo satisfies; an assert guards
/// the bound in debug builds.
void gemm_i8(const MatI8& a, const MatI8& b, MatI32& c);

/// Convenience allocating overload.
[[nodiscard]] MatI32 gemm_i8(const MatI8& a, const MatI8& b);

/// C[m x n] = A[m x k] * B^T where bt is stored [n x k] (row-major). Used for
/// attention scores Q*K^T where K rows are cache entries.
void gemm_i8_bt(const MatI8& a, const MatI8& bt, MatI32& c);
[[nodiscard]] MatI32 gemm_i8_bt(const MatI8& a, const MatI8& bt);

/// FP32 reference GEMM (tests and golden comparisons only).
[[nodiscard]] MatF gemm_f32(const MatF& a, const MatF& b);

}  // namespace realm::tensor
