// GEMM entry points: INT8 x INT8 -> INT32 (the accelerator datapath under
// test) plus an FP32 reference. The integer variants validate shapes and the
// overflow bound here, then route through tensor::kernels — the tiered
// SIMD/portable implementations with runtime CPU dispatch and row-sharded
// threading (see gemm_kernels.h). Every tier and every thread count produces
// bit-identical results, because fault injection compares accumulators bit by
// bit: a scheduling- or ISA-dependent output would be indistinguishable from
// the faults this repository exists to detect.
//
// Output contract (identical for gemm_i8 and gemm_i8_bt): `c` is resized if
// mis-shaped, then FULLY OVERWRITTEN without ever being read — callers never
// need to zero it. (Before the kernel layer, gemm_i8 zero-filled `c` and
// accumulated while gemm_i8_bt overwrote; the asymmetry is gone.)
//
// Each variant optionally emits the fused eᵀC column reduction: pass
// `fused_col_sums` and it is resized to n and filled with col_sums of the C
// this call writes, accumulated in the kernels' store phase (no second pass
// over C). Bit-identical to tensor::col_sums(c) at every tier/thread count.
// `fused_wcol_sums` likewise emits the weighted uᵀC reduction (u = [1,2,…]),
// the second ABFT checksum basis — bit-identical to weighted_col_sums(c).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/gemm_kernels.h"
#include "tensor/tensor.h"

namespace realm::tensor {

/// Largest inner dimension for which int8 x int8 -> int32 accumulation cannot
/// overflow for ANY int8 operands: worst case is (-128)*(-128)*k = 2^14*k,
/// and 2^14 * 2^16 = 2^30 < 2^31 - 1, while 2^14 * 2^17 = 2^31 overflows.
/// (Quantizer-produced operands clamp to ±127 and would be safe to 2^17, but
/// raw MatI8 can hold -128, so the bound must cover it.) All gemm_i8 variants
/// throw std::invalid_argument beyond this bound, in release builds too.
inline constexpr std::size_t kMaxK = std::size_t{1} << 16;

/// C[m x n] = A[m x k] * B[k x n], int8 inputs, int32 accumulation.
/// Throws std::invalid_argument if k > kMaxK.
void gemm_i8(const MatI8& a, const MatI8& b, MatI32& c,
             std::vector<std::int64_t>* fused_col_sums = nullptr,
             std::vector<std::int64_t>* fused_wcol_sums = nullptr);

/// Convenience allocating overload.
[[nodiscard]] MatI32 gemm_i8(const MatI8& a, const MatI8& b);

/// Stationary-B variant: reuses panels packed once via kernels::pack_b
/// (ProtectedGemm keeps them resident with the weights). Bit-exact with
/// gemm_i8(a, b, c); `pb` that mismatches the active tier or B's shape is
/// ignored and the call packs fresh.
void gemm_i8_prepacked(const MatI8& a, const MatI8& b, const kernels::PackedB& pb, MatI32& c,
                       std::vector<std::int64_t>* fused_col_sums = nullptr,
                       std::vector<std::int64_t>* fused_wcol_sums = nullptr);

/// C[m x n] = A[m x k] * B^T where bt is stored [n x k] (row-major). Used for
/// attention scores Q*K^T where K rows are cache entries.
void gemm_i8_bt(const MatI8& a, const MatI8& bt, MatI32& c,
                std::vector<std::int64_t>* fused_col_sums = nullptr,
                std::vector<std::int64_t>* fused_wcol_sums = nullptr);
[[nodiscard]] MatI32 gemm_i8_bt(const MatI8& a, const MatI8& bt);

/// FP32 reference GEMM (tests and golden comparisons only).
[[nodiscard]] MatF gemm_f32(const MatF& a, const MatF& b);

}  // namespace realm::tensor
