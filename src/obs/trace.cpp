#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

namespace realm::obs {
namespace {

const util::Clock& default_clock() noexcept {
  static const util::Clock clock;
  return clock;
}

/// Human name for a verdict byte — mirrors detect::Verdict's enumerator
/// order (kClean, kDetected, kPatched, kRecomputed); nullptr for kNoVerdict
/// or out-of-range values (the exporter then omits the field).
const char* verdict_name(std::uint8_t v) noexcept {
  switch (v) {
    case 0: return "clean";
    case 1: return "detected";
    case 2: return "patched";
    case 3: return "recomputed";
    default: return nullptr;
  }
}

/// Microsecond string for a ns timestamp, 3 decimals (full ns precision in
/// Chrome's µs time unit).
void append_us(std::string& out, std::int64_t ns) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(ns) / 1e3);
  out.append(buf);
}

}  // namespace

const char* span_name(SpanKind k) noexcept {
  switch (k) {
    case SpanKind::kRequest: return "request";
    case SpanKind::kQueued: return "queued";
    case SpanKind::kTile: return "tile";
    case SpanKind::kQuantize: return "quantize";
    case SpanKind::kGemm: return "gemm";
    case SpanKind::kScreen: return "screen";
    case SpanKind::kPatch: return "patch";
    case SpanKind::kRecompute: return "recompute";
    case SpanKind::kRecheck: return "recheck";
    case SpanKind::kDequantize: return "dequantize";
    case SpanKind::kInjectedFlips: return "injected_flips";
    case SpanKind::kScrubReject: return "scrub_reject";
    case SpanKind::kHotSwap: return "hot_swap";
    case SpanKind::kLoadShed: return "load_shed";
    case SpanKind::kExpired: return "expired";
  }
  return "unknown";
}

Tracer::Tracer(TracerConfig cfg)
    : capacity_(cfg.capacity == 0 ? 1 : cfg.capacity),
      clock_(cfg.clock != nullptr ? cfg.clock : &default_clock()),
      enabled_(cfg.enabled),
      lanes_(cfg.lanes + 1) {
  for (auto& lane : lanes_) lane.ring.resize(capacity_);
}

void Tracer::record(std::size_t lane, const Event& e) noexcept {
  if (!enabled()) return;
  Lane& l = lanes_[lane];
  const std::uint64_t n = l.count.load(std::memory_order_relaxed);
  l.ring[static_cast<std::size_t>(n % capacity_)] = e;
  l.count.store(n + 1, std::memory_order_release);
}

void Tracer::record_control(const Event& e) {
  if (!enabled()) return;
  const std::lock_guard<std::mutex> lock(control_mu_);
  record(0, e);
}

std::vector<Event> Tracer::snapshot(std::size_t lane) const {
  std::unique_lock<std::mutex> control_lock;
  if (lane == 0) control_lock = std::unique_lock<std::mutex>(control_mu_);
  const Lane& l = lanes_[lane];
  const std::uint64_t n = l.count.load(std::memory_order_acquire);
  const std::uint64_t held = std::min<std::uint64_t>(n, capacity_);
  std::vector<Event> out;
  out.reserve(static_cast<std::size_t>(held));
  for (std::uint64_t i = n - held; i < n; ++i) {
    out.push_back(l.ring[static_cast<std::size_t>(i % capacity_)]);
  }
  return out;
}

std::uint64_t Tracer::recorded(std::size_t lane) const noexcept {
  return lanes_[lane].count.load(std::memory_order_acquire);
}

std::string Tracer::export_chrome_json() const {
  std::string out;
  out.append("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
  bool first = true;
  const auto sep = [&] {
    if (!first) out.push_back(',');
    first = false;
    out.append("\n ");
  };

  // One named track per lane, even if empty — a stable track layout makes
  // traces comparable across runs.
  for (std::size_t lane = 0; lane < lanes_.size(); ++lane) {
    sep();
    out.append("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":");
    out.append(std::to_string(lane));
    out.append(",\"args\":{\"name\":\"");
    out.append(lane == 0 ? "control" : "worker-" + std::to_string(lane));
    out.append("\"}}");
  }

  for (std::size_t lane = 0; lane < lanes_.size(); ++lane) {
    for (const Event& e : snapshot(lane)) {
      sep();
      out.append("{\"name\":\"");
      out.append(span_name(e.kind));
      out.append("\",\"cat\":\"realm\",\"ph\":\"");
      out.append(is_instant(e.kind) ? "i\",\"s\":\"t" : "X");
      out.append("\",\"ts\":");
      append_us(out, e.t_start_ns);
      if (!is_instant(e.kind)) {
        out.append(",\"dur\":");
        append_us(out, e.t_end_ns - e.t_start_ns);
      }
      out.append(",\"pid\":1,\"tid\":");
      out.append(std::to_string(lane));
      out.append(",\"args\":{\"span_id\":");
      out.append(std::to_string(e.span_id));
      out.append(",\"parent\":");
      out.append(std::to_string(e.parent));
      out.append(",\"tenant\":");
      out.append(std::to_string(e.tenant));
      if (e.tile >= 0) {
        out.append(",\"tile\":");
        out.append(std::to_string(e.tile));
      }
      if (const char* v = verdict_name(e.verdict); v != nullptr) {
        out.append(",\"verdict\":\"");
        out.append(v);
        out.push_back('"');
      }
      out.append("}}");
    }
  }
  out.append("\n]}\n");
  return out;
}

#if REALM_TRACE_ENABLED

TraceContext& trace_context() noexcept {
  thread_local TraceContext ctx;
  return ctx;
}

ScopedSpan::ScopedSpan(SpanKind kind, std::int32_t tile) noexcept {
  TraceContext& ctx = trace_context();
  if (ctx.tracer == nullptr || !ctx.tracer->enabled()) return;
  active_ = true;
  kind_ = kind;
  tile_ = tile;
  id_ = span_id(ctx.stream, tile, kind);
  saved_parent_ = ctx.parent;
  ctx.parent = id_;
  t0_ = ctx.tracer->now_ns();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  TraceContext& ctx = trace_context();
  ctx.parent = saved_parent_;
  Event e;
  e.span_id = id_;
  e.parent = saved_parent_;
  e.t_start_ns = t0_;
  e.t_end_ns = ctx.tracer->now_ns();
  e.tile = tile_;
  e.tenant = ctx.tenant;
  e.kind = kind_;
  e.verdict = verdict_;
  ctx.tracer->record(ctx.lane, e);
}

ScopedRequestTrace::ScopedRequestTrace(Tracer* tracer, std::size_t lane, std::uint64_t stream,
                                       std::uint16_t tenant, std::int64_t submitted_ns) noexcept {
  if (tracer == nullptr || !tracer->enabled()) return;
  active_ = true;
  TraceContext& ctx = trace_context();
  saved_ = ctx;
  submitted_ns_ = submitted_ns;
  request_id_ = span_id(stream, -1, SpanKind::kRequest);
  ctx = TraceContext{tracer, lane, stream, tenant, request_id_};

  Event q;
  q.span_id = span_id(stream, -1, SpanKind::kQueued);
  q.parent = request_id_;
  q.t_start_ns = submitted_ns;
  q.t_end_ns = tracer->now_ns();
  q.tenant = tenant;
  q.kind = SpanKind::kQueued;
  tracer->record(lane, q);
}

ScopedRequestTrace::~ScopedRequestTrace() {
  if (!active_) return;
  TraceContext& ctx = trace_context();
  Event r;
  r.span_id = request_id_;
  r.parent = 0;
  r.t_start_ns = submitted_ns_;
  r.t_end_ns = ctx.tracer->now_ns();
  r.tenant = ctx.tenant;
  r.kind = SpanKind::kRequest;
  r.verdict = verdict_;
  ctx.tracer->record(ctx.lane, r);
  ctx = saved_;
}

#endif  // REALM_TRACE_ENABLED

}  // namespace realm::obs
