// Low-overhead span tracer: per-worker ring buffers of fixed-size events,
// Chrome-trace/Perfetto JSON export, compile-time removable.
//
// Recording model
//   - Lane 1..N: one single-producer ring per engine worker. record() is a
//     plain array store plus one release store of the lane's event count — no
//     locks, no allocation, no formatting on the hot path. A full ring
//     overwrites the oldest event (tracing favors recency over completeness).
//   - Lane 0: mutex-guarded control lane for everything that happens off the
//     worker threads (load-shed rejections at submit, hot-swap epochs, scrub
//     rejects, injected-flip tallies). Cold paths only.
//   - Export/snapshot require QUIESCENCE on worker lanes: call them only
//     after ServeEngine::wait()/drain() (whose mutex hand-off orders every
//     worker's stores before the exporting thread's loads) or after the
//     engine is destroyed. The release/acquire pair on each lane's count is
//     belt-and-braces, not a license to export mid-flight.
//
// Determinism: timestamps come from the tracer's injectable util::Clock, so a
// ManualClock makes every t_start/t_end a scripted tick. Span ids derive from
// (stream, tile, kind) — the stream is the request's ticket-derived id, so
// ids and parent links are identical at any worker count; only the lane (the
// Chrome `tid`) depends on which worker ran the request.
//
// Compile-time removal: building with REALM_TRACE=OFF defines
// REALM_TRACE_ENABLED=0, which turns ScopedSpan/ScopedRequestTrace into empty
// no-op types and kTraceCompiledIn into false (call sites gate direct
// Tracer::record() calls on `if constexpr (kTraceCompiledIn)`), leaving zero
// trace code in hot loops. The Tracer class itself stays compiled — it is a
// cold-path object and keeping it makes the OFF build's API identical.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "util/clock.h"

#ifndef REALM_TRACE_ENABLED
#define REALM_TRACE_ENABLED 1
#endif

namespace realm::obs {

inline constexpr bool kTraceCompiledIn = REALM_TRACE_ENABLED != 0;

/// Span taxonomy. Duration spans nest queued→request→tile→stage on a worker
/// track; instant kinds mark point events (see is_instant()).
enum class SpanKind : std::uint8_t {
  // Duration spans.
  kRequest = 1,   // whole request: submit → response ready
  kQueued = 2,    // submit → claimed by a worker (child of kRequest)
  kTile = 3,      // one column tile through the protected pipeline
  kQuantize = 4,  // float→int8 activation quantization
  kGemm = 5,      // int8 GEMM (fused checksum store phase included)
  kScreen = 6,    // checksum screen of the accumulator
  kPatch = 7,     // in-place algebraic correction attempt
  kRecompute = 8,  // replay GEMM after failed/disabled patch
  kRecheck = 9,    // post-recompute screen
  kDequantize = 10,  // int32 accumulator → float output
  // Instant events.
  kInjectedFlips = 32,  // fault model injected bit flips
  kScrubReject = 33,    // hot-swap candidate rejected by weight scrub
  kHotSwap = 34,        // tile swap installed (new epoch)
  kLoadShed = 35,       // admission rejected at full queue
  kExpired = 36,        // request past deadline, dropped by worker
};

[[nodiscard]] constexpr bool is_instant(SpanKind k) noexcept {
  return static_cast<std::uint8_t>(k) >= 32;
}

/// Chrome/Perfetto event name for a kind.
[[nodiscard]] const char* span_name(SpanKind k) noexcept;

/// No verdict attached (non-tile spans, instants).
inline constexpr std::uint8_t kNoVerdict = 0xff;

/// Fixed-size trace record. `tile` is -1 for request-level spans; `verdict`
/// holds the detect::Verdict value (numeric, see span_name mapping in the
/// exporter) or kNoVerdict.
struct Event {
  std::uint64_t span_id = 0;
  std::uint64_t parent = 0;
  std::int64_t t_start_ns = 0;
  std::int64_t t_end_ns = 0;  // == t_start_ns for instants
  std::int32_t tile = -1;
  std::uint16_t tenant = 0;
  SpanKind kind = SpanKind::kRequest;
  std::uint8_t verdict = kNoVerdict;
};

/// Deterministic span id from (stream, tile, kind): stream in the high bits,
/// tile+1 (0 = request-level) in the middle, kind low — unique within a
/// request and stable across worker counts. Streams are the engine's
/// ticket-derived ids, so ids never collide within one trace.
[[nodiscard]] constexpr std::uint64_t span_id(std::uint64_t stream, std::int32_t tile,
                                              SpanKind kind) noexcept {
  return ((stream + 1) << 24) | (static_cast<std::uint64_t>(tile + 1) << 8) |
         static_cast<std::uint64_t>(kind);
}

struct TracerConfig {
  std::size_t lanes = 1;          ///< worker lanes (lane 0 control is extra)
  std::size_t capacity = 1 << 12;  ///< events per lane before wrap
  const util::Clock* clock = nullptr;  ///< nullptr → real steady clock
  bool enabled = true;                 ///< runtime toggle start state
};

class Tracer {
 public:
  explicit Tracer(TracerConfig cfg);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Runtime toggle. Disabling stops new events; already-recorded events
  /// stay exportable.
  void set_enabled(bool on) noexcept { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Worker lanes (the control lane 0 is extra — valid lane indices for
  /// snapshot()/recorded() are 0..lanes() inclusive).
  [[nodiscard]] std::size_t lanes() const noexcept { return lanes_.size() - 1; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Timestamp from the tracer's clock (ManualClock ticks in tests).
  [[nodiscard]] std::int64_t now_ns() const noexcept { return util::to_ns(clock_->now()); }

  /// Record on a worker lane (1..lanes()). Single producer per lane: at most
  /// one thread may record on a given lane at a time. No-op when disabled.
  void record(std::size_t lane, const Event& e) noexcept;

  /// Record on the mutex-guarded control lane (lane 0) — any thread, cold
  /// paths only. No-op when disabled.
  void record_control(const Event& e);

  /// Events currently held by a lane, oldest first (wrapped-out events are
  /// gone). Quiescence required for worker lanes — see file-top contract.
  [[nodiscard]] std::vector<Event> snapshot(std::size_t lane) const;

  /// Total events ever recorded on a lane (including overwritten ones).
  [[nodiscard]] std::uint64_t recorded(std::size_t lane) const noexcept;

  /// Chrome trace-event JSON: one track (`tid`) per lane, duration spans as
  /// "ph":"X" complete events (nesting via ts/dur), instants as "ph":"i",
  /// thread_name metadata naming worker tracks. Loads in Perfetto and
  /// chrome://tracing. Quiescence required.
  [[nodiscard]] std::string export_chrome_json() const;

 private:
  struct Lane {
    std::vector<Event> ring;
    std::atomic<std::uint64_t> count{0};
  };

  const std::size_t capacity_;
  const util::Clock* clock_;
  std::atomic<bool> enabled_;
  std::deque<Lane> lanes_;  // deque: Lane holds an atomic, must never move
  mutable std::mutex control_mu_;
};

#if REALM_TRACE_ENABLED

/// Thread-local trace destination, installed by ScopedRequestTrace on a
/// worker for the duration of one request. ScopedSpan reads it so the tile
/// and detect layers emit spans without tracer parameters threading through
/// their APIs. tracer == nullptr (the default) means "not tracing" and makes
/// every ScopedSpan on this thread a no-op.
struct TraceContext {
  Tracer* tracer = nullptr;
  std::size_t lane = 0;
  std::uint64_t stream = 0;
  std::uint16_t tenant = 0;
  std::uint64_t parent = 0;  ///< current innermost span id
};

[[nodiscard]] TraceContext& trace_context() noexcept;

/// RAII duration span tied to the thread's TraceContext. Construction opens
/// the span (and makes it the context's parent for spans nested inside);
/// destruction records the event. Free when no context is installed.
class ScopedSpan {
 public:
  explicit ScopedSpan(SpanKind kind, std::int32_t tile = -1) noexcept;
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan();

  void set_verdict(std::uint8_t v) noexcept { verdict_ = v; }

 private:
  std::int64_t t0_ = 0;
  std::uint64_t id_ = 0;
  std::uint64_t saved_parent_ = 0;
  std::int32_t tile_ = -1;
  SpanKind kind_ = SpanKind::kRequest;
  std::uint8_t verdict_ = kNoVerdict;
  bool active_ = false;
};

/// Installs the TraceContext for one request on a worker thread, emits the
/// kQueued span (submit → now) immediately, and records the enclosing
/// kRequest span (submit → destruction) on the way out. Restores the prior
/// context so nested engines (serve() shim inside tests) stay correct.
class ScopedRequestTrace {
 public:
  ScopedRequestTrace(Tracer* tracer, std::size_t lane, std::uint64_t stream, std::uint16_t tenant,
                     std::int64_t submitted_ns) noexcept;
  ScopedRequestTrace(const ScopedRequestTrace&) = delete;
  ScopedRequestTrace& operator=(const ScopedRequestTrace&) = delete;
  ~ScopedRequestTrace();

  void set_verdict(std::uint8_t v) noexcept { verdict_ = v; }

 private:
  TraceContext saved_{};
  std::int64_t submitted_ns_ = 0;
  std::uint64_t request_id_ = 0;
  std::uint8_t verdict_ = kNoVerdict;
  bool active_ = false;
};

#else  // !REALM_TRACE_ENABLED

// No-op stand-ins: empty types with constexpr bodies, so call sites compile
// unchanged and the optimizer erases them entirely (the constexpr/sizeof test
// in test_obs pins this). Keep signatures in lock-step with the ON variants.
class ScopedSpan {
 public:
  constexpr explicit ScopedSpan(SpanKind /*kind*/, std::int32_t /*tile*/ = -1) noexcept {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  constexpr void set_verdict(std::uint8_t /*v*/) const noexcept {}
};

class ScopedRequestTrace {
 public:
  constexpr ScopedRequestTrace(Tracer* /*tracer*/, std::size_t /*lane*/, std::uint64_t /*stream*/,
                               std::uint16_t /*tenant*/, std::int64_t /*submitted_ns*/) noexcept {}
  ScopedRequestTrace(const ScopedRequestTrace&) = delete;
  ScopedRequestTrace& operator=(const ScopedRequestTrace&) = delete;
  constexpr void set_verdict(std::uint8_t /*v*/) const noexcept {}
};

#endif  // REALM_TRACE_ENABLED

}  // namespace realm::obs
