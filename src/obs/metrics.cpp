#include "obs/metrics.h"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <vector>

namespace realm::obs {
namespace {

// All metric names and help strings in this repo are plain ASCII identifiers
// and sentences (no backslashes, quotes, or newlines), so exposition needs no
// escaping pass. Label bodies are pre-formatted by the registrant.
void append_series_name(std::string& out, std::string_view name, std::string_view labels) {
  out.append(name);
  if (!labels.empty()) {
    out.push_back('{');
    out.append(labels);
    out.push_back('}');
  }
}

void append_header(std::string& out, std::string_view name, std::string_view help,
                   std::string_view type) {
  out.append("# HELP ").append(name).push_back(' ');
  out.append(help).push_back('\n');
  out.append("# TYPE ").append(name).push_back(' ');
  out.append(type).push_back('\n');
}

// Histogram series names carry the `le` bound merged into the label body.
void append_bucket_line(std::string& out, std::string_view name, std::string_view labels,
                        std::string_view le, std::uint64_t cumulative) {
  out.append(name).append("_bucket{");
  if (!labels.empty()) out.append(labels).push_back(',');
  out.append("le=\"").append(le).append("\"} ");
  out.append(std::to_string(cumulative)).push_back('\n');
}

}  // namespace

void LogHistogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

template <typename M>
M& MetricsRegistry::get_or_create(std::deque<Entry<M>>& pool, std::string_view name,
                                  std::string_view help, std::string_view labels) {
  for (auto& e : pool) {
    if (e.name == name && e.labels == labels) return e.metric;
  }
  auto& e = pool.emplace_back();
  e.name = name;
  e.help = help;
  e.labels = labels;
  return e.metric;
}

void MetricsRegistry::require_unique_type(std::string_view name, const void* pool) const {
  const auto taken = [&](const auto& other) {
    if (&other == pool) return false;
    return std::any_of(other.begin(), other.end(), [&](const auto& e) { return e.name == name; });
  };
  if (taken(counters_) || taken(gauges_) || taken(histograms_)) {
    throw std::logic_error("metric '" + std::string(name) +
                           "' already registered as a different type");
  }
}

Counter& MetricsRegistry::counter(std::string_view name, std::string_view help,
                                  std::string_view labels) {
  const std::lock_guard<std::mutex> lock(mu_);
  require_unique_type(name, &counters_);
  return get_or_create(counters_, name, help, labels);
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help,
                              std::string_view labels) {
  const std::lock_guard<std::mutex> lock(mu_);
  require_unique_type(name, &gauges_);
  return get_or_create(gauges_, name, help, labels);
}

LogHistogram& MetricsRegistry::histogram(std::string_view name, std::string_view help,
                                         std::string_view labels) {
  const std::lock_guard<std::mutex> lock(mu_);
  require_unique_type(name, &histograms_);
  return get_or_create(histograms_, name, help, labels);
}

std::string MetricsRegistry::expose() const {
  const std::lock_guard<std::mutex> lock(mu_);

  // Group entries into families (same name, ≥1 label-distinguished series),
  // sorted by name via the map, series within a family sorted by label body —
  // exposition is byte-deterministic for a given registry state, which the
  // golden-format test relies on.
  std::string out;
  const auto family_map = [](const auto& pool) {
    std::map<std::string_view, std::vector<const void*>> fams;
    for (const auto& e : pool) fams[e.name].push_back(&e);
    return fams;
  };

  struct Block {
    std::string_view name;
    std::string text;
  };
  std::vector<Block> blocks;

  const auto emit_scalar = [&](const auto& pool, std::string_view type) {
    using E = typename std::decay_t<decltype(pool)>::value_type;
    for (auto& [name, members] : family_map(pool)) {
      std::vector<const E*> series;
      series.reserve(members.size());
      for (const void* p : members) series.push_back(static_cast<const E*>(p));
      std::sort(series.begin(), series.end(),
                [](const E* a, const E* b) { return a->labels < b->labels; });
      Block blk{name, {}};
      append_header(blk.text, name, series.front()->help, type);
      for (const E* e : series) {
        append_series_name(blk.text, e->name, e->labels);
        blk.text.push_back(' ');
        blk.text.append(std::to_string(e->metric.value())).push_back('\n');
      }
      blocks.push_back(std::move(blk));
    }
  };
  emit_scalar(counters_, "counter");
  emit_scalar(gauges_, "gauge");

  for (auto& [name, members] : family_map(histograms_)) {
    std::vector<const Entry<LogHistogram>*> series;
    series.reserve(members.size());
    for (const void* p : members) series.push_back(static_cast<const Entry<LogHistogram>*>(p));
    std::sort(series.begin(), series.end(),
              [](const auto* a, const auto* b) { return a->labels < b->labels; });
    Block blk{name, {}};
    append_header(blk.text, name, series.front()->help, "histogram");
    for (const auto* e : series) {
      const LogHistogram& h = e->metric;
      // Emit cumulative buckets up to the highest occupied one; trailing
      // empty buckets collapse into +Inf so an idle histogram is 3 lines,
      // not 68.
      int hi = -1;
      for (int i = 0; i < LogHistogram::kBuckets; ++i) {
        if (h.bucket(i) != 0) hi = i;
      }
      std::uint64_t cumulative = 0;
      for (int i = 0; i <= hi; ++i) {
        cumulative += h.bucket(i);
        append_bucket_line(blk.text, e->name, e->labels,
                           std::to_string(LogHistogram::bucket_upper(i)), cumulative);
      }
      append_bucket_line(blk.text, e->name, e->labels, "+Inf", h.count());
      append_series_name(blk.text, std::string(e->name) + "_sum", e->labels);
      blk.text.push_back(' ');
      blk.text.append(std::to_string(h.sum())).push_back('\n');
      append_series_name(blk.text, std::string(e->name) + "_count", e->labels);
      blk.text.push_back(' ');
      blk.text.append(std::to_string(h.count())).push_back('\n');
    }
    blocks.push_back(std::move(blk));
  }

  std::sort(blocks.begin(), blocks.end(),
            [](const Block& a, const Block& b) { return a.name < b.name; });
  for (const Block& b : blocks) out.append(b.text);
  return out;
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& e : counters_) e.metric.reset();
  for (auto& e : gauges_) e.metric.reset();
  for (auto& e : histograms_) e.metric.reset();
}

}  // namespace realm::obs
