// Fixed-allocation metrics registry with Prometheus text exposition.
//
// The serving hot path (worker loops, per-tile verdict merges) records into
// pre-registered Counter/Gauge/LogHistogram handles with relaxed atomic
// increments — no locks, no allocation, no formatting. All the expensive
// machinery (get-or-create registration, exposition, reset) lives behind the
// registry mutex and runs on cold paths only. Callers resolve handles ONCE at
// setup and keep the pointers; `counter()`/`gauge()`/`histogram()` take a lock
// and must never be called per request.
//
// Histograms are log₂-bucketed: bucket 0 holds the value 0, bucket i (1..64)
// holds values in [2^(i-1), 2^i − 1]. Exponential buckets cover the full
// int64-microsecond latency range in 65 fixed slots, so a histogram is a flat
// array of atomics — no dynamic bucket plans, no rebinning.
//
// Reset contract: `reset()` and `expose()` serialize on the registry mutex, so
// a concurrent `expose()` observes either the fully pre-reset or the fully
// post-reset registry, never a torn mixture. Increments racing with a reset
// land on whichever side their relaxed store happens to fall — that is the
// same ±1 blur any sampling scrape already has, and it never tears a single
// metric (each atomic is reset individually but exposition can't interleave).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>

#include "util/bitmath.h"

namespace realm::obs {

/// Monotone event count. Relaxed increments; exact under concurrency (each
/// fetch_add lands exactly once — relaxed only forgoes ordering, not atomicity).
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }
  std::atomic<std::uint64_t> v_{0};
};

/// Point-in-time level (queue depth, swap epoch). Signed so transient
/// add/sub imbalance during a race window can't wrap to 2^64.
class Gauge {
 public:
  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) noexcept { v_.fetch_add(d, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }
  std::atomic<std::int64_t> v_{0};
};

/// Log₂-bucketed histogram over unsigned samples (latencies in µs, queue
/// waits). 65 fixed buckets; observe() is three relaxed fetch_adds.
class LogHistogram {
 public:
  static constexpr int kBuckets = 65;

  /// Bucket index for a sample: 0 for the value 0, else ilog2(v)+1 — so
  /// bucket i (i ≥ 1) holds exactly the values whose highest set bit is
  /// bit i−1, i.e. the range [2^(i-1), 2^i − 1].
  [[nodiscard]] static constexpr int bucket_index(std::uint64_t v) noexcept {
    return v == 0 ? 0 : util::ilog2_u64(v) + 1;
  }

  /// Inclusive upper bound of bucket i (the Prometheus `le` value):
  /// 2^i − 1, saturating to UINT64_MAX for the final bucket.
  [[nodiscard]] static constexpr std::uint64_t bucket_upper(int i) noexcept {
    return i >= 64 ? UINT64_MAX : (std::uint64_t{1} << i) - 1;
  }

  void observe(std::uint64_t v) noexcept {
    buckets_[static_cast<std::size_t>(bucket_index(v))].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t bucket(int i) const noexcept {
    return buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  void reset() noexcept;
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Get-or-create registry of named metrics. Series identity is
/// (name, labels) where `labels` is a pre-formatted Prometheus label body
/// like `component="weights"` (empty for unlabeled series). Metrics live in
/// deques so handle pointers stay valid for the registry's lifetime no matter
/// how many later registrations happen.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create. `help` is recorded on first registration of a name and
  /// ignored afterwards. Registering the same name as two different metric
  /// types throws std::logic_error. Cold path — takes the registry lock.
  Counter& counter(std::string_view name, std::string_view help, std::string_view labels = {});
  Gauge& gauge(std::string_view name, std::string_view help, std::string_view labels = {});
  LogHistogram& histogram(std::string_view name, std::string_view help,
                          std::string_view labels = {});

  /// Prometheus text-format exposition: families sorted by name, series
  /// within a family sorted by label body, histogram buckets as cumulative
  /// `le` series with trailing empty buckets elided before `+Inf`.
  [[nodiscard]] std::string expose() const;

  /// Zero every registered metric. Serialized against expose() — see the
  /// file-top reset contract.
  void reset();

 private:
  template <typename M>
  struct Entry {
    std::string name;
    std::string help;
    std::string labels;
    M metric;
  };

  template <typename M>
  M& get_or_create(std::deque<Entry<M>>& pool, std::string_view name, std::string_view help,
                   std::string_view labels);
  void require_unique_type(std::string_view name, const void* pool) const;

  mutable std::mutex mu_;
  std::deque<Entry<Counter>> counters_;
  std::deque<Entry<Gauge>> gauges_;
  std::deque<Entry<LogHistogram>> histograms_;
};

}  // namespace realm::obs
