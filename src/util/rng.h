// Deterministic pseudo-random number generation for fault-injection studies.
//
// Every stochastic component in ReaLM (weight synthesis, bit-flip sampling,
// workload generation) draws from an explicitly seeded realm::util::Rng so
// that experiments are reproducible run-to-run. The generator is
// xoshiro256** seeded through splitmix64, which is both fast and has
// well-understood statistical quality — important because bit-error-rate
// sweeps sample billions of Bernoulli trials.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace realm::util {

/// splitmix64 step; used to expand a single 64-bit seed into a full
/// xoshiro256 state and as a cheap stateless hash for stream derivation.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator with convenience distributions.
///
/// Satisfies UniformRandomBitGenerator so it can be handed to <random>
/// facilities, but the members below avoid libstdc++ distribution objects to
/// keep results identical across standard library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xabcdef1234567890ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Derive an independent stream for a named sub-experiment. Streams created
  /// with distinct tags from the same parent are statistically independent.
  [[nodiscard]] Rng fork(std::uint64_t tag) const noexcept {
    std::uint64_t sm = state_[0] ^ (tag * 0x9e3779b97f4a7c15ULL) ^ state_[3];
    return Rng(splitmix64(sm));
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return std::numeric_limits<result_type>::max(); }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection.
  std::uint64_t uniform_u64(std::uint64_t bound) noexcept {
    if (bound <= 1) return 0;
    // Rejection loop terminates quickly: worst-case acceptance ~50%.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next();
      const unsigned __int128 m = static_cast<unsigned __int128>(r) * bound;
      if (static_cast<std::uint64_t>(m) >= threshold) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(uniform_u64(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Standard normal via Box–Muller with caching of the second variate.
  double normal() noexcept {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * kPi * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  double normal(double mean, double stddev) noexcept { return mean + stddev * normal(); }

  /// Binomial(n, p) sample. Exact inversion for small n·p, normal
  /// approximation with continuity correction for large counts — the regime
  /// that matters when sampling the number of bit flips in a 10^8-bit tile.
  std::uint64_t binomial(std::uint64_t n, double p) noexcept;

  /// Zipf-distributed integer in [0, n) with exponent s (used by the
  /// synthetic-corpus generator to mimic natural token frequency skew).
  std::uint64_t zipf(std::uint64_t n, double s) noexcept;

  /// Sample k distinct indices from [0, n) (Floyd's algorithm); order is
  /// unspecified. Requires k <= n.
  [[nodiscard]] std::vector<std::uint64_t> sample_without_replacement(std::uint64_t n,
                                                                      std::uint64_t k) noexcept;

 private:
  static constexpr double kPi = 3.14159265358979323846;

  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace realm::util
