// Deadline/latency clock abstraction for the serving engine.
//
// The async serve path compares request deadlines against "now" inside worker
// threads. Wall-clock time in a test makes deadline behavior a race, so the
// engine reads time through this one-virtual-call interface: production uses
// the default steady_clock-backed Clock, deadline tests inject a ManualClock
// and advance it by hand — expiry becomes a pure function of the script, not
// of scheduler timing.
//
// This header is also the ONLY place a raw std::chrono clock may be named
// (realm-lint's clock-source rule pins every other call site in src/ and
// bench/ to the helpers below): measurement sites read util::now_ns(),
// schedulable time goes through Clock::now(), and duration arithmetic on
// TimePoints uses seconds_between/to_ns. One raw-clock home means one place
// to audit when a platform's steady clock misbehaves, and no call site that
// silently defeats ManualClock injection.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace realm::util {

/// Monotonic time as used for deadlines and rate windows. steady_clock on
/// every platform this repo targets is int64 nanoseconds since boot.
using TimePoint = std::chrono::steady_clock::time_point;
using Duration = std::chrono::steady_clock::duration;

/// Monotonic nanoseconds since the steady clock's epoch — THE raw clock read
/// for measurement sites (latency samples, bench wall time). Measurements are
/// real by definition, so this never virtualizes; anything that SCHEDULES
/// (deadlines, rate windows, trace timestamps) must go through Clock::now()
/// instead so tests can inject a ManualClock.
[[nodiscard]] inline std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Nanosecond value of a TimePoint, on the same scale as now_ns() (and as a
/// ManualClock's ticks — its epoch starts at tick 1).
[[nodiscard]] constexpr std::int64_t to_ns(TimePoint t) noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(t.time_since_epoch()).count();
}

/// Milliseconds elapsed since a now_ns() reading (the serving engine's
/// latency measurement).
[[nodiscard]] inline double ms_since_ns(std::int64_t t0_ns) noexcept {
  return static_cast<double>(now_ns() - t0_ns) / 1e6;
}

/// Seconds elapsed since a now_ns() reading (bench wall-time measurement).
[[nodiscard]] inline double seconds_since_ns(std::int64_t t0_ns) noexcept {
  return static_cast<double>(now_ns() - t0_ns) / 1e9;
}

/// Seconds from `a` to `b` — pure duration arithmetic, no clock read.
[[nodiscard]] constexpr double seconds_between(TimePoint a, TimePoint b) noexcept {
  return std::chrono::duration<double>(b - a).count();
}

/// Time source. The base class reads std::chrono::steady_clock; override
/// now() to virtualize time. Implementations must be safe to call from any
/// number of threads concurrently.
class Clock {
 public:
  Clock() = default;
  Clock(const Clock&) = delete;
  Clock& operator=(const Clock&) = delete;
  virtual ~Clock() = default;

  [[nodiscard]] virtual TimePoint now() const noexcept { return std::chrono::steady_clock::now(); }
};

/// Manually advanced clock for deterministic deadline tests. Starts at tick 1
/// (not 0) so a default-constructed TimePoint{} is always "in the past".
class ManualClock final : public Clock {
 public:
  [[nodiscard]] TimePoint now() const noexcept override {
    return TimePoint(Duration(ticks_.load(std::memory_order_acquire)));
  }

  void advance(Duration d) noexcept { ticks_.fetch_add(d.count(), std::memory_order_acq_rel); }

  void set(TimePoint t) noexcept {
    ticks_.store(t.time_since_epoch().count(), std::memory_order_release);
  }

 private:
  std::atomic<Duration::rep> ticks_{1};
};

}  // namespace realm::util
