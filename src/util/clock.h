// Deadline/latency clock abstraction for the serving engine.
//
// The async serve path compares request deadlines against "now" inside worker
// threads. Wall-clock time in a test makes deadline behavior a race, so the
// engine reads time through this one-virtual-call interface: production uses
// the default steady_clock-backed Clock, deadline tests inject a ManualClock
// and advance it by hand — expiry becomes a pure function of the script, not
// of scheduler timing.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace realm::util {

/// Monotonic time as used for deadlines and rate windows. steady_clock on
/// every platform this repo targets is int64 nanoseconds since boot.
using TimePoint = std::chrono::steady_clock::time_point;
using Duration = std::chrono::steady_clock::duration;

/// Time source. The base class reads std::chrono::steady_clock; override
/// now() to virtualize time. Implementations must be safe to call from any
/// number of threads concurrently.
class Clock {
 public:
  Clock() = default;
  Clock(const Clock&) = delete;
  Clock& operator=(const Clock&) = delete;
  virtual ~Clock() = default;

  [[nodiscard]] virtual TimePoint now() const noexcept { return std::chrono::steady_clock::now(); }
};

/// Manually advanced clock for deterministic deadline tests. Starts at tick 1
/// (not 0) so a default-constructed TimePoint{} is always "in the past".
class ManualClock final : public Clock {
 public:
  [[nodiscard]] TimePoint now() const noexcept override {
    return TimePoint(Duration(ticks_.load(std::memory_order_acquire)));
  }

  void advance(Duration d) noexcept { ticks_.fetch_add(d.count(), std::memory_order_acq_rel); }

  void set(TimePoint t) noexcept {
    ticks_.store(t.time_since_epoch().count(), std::memory_order_release);
  }

 private:
  std::atomic<Duration::rep> ticks_{1};
};

}  // namespace realm::util
