// Small integer/bit helpers shared by the fault models and the hardware-style
// statistical unit (which uses integer log2 the way an RTL priority encoder
// would).
#pragma once

#include <bit>
#include <cstdint>
#include <cstdlib>

namespace realm::util {

/// Integer floor(log2(x)) for x >= 1; ilog2(0) is defined as 0 so hardware
/// models never see a poison value (matches a priority encoder with a
/// zero-input bypass).
[[nodiscard]] constexpr int ilog2_u64(std::uint64_t x) noexcept {
  return x == 0 ? 0 : 63 - std::countl_zero(x);
}

/// |x| as an unsigned value; well-defined for INT64_MIN (where std::llabs is
/// UB because the result is unrepresentable as int64).
[[nodiscard]] constexpr std::uint64_t abs_u64(std::int64_t x) noexcept {
  return x < 0 ? static_cast<std::uint64_t>(-(x + 1)) + 1ULL : static_cast<std::uint64_t>(x);
}

/// floor(log2(|x|)) of a signed value, 0 for x == 0.
[[nodiscard]] constexpr int ilog2_abs(std::int64_t x) noexcept {
  return ilog2_u64(abs_u64(x));
}

/// Saturating signed 64-bit addition (the statistical unit's MSD accumulator
/// saturates instead of wrapping; wrap-around would alias a huge deviation to
/// a small one and mask an error burst).
[[nodiscard]] constexpr std::int64_t sat_add_i64(std::int64_t a, std::int64_t b) noexcept {
  std::int64_t out = 0;
  if (__builtin_add_overflow(a, b, &out)) {
    return b > 0 ? INT64_MAX : INT64_MIN;
  }
  return out;
}

/// Saturating unsigned 64-bit addition (the L1 deviation aggregate must not
/// wrap for the same reason the signed MSD must not).
[[nodiscard]] constexpr std::uint64_t sat_add_u64(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t out = 0;
  if (__builtin_add_overflow(a, b, &out)) return UINT64_MAX;
  return out;
}

/// Saturating signed 64-bit subtraction (same rationale as sat_add_i64; the
/// per-column deviation observed − predicted must not wrap either).
[[nodiscard]] constexpr std::int64_t sat_sub_i64(std::int64_t a, std::int64_t b) noexcept {
  std::int64_t out = 0;
  if (__builtin_sub_overflow(a, b, &out)) {
    return b < 0 ? INT64_MAX : INT64_MIN;
  }
  return out;
}

/// Clamp a 64-bit value into n-bit signed range (models reduced-width
/// checksum datapaths, e.g. the 16-bit eTW row of Fig. 7). bits >= 64 is the
/// identity (the value already fits the datapath); bits <= 0 models a
/// zero-width bus and clamps everything to 0. Both extremes previously hit
/// shift UB (1LL << 63 / negative shift counts).
[[nodiscard]] constexpr std::int64_t clamp_to_bits(std::int64_t v, int bits) noexcept {
  if (bits >= 64) return v;
  if (bits <= 0) return 0;
  const std::int64_t hi = (1LL << (bits - 1)) - 1;
  const std::int64_t lo = -hi - 1;
  return v > hi ? hi : (v < lo ? lo : v);
}

/// Wrap a 64-bit value into n-bit two's-complement range: keep the low n bits
/// and sign-extend — the carries out of an n-bit register are dropped. This is
/// the other overflow semantics a reduced-width checksum register can have
/// (realm::sa models both); its failure mode is aliasing, where an error mass
/// that is a multiple of 2^n screens as zero. bits >= 64 is the identity,
/// bits <= 0 a zero-width bus (always 0).
[[nodiscard]] constexpr std::int64_t wrap_to_bits(std::int64_t v, int bits) noexcept {
  if (bits >= 64) return v;
  if (bits <= 0) return 0;
  const std::uint64_t mask = (std::uint64_t{1} << bits) - 1;
  const std::uint64_t low = static_cast<std::uint64_t>(v) & mask;
  const std::uint64_t sign = std::uint64_t{1} << (bits - 1);
  return static_cast<std::int64_t>(low ^ sign) - static_cast<std::int64_t>(sign);
}

}  // namespace realm::util
