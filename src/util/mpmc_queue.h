// Bounded multi-producer / multi-consumer queue — the request-feed primitive
// of the serving engine (realm::serve::ServeEngine).
//
// Semantics:
//  * push() blocks while the queue is full and returns false (dropping the
//    item) once the queue has been closed — producers cannot enqueue work the
//    consumers will never see.
//  * pop() blocks while the queue is empty and open; it drains remaining
//    items after close() and only then returns false, so close() is a
//    graceful "no more work" signal, never a discard.
//  * close() is idempotent and wakes every blocked producer and consumer.
//
// The bound is the backpressure mechanism: a producer that outruns the
// consumers parks on not_full_ instead of growing an unbounded backlog —
// exactly the admission-control behavior a serving front door needs.
//
// Thread safety: every member may be called concurrently from any number of
// threads. Items are moved in and out under a single mutex; per-item work in
// the serving engine is a whole protected GEMM (micro- to milliseconds), so
// lock contention is noise at any realistic consumer count.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <utility>

namespace realm::util {

template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(std::size_t capacity) : capacity_(capacity) {
    if (capacity == 0) throw std::invalid_argument("MpmcQueue: capacity must be >= 1");
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  /// Blocks while full; enqueues and returns true, or returns false (item
  /// dropped) if the queue is or becomes closed while waiting.
  bool push(T item) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty and open. Returns true with an item, or false once
  /// the queue is closed AND drained (never discards a queued item).
  bool pop(T& out) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
      if (items_.empty()) return false;  // closed and drained
      out = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return true;
  }

  /// Signal end of input: blocked producers return false, consumers drain
  /// what remains and then return false. Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace realm::util
