// Bounded multi-producer / multi-consumer queue — the request-feed primitive
// of the serving engine (realm::serve::ServeEngine).
//
// Semantics:
//  * push() blocks while the queue is full and returns false (dropping the
//    item) once the queue has been closed — producers cannot enqueue work the
//    consumers will never see.
//  * pop() blocks while the queue is empty and open; it drains remaining
//    items after close() and only then returns false, so close() is a
//    graceful "no more work" signal, never a discard.
//  * close() is idempotent and wakes every blocked producer and consumer.
//
// The bound is the backpressure mechanism: a producer that outruns the
// consumers parks on not_full_ instead of growing an unbounded backlog —
// exactly the admission-control behavior a serving front door needs.
//
// Thread safety: every member may be called concurrently from any number of
// threads. Items are moved in and out under a single mutex; per-item work in
// the serving engine is a whole protected GEMM (micro- to milliseconds), so
// lock contention is noise at any realistic consumer count.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

namespace realm::util {

template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(std::size_t capacity) : capacity_(capacity) {
    if (capacity == 0) throw std::invalid_argument("MpmcQueue: capacity must be >= 1");
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  /// Blocks while full; enqueues and returns true, or returns false (item
  /// dropped) if the queue is or becomes closed while waiting.
  bool push(T item) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty and open. Returns true with an item, or false once
  /// the queue is closed AND drained (never discards a queued item).
  bool pop(T& out) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
      if (items_.empty()) return false;  // closed and drained
      out = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return true;
  }

  /// Signal end of input: blocked producers return false, consumers drain
  /// what remains and then return false. Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

/// MpmcQueue with strict priority lanes — the admission/scheduling primitive
/// of the async serving engine.
///
/// Lane semantics:
///  * lane 0 is the most urgent; pop() always drains the lowest-numbered
///    non-empty lane first (strict priority, no aging — a saturated lane 0
///    starves lane 2 by design, matching interactive-over-batch serving).
///  * within a lane, items are FIFO, so equal-priority requests complete in
///    submission order under a single consumer.
///  * the capacity bound is TOTAL across lanes: one shared admission budget,
///    so a burst of low-priority traffic exerts backpressure on everyone —
///    the caller decides (via try_push) whether to reject instead of park.
///
/// push()/pop()/close() semantics otherwise match MpmcQueue: push parks while
/// full and returns false once closed; pop drains every lane (in priority
/// order) after close() before returning false; close() is idempotent.
template <typename T>
class PriorityMpmcQueue {
 public:
  PriorityMpmcQueue(std::size_t capacity, std::size_t lanes)
      : capacity_(capacity), lanes_(lanes) {
    if (capacity == 0) throw std::invalid_argument("PriorityMpmcQueue: capacity must be >= 1");
    if (lanes == 0) throw std::invalid_argument("PriorityMpmcQueue: lanes must be >= 1");
  }

  PriorityMpmcQueue(const PriorityMpmcQueue&) = delete;
  PriorityMpmcQueue& operator=(const PriorityMpmcQueue&) = delete;

  /// Blocks while the total budget is exhausted; enqueues on `lane` and
  /// returns true, or returns false (item dropped) once closed.
  bool push(T item, std::size_t lane) {
    check_lane(lane);
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_full_.wait(lock, [&] { return closed_ || size_ < capacity_; });
      if (closed_) return false;
      lanes_[lane].push_back(std::move(item));
      ++size_;
    }
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking admission: enqueues and returns true iff the queue is open
  /// and under budget — the reject path of admission control.
  bool try_push(T item, std::size_t lane) {
    check_lane(lane);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || size_ >= capacity_) return false;
      lanes_[lane].push_back(std::move(item));
      ++size_;
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while every lane is empty and the queue is open. Returns true
  /// with an item from the most urgent non-empty lane, or false once closed
  /// AND fully drained.
  bool pop(T& out) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [&] { return closed_ || size_ > 0; });
      if (size_ == 0) return false;  // closed and drained
      for (auto& lane : lanes_) {
        if (lane.empty()) continue;
        out = std::move(lane.front());
        lane.pop_front();
        --size_;
        break;
      }
    }
    not_full_.notify_one();
    return true;
  }

  /// Signal end of input: blocked producers return false, consumers drain
  /// every lane in priority order and then return false. Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return size_;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t lane_count() const noexcept { return lanes_.size(); }

 private:
  void check_lane(std::size_t lane) const {
    if (lane >= lanes_.size()) throw std::out_of_range("PriorityMpmcQueue: bad lane");
  }

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::vector<std::deque<T>> lanes_;
  std::size_t size_ = 0;
  bool closed_ = false;
};

}  // namespace realm::util
