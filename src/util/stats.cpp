#include "util/stats.h"

#include <numeric>

namespace realm::util {

double SlidingWindow::quantile(double q) const {
  // Ring order does not matter for a quantile; hand the live prefix (ring
  // fills front-to-back until the first wrap) straight to util::quantile.
  return util::quantile(std::span<const double>(ring_.data(), count()), q);
}

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("quantile: empty sample");
  // A NaN q compares false against both clamp bounds, survives the clamp, and
  // turns the index cast below into UB — reject it explicitly.
  if (std::isnan(q)) throw std::invalid_argument("quantile: q is NaN");
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> copy(xs.begin(), xs.end());
  const auto idx =
      static_cast<std::size_t>(q * static_cast<double>(copy.size() - 1) + 0.5);
  std::nth_element(copy.begin(), copy.begin() + static_cast<std::ptrdiff_t>(idx), copy.end());
  return copy[idx];
}

LinearFit fit_line(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) {
    throw std::invalid_argument("fit_line: need >=2 paired points");
  }
  const auto n = static_cast<double>(xs.size());
  const double sx = std::accumulate(xs.begin(), xs.end(), 0.0);
  const double sy = std::accumulate(ys.begin(), ys.end(), 0.0);
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit fit;
  if (std::abs(denom) < 1e-12) {
    // Vertical data: report a flat line through the mean rather than NaNs.
    fit.slope = 0.0;
    fit.intercept = sy / n;
    fit.r2 = 0.0;
    return fit;
  }
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double e = ys[i] - (fit.slope * xs[i] + fit.intercept);
    ss_res += e * e;
  }
  fit.r2 = ss_tot > 1e-12 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

}  // namespace realm::util
