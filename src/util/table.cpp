#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace realm::util {

TablePrinter& TablePrinter::header(std::vector<std::string> cols) {
  header_ = std::move(cols);
  return *this;
}

TablePrinter& TablePrinter::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&widths](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  auto rule = [&os, &widths]() {
    os << '+';
    for (const auto w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto line = [&os, &widths](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string{};
      os << ' ' << c << std::string(widths[i] - c.size() + 1, ' ') << '|';
    }
    os << '\n';
  };

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  rule();
  if (!header_.empty()) {
    line(header_);
    rule();
  }
  for (const auto& r : rows_) line(r);
  rule();
}

void TablePrinter::print_csv(std::ostream& os) const {
  auto emit = [&os](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) os << ',';
      os << cells[i];
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
}

std::string TablePrinter::num(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

std::string TablePrinter::sci(double v, int precision) {
  std::ostringstream ss;
  ss << std::scientific << std::setprecision(precision) << v;
  return ss.str();
}

std::string TablePrinter::pct(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << (v * 100.0) << '%';
  return ss.str();
}

}  // namespace realm::util
