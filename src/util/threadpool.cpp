#include "util/threadpool.h"

#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace realm::util {

namespace {

/// Set while a thread is executing chunk bodies; nested parallel_for calls
/// detect it and run inline instead of deadlocking on the single job slot.
thread_local bool t_inside_pool = false;

}  // namespace

// All job state is read and written under `mu`, and every chunk claim checks
// the job generation under that same lock — a straggler from a finished job
// can never claim into (or observe half-initialized fields of) the next one.
// The lock is taken once per chunk; chunks are sized in whole GEMM row blocks
// (milliseconds of work), so contention is negligible.
struct ThreadPool::Impl {
  explicit Impl(std::size_t threads) : concurrency(threads < 1 ? 1 : threads) {
    workers.reserve(concurrency - 1);
    try {
      for (std::size_t w = 0; w + 1 < concurrency; ++w) {
        workers.emplace_back([this] { worker_loop(); });
      }
    } catch (...) {
      // A failed spawn (thread/VM exhaustion) must not unwind past joinable
      // threads — that would std::terminate. Shut down what started and let
      // the caller see the original std::system_error.
      shutdown();
      throw;
    }
  }

  ~Impl() { shutdown(); }

  void shutdown() {
    {
      std::lock_guard<std::mutex> lock(mu);
      shutting_down = true;
    }
    wake.notify_all();
    for (auto& t : workers) t.join();
    workers.clear();
  }

  void worker_loop() {
    t_inside_pool = true;
    std::uint64_t seen_generation = 0;
    for (;;) {
      std::uint64_t my_generation;
      {
        std::unique_lock<std::mutex> lock(mu);
        wake.wait(lock, [&] { return shutting_down || generation != seen_generation; });
        if (shutting_down) return;
        seen_generation = my_generation = generation;
      }
      run_chunks(my_generation);
    }
  }

  /// Claim and execute chunks of job `my_generation` until the job is done,
  /// closed (a newer job replaced it), or errored. Whoever retires the last
  /// chunk — including an erroring thread discarding the unclaimed tail —
  /// wakes the submitter.
  void run_chunks(std::uint64_t my_generation) {
    for (;;) {
      std::size_t begin, end;
      {
        std::lock_guard<std::mutex> lock(mu);
        if (generation != my_generation || next_chunk >= nchunks) return;
        begin = next_chunk * chunk_size;
        end = begin + chunk_size < total ? begin + chunk_size : total;
        ++next_chunk;
      }
      bool errored = false;
      try {
        (*body)(begin, end);
      } catch (...) {
        errored = true;
        std::lock_guard<std::mutex> lock(mu);
        if (!error) error = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lock(mu);
        std::size_t finished = 1;
        if (errored && generation == my_generation) {
          // Abandon the unclaimed tail; chunks other threads already claimed
          // retire themselves on completion.
          finished += nchunks - next_chunk;
          next_chunk = nchunks;
        }
        pending -= finished;
        if (pending == 0) job_done.notify_all();
      }
      if (errored) return;
    }
  }

  std::size_t concurrency;
  std::vector<std::thread> workers;

  std::mutex mu;
  std::condition_variable wake;      ///< workers: new job or shutdown
  std::condition_variable job_done;  ///< submitter: all chunks retired
  bool shutting_down = false;
  std::uint64_t generation = 0;

  // Current job; guarded by mu (the body itself runs unlocked, but its
  // pointer is only read under mu and only swapped while pending == 0).
  const std::function<void(std::size_t, std::size_t)>* body = nullptr;
  std::size_t total = 0;
  std::size_t chunk_size = 1;
  std::size_t nchunks = 0;
  std::size_t next_chunk = 0;
  std::size_t pending = 0;
  std::exception_ptr error;

  std::mutex submit_mu;  ///< serializes concurrent parallel_for callers
};

void mark_thread_as_pool_worker() noexcept { t_inside_pool = true; }

ThreadPool::ThreadPool(std::size_t threads) : impl_(new Impl(threads)) {}

ThreadPool::~ThreadPool() { delete impl_; }

std::size_t ThreadPool::size() const noexcept { return impl_->concurrency; }

void ThreadPool::parallel_for(std::size_t total, std::size_t grain,
                              const std::function<void(std::size_t, std::size_t)>& body) {
  if (total == 0) return;
  if (grain < 1) grain = 1;

  // Serial pool, a job too small to split, or a nested call: run inline.
  if (impl_->concurrency == 1 || total <= grain || t_inside_pool) {
    body(0, total);
    return;
  }

  std::lock_guard<std::mutex> submit_lock(impl_->submit_mu);

  // A few chunks per thread so uneven chunk costs still balance, but never
  // smaller than the caller's grain.
  std::size_t chunk = (total + impl_->concurrency * 4 - 1) / (impl_->concurrency * 4);
  if (chunk < grain) chunk = grain;
  const std::size_t nchunks = (total + chunk - 1) / chunk;

  std::uint64_t my_generation;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->body = &body;
    impl_->total = total;
    impl_->chunk_size = chunk;
    impl_->nchunks = nchunks;
    impl_->next_chunk = 0;
    impl_->pending = nchunks;
    impl_->error = nullptr;
    my_generation = ++impl_->generation;
  }
  impl_->wake.notify_all();

  // The submitting thread works too.
  t_inside_pool = true;
  impl_->run_chunks(my_generation);
  t_inside_pool = false;

  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(impl_->mu);
    impl_->job_done.wait(lock, [&] { return impl_->pending == 0; });
    impl_->body = nullptr;
    error = impl_->error;
  }
  if (error) std::rethrow_exception(error);
}

namespace {

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;

std::size_t default_threads() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe) — read once under g_pool_mu before workers exist
  if (const char* env = std::getenv("REALM_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 1) return static_cast<std::size_t>(v);
  }
  return 1;
}

}  // namespace

ThreadPool& global_pool() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>(default_threads());
  return *g_pool;
}

void set_global_threads(std::size_t threads) {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  g_pool = std::make_unique<ThreadPool>(threads < 1 ? 1 : threads);
}

std::size_t global_threads() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>(default_threads());
  return g_pool->size();
}

}  // namespace realm::util
