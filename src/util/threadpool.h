// Persistent worker pool for row-sharding the GEMM macro-loop.
//
// Determinism contract: parallel_for splits [0, total) into contiguous
// half-open chunks and every index is visited exactly once, so any body that
// writes disjoint state per index produces bit-identical results at every
// thread count — the property the fault-detection tests rely on (a checksum
// mismatch must mean a fault, never a scheduling artifact).
//
// The calling thread participates as a worker, so a pool of size 1 runs the
// body inline with no synchronization.
//
// Nesting rules (load-bearing for realm::serve): the "inside a pool worker"
// marker is thread-local and PROCESS-WIDE — a parallel_for issued from inside
// any pool's worker runs inline on that worker, even on a *different* pool.
// This is what lets the serving engine run request-level parallel_for on its
// own pool while each request's GEMM routes through global_pool(): the GEMM
// sees the nesting flag and runs inline on the engine worker instead of
// deadlocking or oversubscribing. Corollaries:
//  * kernel-level threading (REALM_THREADS / set_global_threads) applies only
//    to top-level callers, never inside another pool's workers;
//  * distinct top-level threads may call parallel_for on the same pool
//    concurrently — they serialize on the single job slot, they don't race.
#pragma once

#include <cstddef>
#include <functional>

namespace realm::util {

class ThreadPool {
 public:
  /// @param threads total concurrency including the calling thread; clamped
  ///                to >= 1. A pool of size N spawns N-1 workers.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept;

  /// Run body(begin, end) over contiguous chunks covering [0, total); blocks
  /// until every chunk completes. Chunks are at least `grain` indices (except
  /// possibly the last). The first exception thrown by any chunk is rethrown
  /// on the calling thread after all workers quiesce; remaining chunks are
  /// abandoned. One job runs at a time; concurrent callers serialize.
  void parallel_for(std::size_t total, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& body);

 private:
  struct Impl;
  Impl* impl_;
};

/// Mark the CALLING thread as a pool worker for the nesting rule above: every
/// parallel_for issued from this thread (on any pool) runs inline from now
/// on. For long-lived worker threads that live outside ThreadPool — the async
/// serve engine's persistent workers — which need each request's GEMM pinned
/// to the worker instead of fanning out onto (and deadlocking against) the
/// global pool. Sticky for the thread's lifetime; ThreadPool's own workers
/// set it implicitly.
void mark_thread_as_pool_worker() noexcept;

/// Process-wide pool used by the GEMM kernels. Defaults to 1 thread (serial)
/// unless the REALM_THREADS environment variable names a larger count at
/// first use; resizable at runtime via set_global_threads().
[[nodiscard]] ThreadPool& global_pool();

/// Replace the global pool with one of `threads` total threads (clamped to
/// >= 1). Must not be called while a parallel_for on the global pool is in
/// flight on another thread.
void set_global_threads(std::size_t threads);

[[nodiscard]] std::size_t global_threads();

}  // namespace realm::util
