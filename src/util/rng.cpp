#include "util/rng.h"

#include <algorithm>
#include <unordered_set>

namespace realm::util {

std::uint64_t Rng::binomial(std::uint64_t n, double p) noexcept {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;

  const double np = static_cast<double>(n) * p;
  // Exact geometric-skip sampling when the expected count is small: walk the
  // gaps between successes. Expected work is O(np), independent of n.
  if (np < 64.0) {
    const double log_q = std::log1p(-p);
    std::uint64_t count = 0;
    double position = 0.0;
    for (;;) {
      double u = uniform();
      while (u <= 0.0) u = uniform();
      position += std::floor(std::log(u) / log_q) + 1.0;
      if (position > static_cast<double>(n)) break;
      ++count;
    }
    return count;
  }

  // Gaussian approximation with continuity correction; error is negligible
  // relative to run-to-run Monte-Carlo noise at np >= 64.
  const double sigma = std::sqrt(np * (1.0 - p));
  const double sample = std::round(normal(np, sigma));
  if (sample < 0.0) return 0;
  if (sample > static_cast<double>(n)) return n;
  return static_cast<std::uint64_t>(sample);
}

std::uint64_t Rng::zipf(std::uint64_t n, double s) noexcept {
  if (n <= 1) return 0;
  // Rejection-inversion (Hormann & Derflinger) is overkill here; the corpus
  // generator only needs qualitative skew, so use the classic inverse-CDF
  // over the harmonic partial sums with a cached normalizer for small n and
  // a two-region approximation otherwise.
  const double x = uniform();
  // Invert an approximate CDF: F(k) ~ H(k)/H(n) with H(k) ≈ (k^(1-s)-1)/(1-s)
  // for s != 1 and ln k for s == 1.
  auto h = [s](double k) {
    if (std::abs(s - 1.0) < 1e-9) return std::log(k);
    return (std::pow(k, 1.0 - s) - 1.0) / (1.0 - s);
  };
  const double hn = h(static_cast<double>(n) + 0.5) - h(0.5);
  const double target = x * hn + h(0.5);
  double k;
  if (std::abs(s - 1.0) < 1e-9) {
    k = std::exp(target);
  } else {
    const double base = target * (1.0 - s) + 1.0;
    k = base > 0.0 ? std::pow(base, 1.0 / (1.0 - s)) : 1.0;
  }
  const auto idx = static_cast<std::uint64_t>(std::clamp(k - 0.5, 0.0, static_cast<double>(n - 1)));
  return idx;
}

std::vector<std::uint64_t> Rng::sample_without_replacement(std::uint64_t n,
                                                           std::uint64_t k) noexcept {
  if (k >= n) {
    std::vector<std::uint64_t> all(n);
    for (std::uint64_t i = 0; i < n; ++i) all[i] = i;
    return all;
  }
  // Floyd's algorithm: O(k) expected time, no O(n) scratch.
  std::unordered_set<std::uint64_t> chosen;
  std::vector<std::uint64_t> result;
  result.reserve(k);
  for (std::uint64_t j = n - k; j < n; ++j) {
    const std::uint64_t t = uniform_u64(j + 1);
    if (chosen.insert(t).second) {
      result.push_back(t);
    } else {
      chosen.insert(j);
      result.push_back(j);
    }
  }
  return result;
}

}  // namespace realm::util
