// Compiler-specific pragma helpers shared by the SIMD translation units.
#pragma once

// GCC routes the unmasked forms of several AVX-512 intrinsics (e.g. the
// vpmovsxdq widening used in fused store phases, and _mm512_mul_epi32)
// through their masked builtins with _mm512_undefined_epi32() as the
// don't-care passthrough, which -Wmaybe-uninitialized flags (GCC PR105593).
// Not a real read, so AVX-512 regions suppress that one warning for GCC
// only. Every `target("avx512...")` region must sit between
// REALM_BEGIN_AVX512_SECTION and REALM_END_AVX512_SECTION — realm-lint
// (tools/realm_lint.py) enforces the pairing and rejects raw
// `#pragma GCC diagnostic` spellings outside this header.
#if defined(__GNUC__) && !defined(__clang__)
#define REALM_BEGIN_AVX512_SECTION \
  _Pragma("GCC diagnostic push") _Pragma("GCC diagnostic ignored \"-Wmaybe-uninitialized\"")
#define REALM_END_AVX512_SECTION _Pragma("GCC diagnostic pop")
#else
#define REALM_BEGIN_AVX512_SECTION
#define REALM_END_AVX512_SECTION
#endif
