// Streaming statistics and histograms used throughout the characterization
// harness (Sec. IV of the paper) and by the statistical-unit hardware model.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

namespace realm::util {

/// Welford running mean/variance with min/max tracking.
///
/// Edge-case contract (pinned by test_stats):
///  * empty (count() == 0): mean(), variance(), stddev(), min(), max() all
///    return 0.0 — never NaN or an infinity sentinel;
///  * single sample: variance() and stddev() are 0.0 (sample variance is
///    undefined at n == 1; 0 keeps downstream tables finite), min() == max()
///    == mean() == the sample;
///  * duplicate values: variance() is exactly 0.0 (the Welford update adds
///    delta * (x - mean_) == 0 each step — no catastrophic cancellation);
///  * merge() with an empty side is the identity in either direction.
class RunningStat {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  void merge(const RunningStat& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double delta = other.mean_ - mean_;
    const auto na = static_cast<double>(n_);
    const auto nb = static_cast<double>(other.n_);
    const double nt = na + nb;
    m2_ += other.m2_ + delta * delta * na * nb / nt;
    mean_ += delta * nb / nt;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-range linear histogram. Out-of-range samples clamp to edge bins so
/// that tail mass is visible rather than silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi), counts_(bins, 0) {
    if (!(hi > lo) || bins == 0) throw std::invalid_argument("Histogram: bad range/bins");
  }

  void add(double x) noexcept {
    const double t = (x - lo_) / (hi_ - lo_);
    auto idx = static_cast<std::int64_t>(t * static_cast<double>(counts_.size()));
    idx = std::clamp<std::int64_t>(idx, 0, static_cast<std::int64_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
  }

  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_lo(std::size_t i) const noexcept {
    return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
  }
  [[nodiscard]] double bin_hi(std::size_t i) const noexcept { return bin_lo(i + 1); }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Fixed-capacity window over the most recent samples, for quantiles that
/// stay meaningful under a continuous stream (a whole-history quantile goes
/// stale; a per-batch quantile is noise once there are no batches). The async
/// serving engine keeps its latency p50/p99 here.
///
/// Semantics: add() overwrites the oldest sample once `capacity` samples are
/// held; quantile() is the exact util::quantile over whatever the window
/// currently holds and therefore throws on an empty window (same contract).
class SlidingWindow {
 public:
  explicit SlidingWindow(std::size_t capacity) : ring_(capacity) {
    if (capacity == 0) throw std::invalid_argument("SlidingWindow: capacity must be >= 1");
  }

  void add(double x) noexcept {
    ring_[next_] = x;
    next_ = (next_ + 1) % ring_.size();
    ++added_;
  }

  /// Samples currently in the window: min(total(), capacity()).
  [[nodiscard]] std::size_t count() const noexcept { return std::min(added_, ring_.size()); }
  /// Lifetime adds, including samples that have slid out.
  [[nodiscard]] std::size_t total() const noexcept { return added_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }

  /// Exact quantile over the current window (see util::quantile for the q
  /// contract). Throws std::invalid_argument on an empty window.
  [[nodiscard]] double quantile(double q) const;

 private:
  std::vector<double> ring_;
  std::size_t next_ = 0;
  std::size_t added_ = 0;
};

/// Exact quantile of a sample (copies + nth_element; fine for eval-sized
/// data), using the nearest-rank index round(q * (n - 1)).
///
/// Edge-case contract (pinned by test_stats):
///  * empty input throws std::invalid_argument — there is no defensible
///    value, and returning a sentinel would poison percentile tables;
///  * NaN q throws std::invalid_argument (a NaN would otherwise slip through
///    clamping and index-cast into UB);
///  * q outside [0, 1] clamps to the nearest bound, so q == 0 / q == 1 are
///    exactly min / max;
///  * a single-sample input returns that sample for every q;
///  * duplicate values are fine — nth_element handles ties.
[[nodiscard]] double quantile(std::span<const double> xs, double q);

/// Ordinary least squares fit y = slope*x + intercept. Returns {slope,
/// intercept, r2}. Throws if fewer than two points.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;
};
[[nodiscard]] LinearFit fit_line(std::span<const double> xs, std::span<const double> ys);

}  // namespace realm::util
