// Console table / CSV emission for the benchmark harness. Every figure and
// table bench prints through TablePrinter so the output format matches the
// rows/series the paper reports.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace realm::util {

/// Column-aligned ASCII table with an optional title. Cells are strings;
/// numeric helpers format with fixed precision so sweeps line up visually.
class TablePrinter {
 public:
  explicit TablePrinter(std::string title = {}) : title_(std::move(title)) {}

  TablePrinter& header(std::vector<std::string> cols);
  TablePrinter& row(std::vector<std::string> cells);

  /// Render with box-drawing separators to the given stream.
  void print(std::ostream& os) const;

  /// Render as RFC-4180-ish CSV (no quoting of embedded commas; cells are
  /// generated internally and never contain them).
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  // Formatting helpers used by all benches.
  static std::string num(double v, int precision = 3);
  static std::string sci(double v, int precision = 2);
  static std::string pct(double v, int precision = 2);  ///< 0.231 -> "23.10%"

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace realm::util
