// Algebraic in-place fault correction (the multi-fault ABFT solve).
//
// The checksum screen localizes faults; this module repairs them without the
// O(m·k·n) recompute replay. Both solves rest on the linearity of the
// checksum identities. Write the error matrix E = C_observed − C_true. Then
//
//   plain column deviation   dc[j]  = Σ_i E(i,j)
//   weighted column deviation wdc[j] = Σ_i (i+1)·E(i,j)   (basis u = [1,2,…])
//   plain row deviation      dr[i]  = Σ_j E(i,j)
//   weighted row deviation   wdr[i] = Σ_j (j+1)·E(i,j)    (basis v = [1,2,…])
//
// For a column j holding exactly one error at row r of magnitude δ:
// dc[j] = δ and wdc[j] = (r+1)·δ, so r = wdc[j]/dc[j] − 1 and the patch is
// C(r,j) −= dc[j] — position AND magnitude from two numbers, the classic
// weighted-basis ABFT construction. Because the solve is per column, any
// number of simultaneous faults in DISTINCT columns (including several
// sharing a row) patch independently. The row-side solve is the transpose
// (c = wdr[i]/dr[i] − 1, patch C(i,c) −= dr[i]) and catches what the column
// solve cannot see: faults sharing a column, including pairs whose column
// deviations cancel.
//
// The predicted weighted sums reuse the existing fault-free prediction
// identities: uᵀ(A·W) = (uᵀA)·W (one weighted col-sum over int8 A plus the
// standard predict kernel) and (A·W)·v = A·(W·v) (the resident weighted
// weight basis ProtectedGemm::set_weights precomputes). Total patch cost is
// O(m·n + m·k + k·n) — orders of magnitude below the recompute replay.
//
// State machine: detect → try_patch → full re-screen → serve (kPatched), or
// on any inconsistency (inexact division, out-of-range index, dirty recheck)
// → kFailed → caller recomputes. The mandatory re-screen is what makes an
// accidentally-divisible wrong solve safe: a mispatch perturbs checksums the
// patch did not balance, the recheck stays dirty, and the recompute replay
// overwrites the accumulator wholesale (no undo needed).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "detect/detect.h"
#include "tensor/tensor.h"

namespace realm::detect::correct {

enum class PatchOutcome : std::uint8_t {
  kNoFault,  ///< every deviation is zero; accumulator left untouched
  kPatched,  ///< patches applied and the full re-screen came back clean
  kFailed,   ///< no consistent solve, or recheck still dirty: recompute
};

struct PatchResult {
  PatchOutcome outcome = PatchOutcome::kNoFault;
  std::size_t patches_applied = 0;  ///< elements mutated (0 for kNoFault)
  bool used_row_solve = false;      ///< the row-side (Plan B) solve fired
  /// Verdict of the mandatory post-patch re-screen (default-initialized for
  /// kNoFault, where nothing was mutated and nothing needs re-certifying).
  DetectionVerdict recheck;
};

/// Attempt the algebraic in-place correction of `acc` against the predicted
/// column checksum. Reads the same inputs as screen_accumulator plus the
/// weight operand (for the weighted column prediction (uᵀA)·W) and the
/// resident weighted basis W·v. Mutates `acc` only through solved patches;
/// on kFailed the caller must recompute (which overwrites `acc` entirely).
/// Never claims kPatched without a clean full re-screen.
[[nodiscard]] PatchResult try_patch(const DetectionConfig& cfg,
                                    const std::vector<std::int64_t>& predicted_cols,
                                    const tensor::MatI8& a8, const tensor::MatI8& w8,
                                    const std::vector<std::int64_t>& w_row_basis,
                                    const std::vector<std::int64_t>& w_row_wbasis,
                                    tensor::MatI32& acc);

}  // namespace realm::detect::correct
