#include "detect/detect.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "detect/correct.h"
#include "fault/memory.h"
#include "obs/trace.h"
#include "tensor/gemm.h"
#include "util/bitmath.h"

namespace realm::detect {

namespace {

/// Fill the checksum-derived fields of a verdict from a column deviation.
void load_column_stats(DetectionVerdict& v, const tensor::ColumnDeviation& dev,
                       int datapath_bits) {
  const std::int64_t clamped = util::clamp_to_bits(dev.msd_signed, datapath_bits);
  v.msd_signed = clamped;
  v.msd_abs = util::abs_u64(clamped);
  v.l1 = dev.l1;
  v.max_dev_pow2 = 0;
  for (const auto d : dev.diff) {
    if (d != 0) v.max_dev_pow2 = std::max(v.max_dev_pow2, util::ilog2_abs(d));
  }
}

}  // namespace

DetectionVerdict screen_accumulator(const DetectionConfig& cfg,
                                    const std::vector<std::int64_t>& predicted_cols,
                                    const tensor::MatI8& a8,
                                    const std::vector<std::int64_t>& w_row_basis,
                                    const tensor::MatI32& acc) {
  DetectionVerdict report;
  // Column side: predicted (eᵀA)·W vs observed eᵀC, MSD thresholding.
  const tensor::ColumnDeviation dev = tensor::column_deviation_from_predicted(predicted_cols, acc);
  load_column_stats(report, dev, cfg.msd_datapath_bits);

  bool flagged = report.msd_abs > cfg.msd_threshold;
  if (cfg.mode == CheckMode::kTwoSided) {
    for (std::size_t j = 0; j < dev.diff.size(); ++j) {
      if (dev.diff[j] != 0) report.fault_cols.push_back(j);
    }
    const std::vector<std::int64_t> predicted_rows =
        tensor::predict_row_checksum(a8, w_row_basis);
    const std::vector<std::int64_t> observed_rows = tensor::row_sums(acc);
    for (std::size_t i = 0; i < predicted_rows.size(); ++i) {
      if (util::sat_sub_i64(observed_rows[i], predicted_rows[i]) != 0) {
        report.fault_rows.push_back(i);
      }
    }
    // The row side must participate in the verdict, not just localization:
    // opposite-sign errors in one column cancel in every column statistic
    // (zero diff, zero MSD) but still perturb two row sums — the case
    // classical two-sided ABFT exists to catch.
    flagged = flagged || !report.fault_cols.empty() || !report.fault_rows.empty();
  }
  report.verdict = flagged ? Verdict::kDetected : Verdict::kClean;
  return report;
}

const char* to_string(Verdict v) noexcept {
  switch (v) {
    case Verdict::kClean: return "clean";
    case Verdict::kDetected: return "detected";
    case Verdict::kPatched: return "patched";
    case Verdict::kRecomputed: return "recomputed";
  }
  return "?";
}

ProtectedGemm::ProtectedGemm(DetectionConfig cfg) : cfg_(cfg) {
  if (cfg_.msd_datapath_bits < 1) {
    throw std::invalid_argument("ProtectedGemm: msd_datapath_bits must be >= 1");
  }
}

void ProtectedGemm::set_weights(const tensor::MatF& w) {
  const tensor::QuantParams qw = tensor::calibrate(w.flat());
  set_weights_quantized(tensor::quantize(w, qw), qw);
}

void ProtectedGemm::set_weights_quantized(tensor::MatI8 w8, tensor::QuantParams qw) {
  if (w8.empty()) throw std::invalid_argument("ProtectedGemm: empty weights");
  w8_ = std::move(w8);
  qw_ = qw;
  // Weight-stationary model: both checksum bases (W·e and eᵀW) and the SIMD
  // panels are computed once and stay resident with the weights, like the
  // Fig. 7 checksum row. Every protected GEMM (and its recompute replay)
  // then skips the O(k·n) pack.
  w_row_basis_ = tensor::row_sums(w8_);
  w_col_basis_ = tensor::col_sums(w8_);
  // Weighted ABFT basis W·v (v = [1,2,3,…]): resident like W·e so the
  // corrector's row-side solve A·(W·v) reuses the same predict kernel.
  w_row_wbasis_ = tensor::weighted_row_sums(w8_);
  w_packed_ = tensor::kernels::pack_b(w8_.data(), w8_.rows(), w8_.cols());
}

bool ProtectedGemm::verify_weight_integrity() const {
  if (w8_.empty()) throw std::logic_error("ProtectedGemm: set_weights() not called");
  if (tensor::row_sums(w8_) != w_row_basis_ || tensor::col_sums(w8_) != w_col_basis_) {
    return false;
  }
  // Panel leg: the packed SIMD image must still be the pack of w8_. A fresh
  // repack against a byte-compare is exact — any at-rest panel corruption is
  // caught, independent of value or position. Only meaningful when the
  // resident panels target the active tier/shape (otherwise every GEMM
  // repacks fresh and stale panels are never consumed).
  if (w_packed_.valid_for(tensor::kernels::active_tier(), w8_.rows(), w8_.cols())) {
    const tensor::kernels::PackedB repacked =
        tensor::kernels::pack_b(w8_.data(), w8_.rows(), w8_.cols());
    const std::span<const std::int16_t> fresh = repacked.raw_panels();
    const std::span<const std::int16_t> resident = w_packed_.raw_panels();
    if (fresh.size() != resident.size() ||
        !std::equal(fresh.begin(), fresh.end(), resident.begin())) {
      return false;
    }
  }
  return true;
}

std::uint64_t ProtectedGemm::corrupt_weights(const fault::MemoryFaultModel& memory,
                                             std::uint64_t op,
                                             std::vector<fault::FlipRecord>* record) {
  if (w8_.empty()) throw std::logic_error("ProtectedGemm: set_weights() not called");
  const std::uint64_t flips =
      memory.corrupt(fault::Component::kWeights, op, w8_.flat(), record);
  if (flips != 0) {
    // The load strike lands before packing: the panels are packed from the
    // corrupted image, so the GEMM consumes it consistently and only the
    // bases (captured from the clean image) can expose the damage.
    w_packed_ = tensor::kernels::pack_b(w8_.data(), w8_.rows(), w8_.cols());
  }
  return flips;
}

std::uint64_t ProtectedGemm::corrupt_panels(const fault::MemoryFaultModel& memory,
                                            std::uint64_t op,
                                            std::vector<fault::FlipRecord>* record) {
  if (w8_.empty()) throw std::logic_error("ProtectedGemm: set_weights() not called");
  return memory.corrupt16(fault::Component::kPackedPanels, op, w_packed_.mutable_panels(),
                          record);
}

ProtectedGemmResult ProtectedGemm::run(const tensor::MatF& a,
                                       const fault::FaultInjector& injector,
                                       util::Rng& rng) const {
  tensor::QuantParams qa{};
  tensor::MatI8 a8;
  {
    // The serving path submits pre-quantized activations, so this span only
    // appears on the float front door.
    const obs::ScopedSpan quant_span(obs::SpanKind::kQuantize);
    qa = tensor::calibrate(a.flat());
    a8 = tensor::quantize(a, qa);
  }
  return run_quantized(a8, qa, injector, rng);
}

ProtectedGemmResult ProtectedGemm::run_quantized(const tensor::MatI8& a8,
                                                 tensor::QuantParams qa,
                                                 const fault::FaultInjector& injector,
                                                 util::Rng& rng) const {
  ProtectedGemmResult result;
  run_quantized_into(a8, qa, injector, rng, result);
  return result;
}

void ProtectedGemm::run_quantized_into(const tensor::MatI8& a8, tensor::QuantParams qa,
                                       const fault::FaultInjector& injector, util::Rng& rng,
                                       ProtectedGemmResult& result,
                                       const fault::MemoryFaultModel* memory,
                                       std::uint64_t op) const {
  if (w8_.empty()) throw std::logic_error("ProtectedGemm: set_weights() not called");
  if (a8.cols() != w8_.rows()) {
    throw std::invalid_argument("ProtectedGemm: activation/weight dim mismatch");
  }

  // Stage spans nest under the caller's tile span via the thread-local trace
  // context (obs/trace.h) — no-ops outside a traced request and compiled out
  // entirely under REALM_TRACE=OFF.
  const bool strike_acts =
      memory != nullptr && memory->enabled(fault::Component::kActivations);
  std::uint64_t activation_flips = 0;
  std::vector<std::int64_t> predicted_cols;
  const tensor::MatI8* gemm_a = &a8;
  if (strike_acts) {
    // Per-request activation strike: the array consumes a working copy hit
    // by the kActivations stream; the caller's a8 stands in for the golden
    // producer copy. The predicted column checksum comes from that CLEAN
    // copy — the checksum row travels with A from its fault-free producer —
    // so the column screen sees the corruption; the row side (predicted
    // below from the consumed image) is blind to it by construction.
    result.a8_work = a8;
    activation_flips =
        memory->corrupt(fault::Component::kActivations, op, result.a8_work.flat());
    gemm_a = &result.a8_work;
    predicted_cols = tensor::predict_col_checksum(a8, w8_);
    const obs::ScopedSpan gemm_span(obs::SpanKind::kGemm);
    tensor::gemm_i8_prepacked(*gemm_a, w8_, w_packed_, result.acc);
  } else {
    // The fused store-phase reduction of the multiply IS the predicted column
    // checksum: injection perturbs the accumulator only after this line, so
    // the fused sums are eᵀ(A·W) of the true product, which equals (eᵀA)·W
    // exactly (integer checksum identity — cross-checked in the test suite).
    // This models the dedicated fault-free checksum datapath of Fig. 7 and
    // replaces the scalar O(k·n) predict_col_checksum pass.
    const obs::ScopedSpan gemm_span(obs::SpanKind::kGemm);
    tensor::gemm_i8_prepacked(a8, w8_, w_packed_, result.acc, &predicted_cols);
  }
  const fault::InjectionReport injection = injector.inject(result.acc.flat(), rng);

  {
    const obs::ScopedSpan screen_span(obs::SpanKind::kScreen);
    result.report = screen_accumulator(cfg_, predicted_cols, *gemm_a, w_row_basis_, result.acc);
  }
  result.report.injection = injection;
  result.report.component_flips[static_cast<std::size_t>(fault::Component::kAccumulator)] =
      injection.flipped_bits;
  result.report.component_flips[static_cast<std::size_t>(fault::Component::kActivations)] =
      activation_flips;

  if (result.report.verdict == Verdict::kDetected && cfg_.patch_on_detect) {
    // Algebraic in-place correction: solve fault positions and magnitudes
    // from the plain + weighted deviations and patch the accumulator, at
    // O(m·n + m·k + k·n) instead of the O(m·k·n) replay. try_patch re-screens
    // with the full criteria internally; only a clean recheck claims success.
    const obs::ScopedSpan patch_span(obs::SpanKind::kPatch);
    const correct::PatchResult patched = correct::try_patch(
        cfg_, predicted_cols, a8, w8_, w_row_basis_, w_row_wbasis_, result.acc);
    if (patched.outcome == correct::PatchOutcome::kPatched) {
      result.report.verdict = Verdict::kPatched;
    }
  }
  if (result.report.verdict == Verdict::kDetected && cfg_.recompute_on_detect) {
    // Fault-free replay of the tile; re-screen with the full criteria so a
    // correction is only claimed when the recheck actually comes back clean
    // (a column-only recheck would certify row-detected fault classes it
    // never re-examined). The replay consumes the caller's a8 — on the
    // memory-model path that is a re-fetch of the golden producer copy, so
    // an activation strike is recomputed away just like an accumulator one.
    {
      const obs::ScopedSpan recompute_span(obs::SpanKind::kRecompute);
      tensor::gemm_i8_prepacked(a8, w8_, w_packed_, result.acc);
    }
    const obs::ScopedSpan recheck_span(obs::SpanKind::kRecheck);
    if (screen_accumulator(cfg_, predicted_cols, a8, w_row_basis_, result.acc).verdict ==
        Verdict::kClean) {
      result.report.verdict = Verdict::kRecomputed;
    }
  }

  {
    const obs::ScopedSpan dequant_span(obs::SpanKind::kDequantize);
    tensor::dequantize_acc(result.acc, qa, qw_, result.output);
  }
}

std::uint64_t calibrate_msd_threshold(const ProtectedGemm& pg, std::size_t m,
                                      std::size_t golden_runs, util::Rng& rng,
                                      ActivationSpec spec) {
  switch (spec.dist) {
    case ActivationSpec::Dist::kNormal:
      if (!(spec.p1 > 0.0)) {
        throw std::invalid_argument("calibrate_msd_threshold: normal stddev must be > 0");
      }
      break;
    case ActivationSpec::Dist::kUniform:
      if (!(spec.p1 > spec.p0)) {
        throw std::invalid_argument("calibrate_msd_threshold: uniform needs hi > lo");
      }
      break;
  }
  const std::size_t k = pg.weights().rows();
  std::uint64_t worst = 0;
  const fault::NullInjector none;
  for (std::size_t run = 0; run < golden_runs; ++run) {
    tensor::MatF a(m, k);
    for (auto& x : a.flat()) {
      x = static_cast<float>(spec.dist == ActivationSpec::Dist::kNormal
                                 ? rng.normal(spec.p0, spec.p1)
                                 : rng.uniform(spec.p0, spec.p1));
    }
    const ProtectedGemmResult r = pg.run(a, none, rng);
    worst = std::max(worst, r.report.msd_abs);
  }
  return worst;
}

}  // namespace realm::detect
