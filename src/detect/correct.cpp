#include "detect/correct.h"

#include <cstdint>
#include <vector>

#include "tensor/checksum.h"
#include "tensor/checksum_kernels.h"
#include "util/bitmath.h"

namespace realm::detect::correct {

namespace {

/// One solved fault: subtract `delta` from acc(row, col).
struct Patch {
  std::size_t row = 0;
  std::size_t col = 0;
  std::int64_t delta = 0;
};

/// Solve the weighted-basis equation for one line (a column or a row):
/// a single fault at weighted position p satisfies weighted = (p+1)·plain,
/// so p = weighted/plain − 1. Inexact division or an index outside
/// [0, extent) means the line does not hold exactly one fault (or the fault
/// pattern aliases); the caller leaves it for the recompute fallback.
bool solve_line(std::int64_t plain, std::int64_t weighted, std::size_t extent,
                std::size_t& index) {
  if (plain == 0 || weighted % plain != 0) return false;
  const std::int64_t pos1 = weighted / plain;  // 1-based position
  if (pos1 < 1 || static_cast<std::uint64_t>(pos1) > extent) return false;
  index = static_cast<std::size_t>(pos1) - 1;
  return true;
}

}  // namespace

PatchResult try_patch(const DetectionConfig& cfg,
                      const std::vector<std::int64_t>& predicted_cols, const tensor::MatI8& a8,
                      const tensor::MatI8& w8, const std::vector<std::int64_t>& w_row_basis,
                      const std::vector<std::int64_t>& w_row_wbasis, tensor::MatI32& acc) {
  PatchResult res;
  const std::size_t m = acc.rows();
  const std::size_t n = acc.cols();

  // Plain deviations on both sides — the same identities the screen used.
  const std::vector<std::int64_t> obs_cols = tensor::col_sums(acc);
  const std::vector<std::int64_t> obs_rows = tensor::row_sums(acc);
  const std::vector<std::int64_t> pred_rows = tensor::predict_row_checksum(a8, w_row_basis);
  std::vector<std::int64_t> dc(n);
  std::vector<std::int64_t> dr(m);
  bool any = false;
  for (std::size_t j = 0; j < n; ++j) {
    dc[j] = util::sat_sub_i64(obs_cols[j], predicted_cols[j]);
    any = any || dc[j] != 0;
  }
  for (std::size_t i = 0; i < m; ++i) {
    dr[i] = util::sat_sub_i64(obs_rows[i], pred_rows[i]);
    any = any || dr[i] != 0;
  }
  if (!any) {
    // A "detected" verdict with zero deviations on both sides has nothing to
    // solve against; refuse to touch the accumulator.
    res.outcome = PatchOutcome::kNoFault;
    return res;
  }

  // Weighted deviations, computed lazily only on this (cold) correction
  // path: predicted uᵀ(A·W) = (uᵀA)·W reuses the standard predict kernel on
  // the weighted activation checksum, and (A·W)·v = A·(W·v) reuses the row
  // predict kernel on the resident weighted weight basis.
  const std::vector<std::int64_t> ua = tensor::weighted_col_sums(a8);
  std::vector<std::int64_t> pred_wcols(n);
  tensor::kernels::predict_col_checksum(ua.data(), w8.data(), w8.rows(), w8.cols(),
                                        pred_wcols.data());
  const std::vector<std::int64_t> obs_wcols = tensor::weighted_col_sums(acc);
  const std::vector<std::int64_t> pred_wrows = tensor::predict_row_checksum(a8, w_row_wbasis);
  const std::vector<std::int64_t> obs_wrows = tensor::weighted_row_sums(acc);

  std::vector<std::int64_t> wdr(m);
  for (std::size_t i = 0; i < m; ++i) {
    wdr[i] = util::sat_sub_i64(obs_wrows[i], pred_wrows[i]);
  }

  // Plan A — column solve: every column with a nonzero deviation is solved
  // independently, so simultaneous faults in distinct columns (including
  // several sharing one row) all patch in one pass. Each accepted patch is
  // subtracted from the row-side residuals so Plan B only chases what the
  // column solve could not see.
  std::vector<Patch> patches;
  for (std::size_t j = 0; j < n; ++j) {
    if (dc[j] == 0) continue;
    const std::int64_t wdc = util::sat_sub_i64(obs_wcols[j], pred_wcols[j]);
    std::size_t r = 0;
    if (!solve_line(dc[j], wdc, m, r)) continue;
    patches.push_back({r, j, dc[j]});
    dr[r] = util::sat_sub_i64(dr[r], dc[j]);
    wdr[r] = util::sat_sub_i64(wdr[r], static_cast<std::int64_t>(j + 1) * dc[j]);
  }

  // Plan B — row solve over the residuals: catches the fault classes whose
  // column statistics alias (two faults sharing a column, opposite-sign
  // pairs that cancel in every column sum) but whose row deviations do not.
  for (std::size_t i = 0; i < m; ++i) {
    if (dr[i] == 0) continue;
    std::size_t c = 0;
    if (!solve_line(dr[i], wdr[i], n, c)) continue;
    patches.push_back({i, c, dr[i]});
    res.used_row_solve = true;
  }

  // Apply. The patched value is the algebraically reconstructed true
  // element, which by construction fits int32 when the solve was right; a
  // value off the rails proves the solve was wrong, so skip it and let the
  // recheck fail into recompute.
  for (const Patch& p : patches) {
    const std::int64_t patched =
        util::sat_sub_i64(static_cast<std::int64_t>(acc(p.row, p.col)), p.delta);
    if (patched < INT32_MIN || patched > INT32_MAX) continue;
    acc(p.row, p.col) = static_cast<std::int32_t>(patched);
    ++res.patches_applied;
  }

  // Mandatory full re-screen: a patch is only trusted when the complete
  // criteria (MSD threshold, per-column deviations, row-side identity) come
  // back clean. This is what defuses an accidentally-divisible wrong solve —
  // a mispatch leaves some checksum unbalanced and lands here as kFailed.
  res.recheck = screen_accumulator(cfg, predicted_cols, a8, w_row_basis, acc);
  res.outcome = (res.patches_applied > 0 && res.recheck.verdict == Verdict::kClean)
                    ? PatchOutcome::kPatched
                    : PatchOutcome::kFailed;
  return res;
}

}  // namespace realm::detect::correct
