// Protected-GEMM detection pipeline (the paper's end-to-end flow, Fig. 3+7).
//
// ProtectedGemm wires together every layer of the stack: float operands are
// quantized through realm::tensor::{calibrate,quantize}, multiplied on the
// INT8 datapath (gemm_i8), attacked by a pluggable realm::fault::FaultInjector
// modelling timing upsets in the accumulator, and then screened by the
// statistical unit: the predicted column checksum (eᵀA)·B is compared against
// the observed eᵀC, the mean-signed-deviation statistic (MSD) is thresholded,
// and — when two-sided checking is enabled — the row×column intersection of
// nonzero deviations localizes the faulty elements. A detected GEMM is
// corrected algebraically in place when the weighted-basis solve pins the
// faults (src/detect/correct.h), falling back to fault-free recompute (the
// paper's fallback: replay the tile) only when the patched recheck is dirty.
//
// The weight operand is stationary, matching the accelerator: set_weights()
// quantizes once and precomputes both checksum bases — W·e for the row-side
// check (O(m·k) per GEMM) and eᵀW, kept resident like the hardware's Fig. 7
// checksum row (consumed by weight-integrity scrubbing and the reduced-width
// realm::sa datapath work).
//
// The column side's predicted checksum (eᵀA)·W is NOT computed as a separate
// O(k·n) pass: the GEMM kernels fuse the eᵀC reduction into their store
// phase, and because fault injection in this model perturbs the accumulator
// AFTER the multiply, the fused sums are the column checksum of the true
// product — exactly (eᵀA)·W by the checksum identity. This models Fig. 7's
// dedicated (fault-free) checksum datapath running alongside the array; the
// observed side is then re-read from the possibly-faulted accumulator by the
// SIMD column-sum screen. Total per-run checking cost is O(m·k + m·n), all
// vectorized — the old scalar O(k·n) prediction term is gone entirely.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fault/fault.h"
#include "tensor/checksum.h"
#include "tensor/gemm_kernels.h"
#include "tensor/quant.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace realm::fault {
class MemoryFaultModel;  // fault/memory.h — at-rest weight/panel/activation strikes
}

namespace realm::detect {

/// What the detector concluded about one protected GEMM.
enum class Verdict : std::uint8_t {
  kClean,       ///< no deviation above threshold; output served as-is
  kDetected,    ///< fault flagged, correction disabled or recheck still dirty
  kPatched,     ///< fault flagged, algebraic in-place patch verified clean
  kRecomputed,  ///< fault flagged, full recompute verified clean
};

[[nodiscard]] const char* to_string(Verdict v) noexcept;

/// True when the output was repaired and re-verified clean, by either
/// correction mode (in-place patch or full recompute).
[[nodiscard]] constexpr bool corrected(Verdict v) noexcept {
  return v == Verdict::kPatched || v == Verdict::kRecomputed;
}

/// How the MSD statistic is compared against the threshold.
enum class CheckMode : std::uint8_t {
  kMsdOnly,   ///< one-sided: flag iff |MSD| > threshold (paper default)
  kTwoSided,  ///< additionally flag any nonzero per-column deviation and
              ///< compute row deviations for localization
};

struct DetectionConfig {
  /// |MSD| strictly greater than this flags a fault. Checksums are exact
  /// integer identities, so 0 gives zero false positives on golden runs.
  std::uint64_t msd_threshold = 0;
  CheckMode mode = CheckMode::kTwoSided;
  /// Try the algebraic in-place patch first when a fault is flagged: solve
  /// position and magnitude from the plain + weighted deviations, patch the
  /// accumulator, and re-screen. Orders of magnitude cheaper than replaying
  /// the tile (O(m·n + m·k + k·n) vs O(m·k·n)).
  bool patch_on_detect = true;
  /// Recompute the GEMM (fault-free replay) when a fault is flagged and the
  /// patch was disabled or its recheck came back dirty.
  bool recompute_on_detect = true;
  /// Width of the modeled MSD accumulator datapath; the signed MSD is clamped
  /// with util::clamp_to_bits before thresholding (64 = full precision).
  int msd_datapath_bits = 64;
};

struct DetectionVerdict {
  Verdict verdict = Verdict::kClean;
  std::int64_t msd_signed = 0;  ///< after datapath clamping
  std::uint64_t msd_abs = 0;
  std::uint64_t l1 = 0;
  /// floor(log2(max |per-column deviation|)); 0 when clean. The magnitude
  /// axis of the paper's critical-region map (Fig. 6).
  int max_dev_pow2 = 0;
  /// Columns/rows with nonzero deviation (kTwoSided only); their cross
  /// product localizes candidate faulty elements.
  std::vector<std::size_t> fault_cols;
  std::vector<std::size_t> fault_rows;
  fault::InjectionReport injection;  ///< what the injector reported doing
  /// Bit flips injected DURING this run, by memory-hierarchy component:
  /// kAccumulator mirrors injection.flipped_bits, kActivations counts the
  /// memory model's pre-GEMM activation strikes. Weight/panel flips happen at
  /// load/rest time (corrupt_weights/corrupt_panels), outside any single run,
  /// so their slots stay zero here and are tallied by the owner of the tile.
  fault::ComponentFlips component_flips{};

  [[nodiscard]] bool faulty() const noexcept { return verdict != Verdict::kClean; }
};

struct ProtectedGemmResult {
  tensor::MatI32 acc;      ///< final accumulator (patched or recomputed when corrected)
  tensor::MatF output;     ///< dequantized float output of `acc`
  DetectionVerdict report;
  /// Working copy of the activation operand when the memory fault model is
  /// live: the GEMM consumes this (possibly corrupted) image while the
  /// caller's a8 stands in for the producer's golden copy. Recycled across
  /// runs like acc/output; empty on the injector-only path.
  tensor::MatI8 a8_work;
};

/// The full-width (int64) checksum screen, exposed as a standalone step:
/// exactly what run_quantized* applies internally — MSD thresholding of the
/// clamped column statistic and, in two-sided mode, per-column deviations
/// plus the row-side identity from `a8` and the resident basis `W·e`. The
/// returned verdict is kClean or kDetected (correction is the pipeline's
/// job, not the screen's) and `injection` is left default-initialized.
///
/// Exposed so external datapath models can re-screen the same accumulator
/// the pipeline saw: realm::sa screens one faulted accumulator through
/// several reduced-width register models and uses this as the int64
/// reference verdict in its coverage comparison.
[[nodiscard]] DetectionVerdict screen_accumulator(const DetectionConfig& cfg,
                                                  const std::vector<std::int64_t>& predicted_cols,
                                                  const tensor::MatI8& a8,
                                                  const std::vector<std::int64_t>& w_row_basis,
                                                  const tensor::MatI32& acc);

// Thread-safety contract (load-bearing for realm::serve): after set_weights*
// returns, a ProtectedGemm is immutable — every run* overload and
// verify_weight_integrity() only read members, so any number of threads may
// call them concurrently on the same const instance. Each caller must supply
// its own Rng and (for run_quantized_into) its own result buffer; the GEMM
// inside routes through util::global_pool(), whose nesting rule makes it run
// inline on pool workers and serialize top-level callers (see threadpool.h).
// Calling set_weights* concurrently with any run* is a data race.
class ProtectedGemm {
 public:
  explicit ProtectedGemm(DetectionConfig cfg = {});

  /// Calibrate + quantize the stationary weight operand and precompute its
  /// checksum basis W·e. Must be called before run()/run_quantized().
  void set_weights(const tensor::MatF& w);

  /// Use pre-quantized weights directly (tests and the bench drive this).
  void set_weights_quantized(tensor::MatI8 w8, tensor::QuantParams qw);

  /// Full pipeline on float activations: calibrate+quantize A, multiply,
  /// inject, detect/correct, dequantize.
  [[nodiscard]] ProtectedGemmResult run(const tensor::MatF& a,
                                        const fault::FaultInjector& injector,
                                        util::Rng& rng) const;

  /// Quantized-domain pipeline (skips activation calibration; exact control
  /// over the INT8 operands for tests).
  [[nodiscard]] ProtectedGemmResult run_quantized(const tensor::MatI8& a8,
                                                  tensor::QuantParams qa,
                                                  const fault::FaultInjector& injector,
                                                  util::Rng& rng) const;

  /// Steady-state serving variant: recycles `result`'s accumulator and output
  /// buffers (resized only on shape change), so back-to-back protected GEMMs
  /// pay no per-run allocation or page faults. The report is reset; all other
  /// semantics identical to run_quantized.
  ///
  /// When `memory` is non-null and its activation BER is nonzero, the run
  /// models a per-request activation strike: a8 is copied into the result's
  /// working buffer, corrupted from the counter-based stream
  /// component_stream(seed, kActivations, op), and the GEMM consumes the
  /// corrupted image. The predicted column checksum is then computed from the
  /// CLEAN a8 (the checksum row travels with A from its fault-free producer,
  /// exactly like the resident eᵀW row travels with W), so the column screen
  /// is what catches activation corruption; the row side predicts from the
  /// same corrupted image the array consumed and stays blind to it. Patch and
  /// recompute both rehabilitate from the clean a8 (a recompute re-fetches
  /// the golden DRAM copy), so corrected outputs are bit-equal to the
  /// fault-free reference. memory == nullptr (or activation BER 0) is
  /// bit-identical to the injector-only path.
  void run_quantized_into(const tensor::MatI8& a8, tensor::QuantParams qa,
                          const fault::FaultInjector& injector, util::Rng& rng,
                          ProtectedGemmResult& result,
                          const fault::MemoryFaultModel* memory = nullptr,
                          std::uint64_t op = 0) const;

  /// Memory-hierarchy strike on the resident weight tile (the kWeights
  /// component: a load-time upset at set_weights/swap_tile). Flips bits of
  /// the quantized image and repacks the SIMD panels from the corrupted
  /// image — the accelerator packs whatever it loaded, so the GEMM consumes
  /// the corruption and only the base-capture scrub can notice. Returns the
  /// number of bit flips applied. Must not race any run* call (same rule as
  /// set_weights*).
  std::uint64_t corrupt_weights(const fault::MemoryFaultModel& memory, std::uint64_t op,
                                std::vector<fault::FlipRecord>* record = nullptr);

  /// Memory-hierarchy strike on the packed panels only (the kPackedPanels
  /// component: an at-rest SRAM upset between requests). The quantized image
  /// and its bases stay clean, so the repack-compare leg of the scrub is
  /// what catches it. Vacuous on the portable tier, which keeps no panels.
  std::uint64_t corrupt_panels(const fault::MemoryFaultModel& memory, std::uint64_t op,
                               std::vector<fault::FlipRecord>* record = nullptr);

  [[nodiscard]] const tensor::MatI8& weights() const noexcept { return w8_; }
  [[nodiscard]] tensor::QuantParams weight_params() const noexcept { return qw_; }
  [[nodiscard]] const DetectionConfig& config() const noexcept { return cfg_; }

  /// The resident checksum bases (set_weights precomputes all of them).
  [[nodiscard]] const std::vector<std::int64_t>& weight_row_basis() const noexcept {
    return w_row_basis_;
  }
  [[nodiscard]] const std::vector<std::int64_t>& weight_col_basis() const noexcept {
    return w_col_basis_;
  }
  /// Weighted row basis W·v with v = [1,2,3,…]: the second checksum basis of
  /// the classic ABFT construction. The weighted row sum of the true product,
  /// A·(W·v), divided by the plain row deviation yields the faulty column
  /// index — how the corrector separates simultaneous faults (see correct.h).
  [[nodiscard]] const std::vector<std::int64_t>& weight_row_wbasis() const noexcept {
    return w_row_wbasis_;
  }

  /// The resident SIMD weight panels (packed once at set_weights). Immutable
  /// after packing — safe to read from any number of concurrent GEMMs; the
  /// serving layer's unprotected baseline reuses them so raw-vs-protected
  /// comparisons share identical weight state.
  [[nodiscard]] const tensor::kernels::PackedB& weight_panels() const noexcept {
    return w_packed_;
  }

  /// Scrub the stationary weight tile against its resident bases: recompute
  /// eᵀW and W·e from w8_ and compare with the values captured at
  /// set_weights; then repack the panels from w8_ and byte-compare against
  /// the resident panels (the kPackedPanels leg — exact, so ANY panel
  /// corruption is caught; skipped when the resident panels were packed for
  /// a different tier/shape and would be repacked at use anyway). The sum
  /// legs are exact int64 identities: any SINGLE net weight fault is caught
  /// unconditionally (it perturbs exactly one row sum and one column sum),
  /// and a multi-fault pattern escapes only by cancelling in every row AND
  /// every column simultaneously (e.g. a ±δ 2x2 anti-diagonal — a measure-
  /// zero alignment under independent bit flips). False means
  /// the weight memory (not a GEMM) was corrupted — the class of fault
  /// recompute-on-detect cannot fix, because replaying the multiply reuses
  /// the same bad operand; recovery is reloading from the golden host copy.
  [[nodiscard]] bool verify_weight_integrity() const;

 private:
  DetectionConfig cfg_;
  tensor::MatI8 w8_;
  tensor::QuantParams qw_;
  std::vector<std::int64_t> w_row_basis_;   ///< W·e, resident with the weights
  std::vector<std::int64_t> w_col_basis_;   ///< eᵀW, resident likewise (Fig. 7 row)
  std::vector<std::int64_t> w_row_wbasis_;  ///< W·v, v=[1,2,…] (weighted ABFT basis)
  tensor::kernels::PackedB w_packed_;      ///< SIMD panels, resident likewise
};

/// Distribution of the synthetic activations calibrate_msd_threshold draws.
/// Calibration must see value ranges like production traffic: the activation
/// scale (and therefore which accumulator bits real deviations can reach)
/// depends on it, so callers describe their regime instead of inheriting a
/// hardcoded standard normal.
struct ActivationSpec {
  enum class Dist : std::uint8_t {
    kNormal,   ///< normal(p0 = mean, p1 = stddev); stddev must be > 0
    kUniform,  ///< uniform [p0 = lo, p1 = hi); requires hi > lo
  };
  Dist dist = Dist::kNormal;
  double p0 = 0.0;
  double p1 = 1.0;

  /// SmoothQuant-style activations: roughly normal with rare outlier scale.
  [[nodiscard]] static ActivationSpec normal(double mean, double stddev) {
    return {Dist::kNormal, mean, stddev};
  }
  [[nodiscard]] static ActivationSpec uniform(double lo, double hi) {
    return {Dist::kUniform, lo, hi};
  }
};

/// Run `golden_runs` fault-free GEMMs over random activations drawn from
/// `spec` and return the largest |MSD| observed (always 0 for exact integer
/// checksums — the call exists so threshold calibration is an explicit,
/// testable step rather than an assumption baked into DetectionConfig, and so
/// reduced-width datapath models can calibrate against a realistic activation
/// range). Throws std::invalid_argument on a degenerate spec.
[[nodiscard]] std::uint64_t calibrate_msd_threshold(const ProtectedGemm& pg, std::size_t m,
                                                    std::size_t golden_runs, util::Rng& rng,
                                                    ActivationSpec spec = {});

}  // namespace realm::detect
