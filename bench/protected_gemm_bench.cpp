// Throughput comparison: raw gemm_i8 vs the full ProtectedGemm pipeline
// (quantize + GEMM + checksum screen). Reports absolute GOPS and the
// protection overhead, which the paper argues is amortized by the O(m·k·n)
// GEMM dominating the O(k·n + m·k + m·n) checks (true for large m; the
// column prediction (eᵀA)·W is the dominant check term at small m).
//
// --json emits a machine-readable record per shape (GOPS, overhead %,
// detect latency, and the patch-vs-recompute correction latency split, kernel
// tier, thread count) that CI archives per commit and gates against
// bench/baseline.json.
#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "detect/detect.h"
#include "fault/fault.h"
#include "fault/memory.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sa/datapath.h"
#include "serve/engine.h"
#include "serve/tile_grid.h"
#include "tensor/checksum_kernels.h"
#include "tensor/gemm.h"
#include "tensor/gemm_kernels.h"
#include "tensor/quant.h"
#include "tensor/tensor.h"
#include "util/clock.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/threadpool.h"

// The bench target compiles with REALM_GIT_SHA from CMake; keep a fallback so
// a bare `g++ bench/...` still builds.
#ifndef REALM_GIT_SHA
#define REALM_GIT_SHA "unknown"
#endif

namespace {

// All wall-clock reads go through util::now_ns() — src/util/clock.h is the
// repo's only raw-clock home (realm-lint's clock-source rule enforces this).
double seconds_since(std::int64_t t0_ns) { return realm::util::seconds_since_ns(t0_ns); }

/// Provenance block shared by every JSON writer: ties an archived record to
/// the commit and tracing state that produced it. compare_baseline.py
/// tolerates unknown keys, so these are purely additive. `trace` is the
/// runtime flag (only --serve-async can turn it on); realm_trace_compiled
/// records whether the tracer was compiled into hot paths at all.
void write_provenance(std::ostream& os, bool trace) {
  os << "  \"git_sha\": \"" << REALM_GIT_SHA << "\",\n";
  os << "  \"realm_trace_compiled\": " << (realm::obs::kTraceCompiledIn ? "true" : "false")
     << ",\n";
  os << "  \"trace\": " << (trace ? "true" : "false") << ",\n";
}

realm::tensor::MatI8 random_i8(std::size_t rows, std::size_t cols, realm::util::Rng& rng) {
  realm::tensor::MatI8 m(rows, cols);
  for (auto& x : m.flat()) x = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
  return m;
}

struct ShapeResult {
  std::size_t m, k, n;
  double raw_gops = 0;      ///< unprotected weight-stationary gemm (prepacked W)
  double prot_gops = 0;     ///< full ProtectedGemm pipeline, clean runs
  double overhead_pct = 0;  ///< detect_ms relative to the raw GEMM time, in %
  /// Everything protection adds on a clean run (fused checksum prediction +
  /// SIMD screen + dequantize): clean protected minus raw, taken per
  /// interleaved block so frequency drift between the two loops cancels. Raw
  /// uses the same prepacked weight panels as ProtectedGemm, so packing cost
  /// cancels out of the diff too.
  double detect_ms = 0;
  double patch_ms = 0;      ///< detect + in-place algebraic patch + re-screen: injected - clean
  double recompute_ms = 0;  ///< detect + recompute replay + recheck: injected - clean
  std::string verdict;      ///< verdict of the last injected run (patch-enabled path)
};

int usage() {
  std::cerr << "usage: protected_gemm_bench [--csv] [--threads N] [--repeat N] [--json FILE]"
               " [--smoke] [--serve] [--serve-async [--fault-model] [--trace [FILE]]"
               " [--metrics [FILE]]] [--sa]\n"
            << "  --csv        emit CSV instead of a box-drawn table\n"
            << "  --threads N  total GEMM threads (default 1; sets the global pool).\n"
            << "               With --serve/--serve-async: engine workers instead\n"
            << "  --repeat N   repetitions per measurement, run as interleaved\n"
            << "               raw/protected pairs (default: auto, sized so each cell\n"
            << "               measures >= ~50ms of work). With --serve: batches\n"
            << "  --json FILE  also write a machine-readable record (for CI archival\n"
            << "               and the baseline regression gate)\n"
            << "  --smoke      tiny shape set (128^3 plus a ragged edge shape); paired\n"
            << "               with --repeat 1 it drives every SIMD reduction and fused\n"
            << "               path once under the sanitizer CI leg\n"
            << "  --serve      batched serving mode: drive a TileGrid through the\n"
            << "               ServeEngine and report requests/s, p50/p99 latency, and\n"
            << "               per-request screen overhead (raw vs protected tiles)\n"
            << "  --serve-async  continuous-batching mode: multi-tenant submit/poll\n"
            << "               traffic with mixed priorities and shapes, a tile-by-tile\n"
            << "               weight hot-swap mid-stream, and per-tenant req/s +\n"
            << "               sliding-window p50/p99; exits nonzero on any dropped\n"
            << "               request or wrong verdict (the hot-swap-under-load gate)\n"
            << "  --fault-model  (with --serve-async) route the injected subset's\n"
            << "               activations through the memory-hierarchy fault model\n"
            << "               (fault::MemoryFaultModel); the JSON record reports the\n"
            << "               per-component flip tallies\n"
            << "  --trace [FILE]  (with --serve-async) record per-request span\n"
            << "               timelines on the measured engine and export Chrome\n"
            << "               trace-event JSON (default trace.json; open in Perfetto\n"
            << "               or chrome://tracing)\n"
            << "  --metrics [FILE]  (with --serve-async) dump the Prometheus text\n"
            << "               exposition of the engine/grid metrics after the\n"
            << "               measured phase (default metrics.prom)\n"
            << "  --sa         reduced-width datapath mode: time the realm::sa screen\n"
            << "               at several register widths/overflow semantics against\n"
            << "               the exact int64 reductions (wrap rides SIMD, saturate\n"
            << "               is the scalar register model)\n";
  return 2;
}

/// Reduced-width screen cost: one accumulator-sized pair of matrices, the
/// sa::screen at each (bits, overflow) combination vs the exact int64 column
/// + row reductions the full-precision screen pays. Not CI-gated — the
/// interesting signal is the wrap-vs-saturate gap (SIMD reduction + truncate
/// vs scalar ordered register model), which bounds what a software fallback
/// of the narrow hardware datapath would cost.
int sa_main(bool csv, bool smoke, long threads, int repeat, const std::string& json_path) {
  namespace rt = realm::tensor;
  realm::util::set_global_threads(static_cast<std::size_t>(threads));
  realm::util::Rng rng(0x5aab);

  const std::size_t m = smoke ? 64 : 512;
  const std::size_t n = smoke ? 96 : 1024;
  rt::MatI32 truth(m, n), faulted(m, n);
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const auto v = static_cast<std::int32_t>(rng.uniform_int(-2'000'000, 2'000'000));
    truth.flat()[i] = v;
    faulted.flat()[i] = v;
  }
  faulted.flat()[truth.size() / 2] += 1 << 20;  // keep the screens honest
  const int reps = repeat > 0 ? repeat : (smoke ? 5 : 50);

  realm::util::TablePrinter table(
      std::string("protected_gemm_bench --sa (reduced-width screen of a ") + std::to_string(m) +
      "x" + std::to_string(n) + " accumulator, tier=" +
      realm::tensor::kernels::to_string(realm::tensor::kernels::active_tier()) +
      ", threads=" + std::to_string(threads) + ")");
  table.header({"datapath", "bits", "screen_ms", "flagged"});

  struct Row {
    std::string datapath;
    int bits;
    double ms;
    bool flagged;
  };
  std::vector<Row> rows;

  // Exact int64 reference reductions (what the full-precision screen pays).
  // Its verdict is measured too: a 64-bit wrap screen cannot truncate
  // anything an int32 accumulator produces, so it IS the int64 verdict.
  {
    const bool ref_flagged =
        realm::sa::screen(truth, faulted, {64, realm::sa::Overflow::kWrap, 0, true}).flagged;
    std::vector<std::int64_t> cols_out(n), rows_out(m);
    auto t0 = realm::util::now_ns();
    for (int r = 0; r < reps; ++r) {
      realm::tensor::kernels::col_sums_i32(faulted.data(), m, n, cols_out.data());
      realm::tensor::kernels::row_sums_i32(faulted.data(), m, n, rows_out.data());
    }
    rows.push_back({"int64 exact", 64, seconds_since(t0) / reps * 1e3, ref_flagged});
  }
  for (const auto& cfg : {realm::sa::DatapathConfig{16, realm::sa::Overflow::kWrap, 0, true},
                          {32, realm::sa::Overflow::kWrap, 0, true},
                          {64, realm::sa::Overflow::kWrap, 0, true},
                          {16, realm::sa::Overflow::kSaturate, 0, true}}) {
    realm::sa::ScreenScratch scratch;
    realm::sa::ScreenResult res = realm::sa::screen_into(truth, faulted, cfg, scratch);
    const auto t0 = realm::util::now_ns();
    for (int r = 0; r < reps; ++r) res = realm::sa::screen_into(truth, faulted, cfg, scratch);
    rows.push_back({realm::sa::to_string(cfg.overflow), cfg.bits,
                    seconds_since(t0) / reps * 1e3, res.flagged});
  }
  for (const Row& r : rows) {
    table.row({r.datapath, std::to_string(r.bits), realm::util::TablePrinter::num(r.ms, 4),
               r.flagged ? "yes" : "no"});
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  if (!json_path.empty()) {
    std::ofstream os(json_path);
    if (!os) {
      std::cerr << "protected_gemm_bench: cannot write " << json_path << "\n";
      return 1;
    }
    os << "{\n  \"schema_version\": 1,\n  \"mode\": \"sa\",\n";
    write_provenance(os, false);
    os << "  \"kernel_tier\": \""
       << realm::tensor::kernels::to_string(realm::tensor::kernels::active_tier())
       << "\",\n  \"m\": " << m << ", \"n\": " << n << ",\n  \"threads\": " << threads
       << ",\n  \"datapaths\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "    {\"datapath\": \"%s\", \"bits\": %d, \"screen_ms\": %.4f}%s\n",
                    rows[i].datapath.c_str(), rows[i].bits, rows[i].ms,
                    i + 1 < rows.size() ? "," : "");
      os << buf;
    }
    os << "  ]\n}\n";
  }
  return 0;
}

void write_json(const std::string& path, const std::vector<ShapeResult>& results,
                std::size_t threads, int repeat) {
  std::ofstream os(path);
  if (!os) {
    std::cerr << "protected_gemm_bench: cannot write " << path << "\n";
    std::exit(1);  // NOLINT(concurrency-mt-unsafe) — single-threaded CLI error path
  }
  os << "{\n";
  os << "  \"schema_version\": 1,\n";
  write_provenance(os, false);
  os << "  \"kernel_tier\": \"" << realm::tensor::kernels::to_string(
            realm::tensor::kernels::active_tier())
     << "\",\n";
  os << "  \"threads\": " << threads << ",\n";
  os << "  \"repeat\": " << (repeat > 0 ? std::to_string(repeat) : std::string("\"auto\""))
     << ",\n";
  os << "  \"shapes\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ShapeResult& r = results[i];
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    {\"m\": %zu, \"k\": %zu, \"n\": %zu, \"raw_gops\": %.3f, "
                  "\"prot_gops\": %.3f, \"overhead_pct\": %.2f, \"detect_ms\": %.4f, "
                  "\"patch_ms\": %.4f, \"recompute_ms\": %.4f, \"verdict\": \"%s\"}%s\n",
                  r.m, r.k, r.n, r.raw_gops, r.prot_gops, r.overhead_pct, r.detect_ms,
                  r.patch_ms, r.recompute_ms, r.verdict.c_str(),
                  i + 1 < results.size() ? "," : "");
    os << buf;
  }
  os << "  ]\n}\n";
}

/// Batched serving mode: one TileGrid shared by every request, the engine's
/// bounded queue feeding `threads` workers. Reports throughput (requests/s),
/// tail latency from the engine's stats, and the per-request screen overhead
/// measured exactly like the GEMM bench's detect_ms: interleaved raw/protected
/// pairs over the SAME tiles and resident panels, median of the differences.
int serve_main(bool csv, bool smoke, long threads, int repeat, const std::string& json_path) {
  namespace rt = realm::tensor;
  realm::util::Rng rng(0x5e7e);
  // Request-level parallelism only: each worker's GEMMs run inline (thread
  // pool nesting rule), so the global GEMM pool is pinned to 1 to keep the
  // single-threaded overhead measurement and the serve path consistent.
  realm::util::set_global_threads(1);

  const std::size_t m = smoke ? 16 : 64;  // decode-like request height
  const std::size_t k = smoke ? 128 : 1024;
  const std::size_t n = smoke ? 256 : 2048;
  realm::serve::TileGridConfig gcfg;
  gcfg.tile_cols = smoke ? 64 : 256;
  const realm::serve::TileGrid grid(random_i8(k, n, rng), rt::QuantParams{0.02f}, gcfg);
  const rt::QuantParams qa{0.05f};

  const std::size_t nreq = smoke ? 8 : 64;
  std::vector<rt::MatI8> acts;
  acts.reserve(nreq);
  for (std::size_t i = 0; i < nreq; ++i) acts.push_back(random_i8(m, k, rng));
  const realm::fault::MagFreqInjector mag(1 << 20, 3);
  std::vector<realm::serve::Request> reqs(nreq);
  for (std::size_t i = 0; i < nreq; ++i) {
    reqs[i].a8 = &acts[i];
    reqs[i].qa = qa;
    // Mostly-clean traffic with a detectable fault every 8th request, so the
    // measured throughput includes realistic recompute-correct work.
    reqs[i].injector = (i % 8 == 7) ? &mag : nullptr;
  }

  // Per-request screen overhead: raw tiles (prepacked GEMM only) vs clean
  // protected tiles, interleaved at pair granularity, median difference —
  // same drift-cancelling protocol as the per-shape bench.
  std::vector<rt::MatI32> raw_scratch;
  std::vector<realm::detect::ProtectedGemmResult> prot_scratch;
  rt::MatF out;
  realm::serve::BatchVerdict bv;
  const realm::fault::NullInjector none;
  grid.run_raw_into(acts[0], raw_scratch);  // warm buffers + panels
  grid.run_into(acts[0], qa, none, rng, prot_scratch, out, bv);
  const int pairs = repeat > 0 ? repeat * 8 : (smoke ? 4 : 32);
  std::vector<double> raw_t(pairs), detect_d(pairs);
  for (int p = 0; p < pairs; ++p) {
    const auto& a8 = acts[static_cast<std::size_t>(p) % nreq];
    auto t0 = realm::util::now_ns();
    grid.run_raw_into(a8, raw_scratch);
    raw_t[p] = seconds_since(t0);
    t0 = realm::util::now_ns();
    grid.run_into(a8, qa, none, rng, prot_scratch, out, bv);
    detect_d[p] = seconds_since(t0) - raw_t[p];
  }
  const auto median = [](std::vector<double>& v) {
    std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
    return v[v.size() / 2];
  };
  const double raw_s = median(raw_t);
  const double detect_s = std::max(median(detect_d), 0.0);
  const double overhead_pct = detect_s / raw_s * 100.0;

  // Throughput: serve `batches` full batches through the bounded queue.
  realm::serve::ServeConfig scfg;
  scfg.workers = static_cast<std::size_t>(threads);
  scfg.queue_capacity = 16;
  scfg.seed = 0xba7c4;  // fixed; forked per request inside the engine
  realm::serve::ServeEngine engine(grid, scfg);
  std::vector<realm::serve::Response> responses;
  engine.serve(reqs, responses);  // warm per-worker buffers
  engine.reset_stats();
  const int batches = repeat > 0 ? repeat : (smoke ? 1 : 5);
  // Aggregate every batch's latencies so the archived p50/p99 covers the
  // whole run exactly, independent of the engine's sliding-window span.
  std::vector<double> all_lat;
  all_lat.reserve(static_cast<std::size_t>(batches) * nreq);
  const auto t0 = realm::util::now_ns();
  for (int b = 0; b < batches; ++b) {
    engine.serve(reqs, responses);
    for (const auto& r : responses) all_lat.push_back(r.latency_ms);
  }
  const double wall_s = seconds_since(t0);
  const realm::serve::ServeStats st = engine.stats();
  const double rps = static_cast<double>(st.completed) / wall_s;
  const double p50 = realm::util::quantile(all_lat, 0.50);
  const double p99 = realm::util::quantile(all_lat, 0.99);

  realm::util::TablePrinter table(
      std::string("protected_gemm_bench --serve (TileGrid through ServeEngine, tier=") +
      realm::tensor::kernels::to_string(realm::tensor::kernels::active_tier()) + ")");
  table.header({"workers", "tiles", "m", "k", "n", "req/s", "p50_ms", "p99_ms", "raw_ms",
                "detect_ms", "overhead", "corrected"});
  table.row({std::to_string(scfg.workers), std::to_string(grid.tile_count()), std::to_string(m),
             std::to_string(k), std::to_string(n), realm::util::TablePrinter::num(rps),
             realm::util::TablePrinter::num(p50), realm::util::TablePrinter::num(p99),
             realm::util::TablePrinter::num(raw_s * 1e3),
             realm::util::TablePrinter::num(detect_s * 1e3),
             realm::util::TablePrinter::pct(overhead_pct / 100.0),
             std::to_string(st.tiles_corrected())});
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  if (!json_path.empty()) {
    std::ofstream os(json_path);
    if (!os) {
      std::cerr << "protected_gemm_bench: cannot write " << json_path << "\n";
      return 1;
    }
    os << "{\n  \"schema_version\": 1,\n  \"mode\": \"serve\",\n";
    write_provenance(os, false);
    char buf[1024];
    std::snprintf(buf, sizeof(buf),
                  "  \"kernel_tier\": \"%s\",\n"
                  "  \"workers\": %zu,\n"
                  "  \"tile_cols\": %zu,\n"
                  "  \"tiles\": %zu,\n"
                  "  \"m\": %zu, \"k\": %zu, \"n\": %zu,\n"
                  "  \"requests_per_batch\": %zu,\n"
                  "  \"batches\": %d,\n"
                  "  \"rps\": %.2f,\n"
                  "  \"p50_ms\": %.4f,\n"
                  "  \"p99_ms\": %.4f,\n"
                  "  \"raw_ms\": %.4f,\n"
                  "  \"detect_ms\": %.4f,\n"
                  "  \"overhead_pct\": %.2f,\n"
                  "  \"tiles_screened\": %llu,\n"
                  "  \"tiles_detected\": %llu,\n"
                  "  \"tiles_patched\": %llu,\n"
                  "  \"tiles_recomputed\": %llu,\n"
                  "  \"tiles_corrected\": %llu\n"
                  "}\n",
                  realm::tensor::kernels::to_string(realm::tensor::kernels::active_tier()),
                  scfg.workers, gcfg.tile_cols, grid.tile_count(), m, k, n, nreq, batches, rps,
                  p50, p99, raw_s * 1e3, detect_s * 1e3, overhead_pct,
                  static_cast<unsigned long long>(st.tiles_screened),
                  static_cast<unsigned long long>(st.tiles_detected),
                  static_cast<unsigned long long>(st.tiles_patched),
                  static_cast<unsigned long long>(st.tiles_recomputed),
                  static_cast<unsigned long long>(st.tiles_corrected()));
    os << buf;
  }
  return 0;
}

/// Async continuous-batching mode: multi-tenant submit/poll traffic with
/// mixed priorities and mixed request shapes through the persistent-worker
/// engine, plus a tile-by-tile weight hot-swap landing mid-stream, then a
/// fault-load phase (every request injected) measured once with the in-place
/// patch and once recompute-only. Reports sustained req/s, per-tenant
/// sliding-window p50/p99, and the p99-under-fault split. Self-gating: any
/// dropped request, any verdict that disagrees with the injected fault plan
/// (clean traffic must screen clean, injected traffic must correct), or a
/// patched-path p99 at or above the recompute p99 (non-smoke) exits nonzero.
/// With --fault-model the injected subset additionally routes its activations
/// through the memory-hierarchy fault model (fault::MemoryFaultModel), and the
/// JSON record carries the per-component flip tallies.
int serve_async_main(bool csv, bool smoke, long threads, int repeat, const std::string& json_path,
                     bool fault_model, const std::string& trace_path,
                     const std::string& metrics_path) {
  namespace rt = realm::tensor;
  realm::util::Rng rng(0x5e7a);
  // Request-level parallelism only; each worker's GEMMs run inline.
  realm::util::set_global_threads(1);

  // Observability: one lane per engine worker, ring deep enough that the
  // measured phase never wraps (the fault-phase engines below run untraced so
  // the exported timeline is exactly the sustained-traffic phase).
  const bool trace = !trace_path.empty();
  realm::obs::TracerConfig tcfg;
  tcfg.lanes = static_cast<std::size_t>(threads);
  tcfg.capacity = std::size_t{1} << 15;
  realm::obs::Tracer tracer(tcfg);
  realm::obs::MetricsRegistry registry;

  const std::size_t m = smoke ? 16 : 64;  // decode-like request height
  const std::size_t k = smoke ? 128 : 1024;
  const std::size_t n = smoke ? 256 : 2048;
  realm::serve::TileGridConfig gcfg;
  gcfg.tile_cols = smoke ? 64 : 256;
  if (trace) gcfg.tracer = &tracer;
  gcfg.metrics = &registry;
  const rt::QuantParams qw{0.02f};
  realm::serve::TileGrid grid(random_i8(k, n, rng), qw, gcfg);  // mutable: hot swap below
  const rt::QuantParams qa{0.05f};

  // Mixed shapes in flight: full-height and half-height activations
  // interleave, exercising the per-worker shape-keyed scratch.
  const std::size_t nshapes = 4;
  std::vector<rt::MatI8> acts;
  acts.reserve(nshapes * 2);
  for (std::size_t i = 0; i < nshapes; ++i) acts.push_back(random_i8(m, k, rng));
  for (std::size_t i = 0; i < nshapes; ++i) acts.push_back(random_i8(m / 2, k, rng));
  const realm::fault::MagFreqInjector mag(1 << 20, 3);

  // Memory-hierarchy strike model (--fault-model): activation bytes of the
  // injected subset flip at a small BER before quantized staging. Attached
  // only to requests that already carry the accumulator injector, so the
  // clean-traffic side of the verdict self-gate below stays exact.
  realm::fault::MemoryFaultConfig mfc;
  mfc.seed = 0xfa117;
  mfc.activations.ber = 1e-4;
  const realm::fault::MemoryFaultModel memory(mfc);
  const realm::fault::MemoryFaultModel* mem = fault_model ? &memory : nullptr;

  realm::serve::ServeConfig scfg;
  scfg.workers = static_cast<std::size_t>(threads);
  scfg.queue_capacity = 16;
  scfg.seed = 0xba7c4;
  if (trace) scfg.tracer = &tracer;
  scfg.metrics = &registry;
  realm::serve::ServeEngine engine(grid, scfg);

  // Warm-up under a dedicated tenant so the measured tenants' books stay
  // clean (TenantBook is append-only by design). Tracing starts after it so
  // the exported spans and metrics cover the measured phase only.
  {
    tracer.set_enabled(false);
    realm::serve::SubmitOptions wopt;
    wopt.tenant = "warmup";
    for (std::size_t i = 0; i < acts.size(); ++i) {
      engine.wait(engine.submit(realm::serve::Request::borrow(acts[i], qa), wopt));
    }
    engine.reset_stats();
    tracer.set_enabled(trace);
  }

  const std::size_t total = static_cast<std::size_t>(repeat > 0 ? repeat : (smoke ? 1 : 5)) *
                            (smoke ? std::size_t{32} : std::size_t{128});
  std::vector<realm::serve::Ticket> tickets;
  tickets.reserve(total);
  const auto submit_one = [&](std::size_t i) {
    const bool injected = (i % 8 == 7);
    realm::serve::Request rq =
        realm::serve::Request::borrow(acts[i % acts.size()], qa, injected ? &mag : nullptr,
                                      injected ? mem : nullptr);
    realm::serve::SubmitOptions opt;
    // Two tenants, two lanes: "pro" is interactive foreground traffic, "free"
    // rides the batch lane and yields to it under strict priority.
    const bool pro = (i % 4 == 0);
    opt.tenant = pro ? "pro" : "free";
    opt.priority = pro ? realm::serve::Priority::kInteractive : realm::serve::Priority::kBatch;
    opt.stream = i;  // pinned: outputs independent of submission interleaving
    tickets.push_back(engine.submit(std::move(rq), opt));
  };

  const auto t0 = realm::util::now_ns();
  for (std::size_t i = 0; i < total / 2; ++i) submit_one(i);
  // Weight hot-swap landing under load: re-roll every tile while workers are
  // mid-stream. Each candidate tile is scrubbed before install; in-flight
  // requests finish on their per-tile snapshots.
  const std::size_t swapped = grid.swap_weights(random_i8(k, n, rng), qw);
  for (std::size_t i = total / 2; i < total; ++i) submit_one(i);

  std::size_t mis_verdicts = 0;
  std::size_t dropped = 0;
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    const realm::serve::Response rsp = engine.wait(tickets[i]);
    if (rsp.expired) {
      ++dropped;
      continue;
    }
    const bool injected = (i % 8 == 7);
    const bool ok = injected ? realm::detect::corrected(rsp.verdict.verdict)
                             : rsp.verdict.verdict == realm::detect::Verdict::kClean;
    if (!ok) ++mis_verdicts;
  }
  const double wall_s = seconds_since(t0);
  const double rps = static_cast<double>(total) / wall_s;
  const realm::serve::ServeStats st = engine.stats();

  // Every ticket above has been waited on, so the worker lanes are quiescent:
  // safe to export the span timeline and the metrics snapshot. Done before
  // the fault phases, which run on separate untraced engines.
  if (trace) {
    std::ofstream os(trace_path);
    if (!os) {
      std::cerr << "protected_gemm_bench: cannot write " << trace_path << "\n";
      return 1;
    }
    os << tracer.export_chrome_json();
  }
  if (!metrics_path.empty()) {
    std::ofstream os(metrics_path);
    if (!os) {
      std::cerr << "protected_gemm_bench: cannot write " << metrics_path << "\n";
      return 1;
    }
    os << registry.expose();
  }

  // Fault-load phase (elevated injection: EVERY request faulted), once with
  // the in-place patch enabled (the serving default) and once with
  // patch_on_detect=false (recompute-only). Pinned streams give both engines
  // identical fault draws over identical weights and activations, so the p99
  // gap isolates the correction-mode latency — the release gate pins the
  // patched path strictly below the recompute cliff.
  const std::size_t fault_total = smoke ? 32 : 96;
  const rt::MatI8 w8_fault = random_i8(k, n, rng);
  const auto fault_phase = [&](bool patch_enabled, double& p99_ms, double& patch_rate) {
    realm::serve::TileGridConfig fcfg = gcfg;
    fcfg.detect.patch_on_detect = patch_enabled;
    // Untraced and unmetered: the archived timeline/metrics cover only the
    // sustained-traffic phase above, not the elevated-injection sweep.
    fcfg.tracer = nullptr;
    fcfg.metrics = nullptr;
    const realm::serve::TileGrid fgrid(w8_fault, qw, fcfg);
    realm::serve::ServeConfig fscfg = scfg;
    fscfg.tracer = nullptr;
    fscfg.metrics = nullptr;
    realm::serve::ServeEngine fengine(fgrid, fscfg);
    fengine.wait(fengine.submit(realm::serve::Request::borrow(acts[0], qa)));  // warm buffers
    std::vector<realm::serve::Ticket> fts;
    fts.reserve(fault_total);
    for (std::size_t i = 0; i < fault_total; ++i) {
      realm::serve::SubmitOptions opt;
      opt.stream = i;  // identical fault draws across the two phases
      fts.push_back(fengine.submit(realm::serve::Request::borrow(acts[i % nshapes], qa, &mag),
                                   opt));
    }
    std::vector<double> lat;
    lat.reserve(fault_total);
    std::size_t faulty_reqs = 0, patched_reqs = 0;
    for (auto& ticket : fts) {
      const realm::serve::Response rsp = fengine.wait(ticket);
      lat.push_back(rsp.latency_ms);
      if (rsp.verdict.faulty()) {
        ++faulty_reqs;
        if (rsp.verdict.verdict == realm::detect::Verdict::kPatched) ++patched_reqs;
      }
    }
    p99_ms = realm::util::quantile(lat, 0.99);
    patch_rate = faulty_reqs == 0 ? 0.0
                                  : static_cast<double>(patched_reqs) /
                                        static_cast<double>(faulty_reqs);
  };
  double fault_patched_p99 = 0, fault_recompute_p99 = 0, fault_patch_rate = 0, rec_rate = 0;
  fault_phase(true, fault_patched_p99, fault_patch_rate);
  fault_phase(false, fault_recompute_p99, rec_rate);

  realm::util::TablePrinter table(
      std::string("protected_gemm_bench --serve-async (submit/poll through ServeEngine, tier=") +
      realm::tensor::kernels::to_string(realm::tensor::kernels::active_tier()) +
      ", workers=" + std::to_string(scfg.workers) + ", tiles_swapped=" + std::to_string(swapped) +
      ")");
  table.header({"tenant", "priority", "submitted", "completed", "patched", "recomputed", "req/s",
                "p50_ms", "p99_ms"});
  for (const char* name : {"pro", "free"}) {
    const realm::serve::TenantStats ts = engine.tenant_stats(name);
    table.row({ts.tenant, std::string(name) == "pro" ? "interactive" : "batch",
               std::to_string(ts.submitted), std::to_string(ts.completed),
               std::to_string(ts.requests_patched), std::to_string(ts.requests_recomputed),
               realm::util::TablePrinter::num(ts.req_per_s),
               realm::util::TablePrinter::num(ts.window_p50_ms),
               realm::util::TablePrinter::num(ts.window_p99_ms)});
  }
  table.row({"(all)", "-", std::to_string(st.submitted), std::to_string(st.completed), "-", "-",
             realm::util::TablePrinter::num(rps),
             realm::util::TablePrinter::num(st.window_p50_ms),
             realm::util::TablePrinter::num(st.window_p99_ms)});
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  realm::util::TablePrinter ftable(
      std::string("fault load (every request injected, patch vs recompute, requests=") +
      std::to_string(fault_total) + ")");
  ftable.header({"correction", "p99_ms", "patch_rate"});
  ftable.row({"patch", realm::util::TablePrinter::num(fault_patched_p99),
              realm::util::TablePrinter::num(fault_patch_rate, 3)});
  ftable.row({"recompute", realm::util::TablePrinter::num(fault_recompute_p99),
              realm::util::TablePrinter::num(rec_rate, 3)});
  if (csv) {
    ftable.print_csv(std::cout);
  } else {
    ftable.print(std::cout);
  }

  if (!json_path.empty()) {
    std::ofstream os(json_path);
    if (!os) {
      std::cerr << "protected_gemm_bench: cannot write " << json_path << "\n";
      return 1;
    }
    os << "{\n  \"schema_version\": 1,\n  \"mode\": \"serve-async\",\n";
    write_provenance(os, trace);
    char buf[2048];
    std::snprintf(buf, sizeof(buf),
                  "  \"kernel_tier\": \"%s\",\n"
                  "  \"workers\": %zu,\n"
                  "  \"tiles\": %zu,\n"
                  "  \"tiles_swapped\": %zu,\n"
                  "  \"m\": %zu, \"k\": %zu, \"n\": %zu,\n"
                  "  \"requests\": %zu,\n"
                  "  \"rps\": %.2f,\n"
                  "  \"window_p50_ms\": %.4f,\n"
                  "  \"window_p99_ms\": %.4f,\n"
                  "  \"expired\": %llu,\n"
                  "  \"failed\": %llu,\n"
                  "  \"tiles_patched\": %llu,\n"
                  "  \"tiles_recomputed\": %llu,\n"
                  "  \"tiles_corrected\": %llu,\n"
                  "  \"fault_model\": %d,\n"
                  "  \"activation_flips\": %llu,\n"
                  "  \"accumulator_flips\": %llu,\n"
                  "  \"fault_requests\": %zu,\n"
                  "  \"fault_patched_p99_ms\": %.4f,\n"
                  "  \"fault_recompute_p99_ms\": %.4f,\n"
                  "  \"fault_patch_rate\": %.4f\n"
                  "}\n",
                  realm::tensor::kernels::to_string(realm::tensor::kernels::active_tier()),
                  scfg.workers, grid.tile_count(), swapped, m, k, n, total, rps, st.window_p50_ms,
                  st.window_p99_ms, static_cast<unsigned long long>(st.expired),
                  static_cast<unsigned long long>(st.failed),
                  static_cast<unsigned long long>(st.tiles_patched),
                  static_cast<unsigned long long>(st.tiles_recomputed),
                  static_cast<unsigned long long>(st.tiles_corrected()),
                  fault_model ? 1 : 0,
                  static_cast<unsigned long long>(
                      st.component_flips[static_cast<std::size_t>(
                          realm::fault::Component::kActivations)]),
                  static_cast<unsigned long long>(
                      st.component_flips[static_cast<std::size_t>(
                          realm::fault::Component::kAccumulator)]),
                  fault_total, fault_patched_p99, fault_recompute_p99, fault_patch_rate);
    os << buf;
  }

  // The patched-path tail must sit strictly below the recompute cliff: the
  // patch replaces the O(m·k·n) replay with O(m·n + m·k + k·n) algebra, so a
  // crossover means the correction path regressed. (Skipped under --smoke,
  // where per-request times are too small for a stable p99 comparison.)
  const bool p99_split_ok = smoke || fault_patched_p99 < fault_recompute_p99;
  if (dropped != 0 || mis_verdicts != 0 || swapped != grid.tile_count() ||
      !grid.verify_weight_integrity() || !p99_split_ok) {
    std::cerr << "protected_gemm_bench: serve-async gate FAILED (dropped=" << dropped
              << ", mis_verdicts=" << mis_verdicts << ", tiles_swapped=" << swapped << "/"
              << grid.tile_count() << ", patched_p99=" << fault_patched_p99
              << ", recompute_p99=" << fault_recompute_p99 << ")\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool csv = false;
  bool smoke = false;
  bool serve = false;
  bool serve_async = false;
  bool fault_model = false;
  bool sa = false;
  long threads = 1;
  int repeat = 0;  // 0 = auto
  std::string json_path;
  std::string trace_path;
  std::string metrics_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--csv") {
      csv = true;
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--serve") {
      serve = true;
    } else if (arg == "--serve-async") {
      serve_async = true;
    } else if (arg == "--fault-model") {
      fault_model = true;
    } else if (arg == "--sa") {
      sa = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = std::strtol(argv[++i], nullptr, 10);
      if (threads < 1) return usage();
    } else if (arg == "--repeat" && i + 1 < argc) {
      repeat = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
      if (repeat < 1) return usage();
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--trace") {
      // Optional file operand; anything starting with "--" is the next flag.
      trace_path = (i + 1 < argc && argv[i + 1][0] != '-') ? argv[++i] : "trace.json";
    } else if (arg == "--metrics") {
      metrics_path = (i + 1 < argc && argv[i + 1][0] != '-') ? argv[++i] : "metrics.prom";
    } else {
      return usage();
    }
  }
  if (static_cast<int>(serve) + static_cast<int>(serve_async) + static_cast<int>(sa) > 1) {
    return usage();
  }
  if (fault_model && !serve_async) return usage();  // only meaningful for the async engine
  if ((!trace_path.empty() || !metrics_path.empty()) && !serve_async) return usage();
  if (serve) return serve_main(csv, smoke, threads, repeat, json_path);
  if (serve_async) {
    return serve_async_main(csv, smoke, threads, repeat, json_path, fault_model, trace_path,
                            metrics_path);
  }
  if (sa) return sa_main(csv, smoke, threads, repeat, json_path);
  realm::util::set_global_threads(static_cast<std::size_t>(threads));
  realm::util::Rng rng(0xbe7c);

  realm::util::TablePrinter table(
      std::string("protected_gemm_bench (raw vs protected INT8 GEMM, tier=") +
      realm::tensor::kernels::to_string(realm::tensor::kernels::active_tier()) +
      ", threads=" + std::to_string(threads) + ")");
  table.header({"m", "k", "n", "raw_gops", "prot_gops", "overhead", "detect_ms", "patch_ms",
                "recompute_ms", "verdict"});

  // The smoke set keeps sanitizer runs fast while still covering a full-tile
  // shape and a ragged one (edge microkernels + scalar reduction tails).
  const std::vector<std::array<std::size_t, 3>> shapes =
      smoke ? std::vector<std::array<std::size_t, 3>>{{128, 128, 128}, {33, 67, 129}}
            : std::vector<std::array<std::size_t, 3>>{{64, 256, 256},
                                                      {128, 512, 512},
                                                      {512, 512, 512},
                                                      {256, 1024, 1024},
                                                      {64, 4096, 1024}};
  const realm::fault::NullInjector none;
  const realm::fault::MagFreqInjector mag_freq(1 << 20, 3);

  std::vector<ShapeResult> results;
  for (const auto& s : shapes) {
    ShapeResult res;
    res.m = s[0];
    res.k = s[1];
    res.n = s[2];
    const realm::tensor::MatI8 a8 = random_i8(res.m, res.k, rng);
    const realm::tensor::QuantParams qa{0.05f};

    realm::detect::ProtectedGemm pg;  // default config: patch-first correction
    realm::detect::DetectionConfig rec_cfg;
    rec_cfg.patch_on_detect = false;  // recompute-only — the pre-patch latency cliff
    realm::detect::ProtectedGemm pg_rec(rec_cfg);
    {
      const realm::tensor::MatI8 w8 = random_i8(res.k, res.n, rng);
      pg.set_weights_quantized(w8, realm::tensor::QuantParams{0.02f});
      pg_rec.set_weights_quantized(w8, realm::tensor::QuantParams{0.02f});
    }

    const double ops = 2.0 * static_cast<double>(res.m) * static_cast<double>(res.k) *
                       static_cast<double>(res.n);

    // The raw baseline is weight-stationary like ProtectedGemm (same
    // prepacked panels), so overhead/detect_ms isolate what protection adds
    // instead of crediting the protected path with the skipped re-pack.
    const realm::tensor::kernels::PackedB packed_w = realm::tensor::kernels::pack_b(
        pg.weights().data(), pg.weights().rows(), pg.weights().cols());

    // Warm-up (dispatch probe, page faults) doubles as the auto-repeat
    // calibration: repeat until each cell measures >= ~50ms of work at the
    // speed this machine actually runs, whatever tier/thread count that is.
    realm::tensor::MatI32 c(res.m, res.n);
    auto t0 = realm::util::now_ns();
    realm::tensor::gemm_i8_prepacked(a8, pg.weights(), packed_w, c);
    const double warm_s = std::max(seconds_since(t0), 1e-6);
    const int reps =
        repeat > 0 ? repeat : static_cast<int>(std::clamp(0.05 / warm_s, 1.0, 1000.0));

    // detect_ms and overhead are DIFFERENCES of two measurements, so a
    // frequency/turbo shift between the raw and protected timing windows
    // shows up as phantom overhead (or phantom savings). Interleave the
    // loops at single-rep granularity — each raw run immediately followed by
    // a clean protected run shares its thermal environment — and take the
    // MEDIAN of the per-pair differences: a mean lets one turbo burst
    // dominate, a min zeroes out whenever any pair happened to run clean
    // faster than raw. Clean protected runs recycle their buffers
    // (run_quantized_into), matching the raw loop's reused `c`, so the
    // difference is the steady-state screen, not per-run page faults.
    realm::detect::ProtectedGemmResult prot;
    pg.run_quantized_into(a8, qa, none, rng, prot);  // warm the buffers
    realm::detect::Verdict last = realm::detect::Verdict::kClean;
    std::vector<double> raw_t(reps), clean_t(reps), detect_d(reps), patch_d, recompute_d;
    patch_d.reserve((reps + 1) / 2);
    recompute_d.reserve((reps + 1) / 2);
    for (int r = 0; r < reps; ++r) {
      t0 = realm::util::now_ns();
      realm::tensor::gemm_i8_prepacked(a8, pg.weights(), packed_w, c);
      raw_t[r] = seconds_since(t0);

      t0 = realm::util::now_ns();
      pg.run_quantized_into(a8, qa, none, rng, prot);
      clean_t[r] = seconds_since(t0);
      detect_d[r] = clean_t[r] - raw_t[r];

      // Injected on every other rep, through BOTH correction modes against
      // the same clean-pair time: the in-place algebraic patch (default) and
      // the recompute replay — the split that shows what the patch saves.
      if (r % 2 == 0) {
        t0 = realm::util::now_ns();
        pg.run_quantized_into(a8, qa, mag_freq, rng, prot);
        last = prot.report.verdict;
        patch_d.push_back(seconds_since(t0) - clean_t[r]);
        t0 = realm::util::now_ns();
        pg_rec.run_quantized_into(a8, qa, mag_freq, rng, prot);
        recompute_d.push_back(seconds_since(t0) - clean_t[r]);
      }
    }
    const auto median = [](std::vector<double>& v) {
      std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
      return v[v.size() / 2];
    };
    const double raw_s = median(raw_t);
    const double prot_clean_s = median(clean_t);
    // The screen cannot cost negative time; clamp residual pair noise.
    const double detect_s = std::max(median(detect_d), 0.0);
    const double patch_s = std::max(median(patch_d), 0.0);
    const double recompute_s = std::max(median(recompute_d), 0.0);

    res.raw_gops = ops / raw_s / 1e9;
    res.prot_gops = ops / prot_clean_s / 1e9;
    // Overhead derives from the same block-coherent delta as detect_ms, so
    // the two gated metrics can never disagree about whether protection cost
    // anything.
    res.overhead_pct = detect_s / raw_s * 100.0;
    res.detect_ms = detect_s * 1e3;
    res.patch_ms = patch_s * 1e3;
    res.recompute_ms = recompute_s * 1e3;
    res.verdict = realm::detect::to_string(last);
    results.push_back(res);

    table.row({std::to_string(res.m), std::to_string(res.k), std::to_string(res.n),
               realm::util::TablePrinter::num(res.raw_gops),
               realm::util::TablePrinter::num(res.prot_gops),
               realm::util::TablePrinter::pct(res.overhead_pct / 100.0),
               realm::util::TablePrinter::num(res.detect_ms),
               realm::util::TablePrinter::num(res.patch_ms),
               realm::util::TablePrinter::num(res.recompute_ms), res.verdict});
  }

  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  if (!json_path.empty()) {
    write_json(json_path, results, static_cast<std::size_t>(threads), repeat);
  }
  return 0;
}
