// Throughput comparison: raw gemm_i8 vs the full ProtectedGemm pipeline
// (quantize + GEMM + checksum screen). Reports absolute GOPS and the
// protection overhead, which the paper argues is amortized by the O(m·k·n)
// GEMM dominating the O(k·n + m·k + m·n) checks (true for large m; the
// column prediction (eᵀA)·W is the dominant check term at small m).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>

#include "detect/detect.h"
#include "fault/fault.h"
#include "tensor/gemm.h"
#include "tensor/quant.h"
#include "tensor/tensor.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

realm::tensor::MatI8 random_i8(std::size_t rows, std::size_t cols, realm::util::Rng& rng) {
  realm::tensor::MatI8 m(rows, cols);
  for (auto& x : m.flat()) x = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  bool csv = false;
  bool inject = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--csv") {
      csv = true;
    } else if (arg == "--inject") {
      inject = true;
    } else {
      std::cerr << "usage: protected_gemm_bench [--csv] [--inject]\n"
                << "  --csv     emit CSV instead of a box-drawn table\n"
                << "  --inject  corrupt each protected GEMM (MagFreq 2^20 x 3) so the\n"
                << "            detect + recompute-correct path is exercised\n";
      return 2;
    }
  }
  realm::util::Rng rng(0xbe7c);

  realm::util::TablePrinter table("protected_gemm_bench (raw vs protected INT8 GEMM)");
  table.header({"m", "k", "n", "raw_gops", "prot_gops", "overhead", "verdict"});

  const std::size_t shapes[][3] = {
      {64, 256, 256}, {128, 512, 512}, {256, 1024, 1024}, {64, 4096, 1024}};
  const realm::fault::NullInjector none;
  const realm::fault::MagFreqInjector mag_freq(1 << 20, 3);
  const realm::fault::FaultInjector& injector =
      inject ? static_cast<const realm::fault::FaultInjector&>(mag_freq) : none;

  for (const auto& s : shapes) {
    const std::size_t m = s[0], k = s[1], n = s[2];
    const realm::tensor::MatI8 a8 = random_i8(m, k, rng);
    const realm::tensor::QuantParams qa{0.05f};

    realm::detect::ProtectedGemm pg;
    pg.set_weights_quantized(random_i8(k, n, rng), realm::tensor::QuantParams{0.02f});

    const double ops = 2.0 * static_cast<double>(m) * static_cast<double>(k) *
                       static_cast<double>(n);
    // Repeat so each cell measures >= ~50ms of work.
    const int reps = std::max(1, static_cast<int>(5e8 / ops));

    realm::tensor::MatI32 c(m, n);
    auto t0 = Clock::now();
    for (int r = 0; r < reps; ++r) realm::tensor::gemm_i8(a8, pg.weights(), c);
    const double raw_s = seconds_since(t0) / reps;

    t0 = Clock::now();
    realm::detect::Verdict last = realm::detect::Verdict::kClean;
    for (int r = 0; r < reps; ++r) {
      last = pg.run_quantized(a8, qa, injector, rng).report.verdict;
    }
    const double prot_s = seconds_since(t0) / reps;

    table.row({std::to_string(m), std::to_string(k), std::to_string(n),
               realm::util::TablePrinter::num(ops / raw_s / 1e9),
               realm::util::TablePrinter::num(ops / prot_s / 1e9),
               realm::util::TablePrinter::pct(prot_s / raw_s - 1.0),
               realm::detect::to_string(last)});
  }

  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return 0;
}
