#!/usr/bin/env python3
"""CI perf-regression gate for protected_gemm_bench --json output.

Compares a single-thread run per shape against the checked-in
bench/baseline.json and fails (exit 1) on any regression beyond tolerance in:

  * raw_gops     — floor:   current >= baseline * (1 - tolerance)
  * detect_ms    — ceiling: current <= baseline * (1 + tolerance) + slack_ms
  * overhead_pct — ceiling: current <= baseline * (1 + tolerance) + slack_pct

The baseline is a deliberately conservative envelope (see README "Refreshing
the baseline"): it must hold across GitHub runner generations, so the gate
catches structural regressions (losing SIMD dispatch, packing, blocking, the
fused eᵀC reduction, or the vectorized checksum screen), not single-digit
noise. The absolute slack terms exist because detect_ms on small shapes is a
difference of two ~0.1 ms measurements — a 20% relative band alone would gate
on timer noise there, while on the large shapes (where a lost fusion shows up
as whole milliseconds) the slack is negligible against the signal.

When CURRENT.json carries "mode": "serve-async" (a `--serve-async` bench run
under elevated injection), the gate dispatches to the fault-load checks
instead of the per-shape ones, against the baseline's "serve_fault" section:

  * fault_patched_p99_ms — ceiling: current <= baseline * (1 + tolerance) + slack_ms
  * fault_patch_rate     — absolute floor: current >= baseline patch_rate_floor

The p99 ceiling catches the in-place patch path silently degenerating into
recompute-class latency; the patch-rate floor catches the corrector losing
single-fault solves (every injected fault in the bench phase is a lone
magnitude hit, so the rate should sit at 1.0 with generous headroom).

With --trace-overhead the positionals are reinterpreted as a TRACED.json /
UNTRACED.json pair from two otherwise-identical --serve-async runs, and the
gate becomes the tracing-overhead budget: traced req/s must stay at or above
--min-traced-ratio (default 0.95) of the untraced run. The records' "trace"
provenance flags are checked (traced must say true, untraced false) so a CI
wiring mistake — comparing a run against itself — trips instead of passing
vacuously.

Unknown top-level keys in either record are ignored: bench JSON grows
provenance fields (git_sha, realm_trace_compiled, ...) without breaking older
baselines.

usage: compare_baseline.py CURRENT.json BASELINE.json [--tolerance 0.20]
                           [--slack-ms 0.15] [--slack-pct 10]
       compare_baseline.py --trace-overhead TRACED.json UNTRACED.json
                           [--min-traced-ratio 0.95]
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def serve_fault_gate(current, baseline, args):
    """Fault-load serving gate for a --serve-async run (mode dispatch)."""
    base = baseline.get("serve_fault")
    if base is None:
        sys.exit("current run is serve-async but baseline has no serve_fault section")
    if current.get("fault_requests", 0) <= 0:
        sys.exit("serve-async run recorded no fault-load requests")

    failures = []
    hdr = f"{'metric':>22} {'baseline':>9} {'current':>9} {'bound':>9}  status"
    print(hdr)

    p99 = current["fault_patched_p99_ms"]
    p99_bound = base["fault_patched_p99_ms"] * (1.0 + args.tolerance) + args.slack_ms
    ok = p99 <= p99_bound
    print(
        f"{'fault_patched_p99_ms':>22} {base['fault_patched_p99_ms']:>9.3f} "
        f"{p99:>9.3f} {p99_bound:>9.3f}  {'ok' if ok else 'REGRESSION'}"
    )
    if not ok:
        failures.append("fault_patched_p99_ms")

    rate = current["fault_patch_rate"]
    floor = base["patch_rate_floor"]
    ok = rate >= floor
    print(
        f"{'fault_patch_rate':>22} {floor:>9.3f} {rate:>9.3f} {floor:>9.3f}  "
        f"{'ok' if ok else 'REGRESSION'}"
    )
    if not ok:
        failures.append("fault_patch_rate")

    if failures:
        sys.exit(f"serve fault-load gate regressed: {failures}")
    print("serve fault-load gate passed")


def trace_overhead_gate(traced, untraced, args):
    """Tracing-overhead budget: traced rps >= min ratio of the untraced run."""
    for record, name, want in ((traced, "traced", True), (untraced, "untraced", False)):
        if record.get("mode") != "serve-async":
            sys.exit(f"--trace-overhead needs serve-async records, "
                     f"{name} run has mode={record.get('mode')!r}")
        if bool(record.get("trace")) != want:
            sys.exit(f"{name} run records trace={record.get('trace')!r}, expected "
                     f"{want} — traced/untraced inputs swapped or mis-wired?")

    ratio = traced["rps"] / untraced["rps"]
    ok = ratio >= args.min_traced_ratio
    print(f"{'metric':>22} {'untraced':>9} {'traced':>9} {'ratio':>9} {'floor':>9}  status")
    print(f"{'rps':>22} {untraced['rps']:>9.2f} {traced['rps']:>9.2f} {ratio:>9.3f} "
          f"{args.min_traced_ratio:>9.3f}  {'ok' if ok else 'REGRESSION'}")
    if not ok:
        sys.exit(f"tracing overhead over budget: traced/untraced rps ratio "
                 f"{ratio:.3f} < {args.min_traced_ratio}")
    print("tracing-overhead gate passed")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("current")
    ap.add_argument("baseline")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed fractional regression vs baseline (default 0.20)",
    )
    ap.add_argument(
        "--slack-ms",
        type=float,
        default=0.15,
        help="absolute detect_ms headroom added to the ceiling (default 0.15)",
    )
    ap.add_argument(
        "--slack-pct",
        type=float,
        default=10.0,
        help="absolute overhead percentage-point headroom (default 10)",
    )
    ap.add_argument(
        "--trace-overhead",
        action="store_true",
        help="positionals are TRACED.json UNTRACED.json; gate the req/s ratio",
    )
    ap.add_argument(
        "--min-traced-ratio",
        type=float,
        default=0.95,
        help="traced/untraced rps floor for --trace-overhead (default 0.95)",
    )
    args = ap.parse_args()

    current = load(args.current)
    baseline = load(args.baseline)

    if args.trace_overhead:
        trace_overhead_gate(current, baseline, args)
        return

    if current.get("mode") == "serve-async":
        serve_fault_gate(current, baseline, args)
        return

    if current.get("threads") != 1:
        sys.exit(f"gate requires a single-thread run, got threads={current.get('threads')}")

    base_shapes = {(s["m"], s["k"], s["n"]): s for s in baseline["shapes"]}
    failures = []
    hdr = f"{'shape':>18} {'metric':>12} {'baseline':>9} {'current':>9} {'bound':>9}  status"
    print(hdr)
    for cur in current["shapes"]:
        key = (cur["m"], cur["k"], cur["n"])
        base = base_shapes.get(key)
        if base is None:
            print(f"{str(key):>18} {'-':>12} {'-':>9} {'-':>9} {'-':>9}  (no baseline)")
            continue
        checks = [
            # (metric, bound, ok)
            (
                "raw_gops",
                base["raw_gops"] * (1.0 - args.tolerance),
                lambda cur_v, bound: cur_v >= bound,
            ),
            (
                "detect_ms",
                base["detect_ms"] * (1.0 + args.tolerance) + args.slack_ms,
                lambda cur_v, bound: cur_v <= bound,
            ),
            (
                "overhead_pct",
                base["overhead_pct"] * (1.0 + args.tolerance) + args.slack_pct,
                lambda cur_v, bound: cur_v <= bound,
            ),
        ]
        for metric, bound, ok_fn in checks:
            cur_v = cur[metric]
            ok = ok_fn(cur_v, bound)
            status = "ok" if ok else "REGRESSION"
            print(
                f"{str(key):>18} {metric:>12} {base[metric]:>9.2f} {cur_v:>9.2f} "
                f"{bound:>9.2f}  {status}"
            )
            if not ok:
                failures.append((key, metric))

    missing = set(base_shapes) - {(s["m"], s["k"], s["n"]) for s in current["shapes"]}
    if missing:
        sys.exit(f"shapes present in baseline but missing from current run: {sorted(missing)}")
    if failures:
        sys.exit(f"regressed beyond tolerance: {failures}")
    print("perf gate passed")


if __name__ == "__main__":
    main()
