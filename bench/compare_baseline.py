#!/usr/bin/env python3
"""CI perf-regression gate for protected_gemm_bench --json output.

Compares single-thread raw GEMM throughput per shape against the checked-in
bench/baseline.json and fails (exit 1) when any shape regresses more than the
tolerance. The baseline is a deliberately conservative floor (see README
"Refreshing the baseline"): it must hold across GitHub runner generations, so
the gate catches structural regressions (losing SIMD dispatch, packing, or
blocking), not single-digit noise.

usage: compare_baseline.py CURRENT.json BASELINE.json [--tolerance 0.20]
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("current")
    ap.add_argument("baseline")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed fractional regression vs baseline (default 0.20)",
    )
    args = ap.parse_args()

    current = load(args.current)
    baseline = load(args.baseline)

    if current.get("threads") != 1:
        sys.exit(f"gate requires a single-thread run, got threads={current.get('threads')}")

    base_shapes = {(s["m"], s["k"], s["n"]): s for s in baseline["shapes"]}
    failures = []
    print(f"{'shape':>18} {'baseline':>10} {'current':>10} {'floor':>10}  status")
    for cur in current["shapes"]:
        key = (cur["m"], cur["k"], cur["n"])
        base = base_shapes.get(key)
        if base is None:
            print(f"{str(key):>18} {'-':>10} {cur['raw_gops']:>10.1f} {'-':>10}  (no baseline)")
            continue
        floor = base["raw_gops"] * (1.0 - args.tolerance)
        ok = cur["raw_gops"] >= floor
        status = "ok" if ok else "REGRESSION"
        print(
            f"{str(key):>18} {base['raw_gops']:>10.1f} {cur['raw_gops']:>10.1f} "
            f"{floor:>10.1f}  {status}"
        )
        if not ok:
            failures.append(key)

    missing = set(base_shapes) - {(s["m"], s["k"], s["n"]) for s in current["shapes"]}
    if missing:
        sys.exit(f"shapes present in baseline but missing from current run: {sorted(missing)}")
    if failures:
        sys.exit(f"single-thread GOPS regressed beyond tolerance on: {failures}")
    print("perf gate passed")


if __name__ == "__main__":
    main()
